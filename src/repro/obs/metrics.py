"""Process-wide metrics registry: counters, gauges, histograms.

One global :data:`REGISTRY` (thread-safe — the streaming coordinator
and its arrival threads both touch it) holds every metric the engines
emit.  Metrics are cheap but not free, so the engines increment them
*coarsely* — once per query, round, or slice, never per element — and
the registry keeps a plain dict per metric keyed by its sorted label
items, so ``snapshot()`` is a pure read.

The instrument set mirrors the query lifecycle:

* ``queries_total{table, mode}`` — executed queries per engine mode.
* ``udf_calls_total{backend}`` / ``memo_hits_total{backend}`` — real
  scoring-function invocations vs memo short-circuits.
* ``memo_hit_rate{table}`` — last query's hit fraction (gauge).
* ``rounds_total{backend}`` / ``slices_total{backend}`` — coordinator
  progress units for the sharded and streaming engines.
* ``threshold_staleness{backend}`` — merges a slice's threshold floor
  lagged behind at arrival (histogram).
* ``bound_width{mode}`` — final displacement-bound width per query
  (gauge; ``inf`` while the bound is vacuous).
* ``queries_inflight{tenant}`` — admitted, not-yet-retired queries per
  service tenant (gauge, kept by the
  :class:`~repro.service.budget.BudgetScheduler`).
* ``budget_grants_total{tenant, policy}`` /
  ``admissions_total{policy}`` — scorer-budget units granted and queries
  admitted by the multi-tenant service scheduler.
* ``writes_total{table, kind}`` — committed live-table write batches
  (append / update / delete).
* ``index_splits_total{table}`` — leaf splits performed by incremental
  cluster-tree maintenance.
* ``continuous_emits_total{table}`` — result snapshots re-emitted by
  standing ``CONTINUOUS`` queries.

``snapshot()`` returns a JSON-safe dict; ``describe()`` backs the CLI's
``info`` listing.  Everything is stdlib-only.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

LabelItems = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds (last bucket is +inf).
DEFAULT_BUCKETS = (0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0)


def _label_key(labels: Dict[str, Any]) -> LabelItems:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


class Metric:
    """Base: named instrument with per-label-set cells."""

    kind = "metric"

    def __init__(self, name: str, help: str, lock: threading.Lock) -> None:
        self.name = name
        self.help = help
        self._lock = lock
        self._cells: Dict[LabelItems, Any] = {}

    def labelsets(self) -> List[Dict[str, str]]:
        with self._lock:
            return [dict(items) for items in self._cells]

    def _snapshot_value(self, value: Any) -> Any:
        return value

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            values = [{"labels": dict(items),
                       "value": self._snapshot_value(value)}
                      for items, value in sorted(self._cells.items())]
        return {"type": self.kind, "help": self.help, "values": values}


class Counter(Metric):
    """Monotone counter; ``inc`` adds a non-negative delta."""

    kind = "counter"

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name} cannot decrease: {value}")
        key = _label_key(labels)
        with self._lock:
            self._cells[key] = self._cells.get(key, 0.0) + value

    def value(self, **labels: Any) -> float:
        with self._lock:
            return float(self._cells.get(_label_key(labels), 0.0))


class Gauge(Metric):
    """Point-in-time value; ``set`` overwrites."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._cells[_label_key(labels)] = float(value)

    def value(self, **labels: Any) -> Optional[float]:
        with self._lock:
            return self._cells.get(_label_key(labels))


class Histogram(Metric):
    """Cumulative-bucket histogram with count and sum per label set."""

    kind = "histogram"

    def __init__(self, name: str, help: str, lock: threading.Lock,
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help, lock)
        self.buckets = tuple(sorted(buckets))

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            cell = self._cells.get(key)
            if cell is None:
                cell = {"count": 0, "sum": 0.0,
                        "buckets": [0] * (len(self.buckets) + 1)}
                self._cells[key] = cell
            cell["count"] += 1
            cell["sum"] += value
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    cell["buckets"][i] += 1
                    break
            else:
                cell["buckets"][-1] += 1

    def _snapshot_value(self, value: Any) -> Any:
        # Export cumulative bucket counts (the Prometheus convention:
        # each bucket includes everything below its bound), accumulated
        # from the per-bin cells kept internally.
        running = 0
        cumulative = []
        for count in value["buckets"]:
            running += count
            cumulative.append(running)
        return {"count": value["count"], "sum": value["sum"],
                "buckets": dict(zip([*map(str, self.buckets), "+inf"],
                                    cumulative))}


class MetricsRegistry:
    """Thread-safe collection of named metrics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, name: str, help: str, kind: type,
                       **kwargs: Any) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name, help, threading.Lock(), **kwargs)
                self._metrics[name] = metric
        if not isinstance(metric, kind):
            raise TypeError(f"metric {name!r} already registered as "
                            f"{metric.kind}, not {kind.kind}")
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, help, Counter)  # type: ignore

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, help, Gauge)  # type: ignore

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(  # type: ignore
            name, help, Histogram, buckets=buckets)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def describe(self) -> List[Dict[str, str]]:
        """``[{name, type, help}]`` — backs the CLI ``info`` listing."""
        with self._lock:
            metrics = list(self._metrics.items())
        return [{"name": name, "type": metric.kind, "help": metric.help}
                for name, metric in sorted(metrics)]

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe view of every metric's current cells."""
        with self._lock:
            metrics = list(self._metrics.items())
        return {name: metric.snapshot() for name, metric in sorted(metrics)}

    def reset(self) -> None:
        """Clear every cell (tests); registrations survive."""
        with self._lock:
            for metric in self._metrics.values():
                with metric._lock:
                    metric._cells.clear()


#: The process-wide registry every engine reports into.
REGISTRY = MetricsRegistry()

# The standing instrument set, registered at import so `repro info`
# can list them before any query runs.
QUERIES_TOTAL = REGISTRY.counter(
    "queries_total", "queries executed, by table and engine mode")
UDF_CALLS_TOTAL = REGISTRY.counter(
    "udf_calls_total", "real scoring-function invocations, by backend")
MEMO_HITS_TOTAL = REGISTRY.counter(
    "memo_hits_total", "scores served from the cross-query memo")
MEMO_HIT_RATE = REGISTRY.gauge(
    "memo_hit_rate", "last query's memo hit fraction, by table")
ROUNDS_TOTAL = REGISTRY.counter(
    "rounds_total", "sharded coordinator rounds, by backend")
SLICES_TOTAL = REGISTRY.counter(
    "slices_total", "streaming slices merged, by backend")
THRESHOLD_STALENESS = REGISTRY.histogram(
    "threshold_staleness",
    "merges the threshold floor lagged behind at slice arrival")
BOUND_WIDTH = REGISTRY.gauge(
    "bound_width", "final displacement-bound width per query, by mode")
QUERIES_INFLIGHT = REGISTRY.gauge(
    "queries_inflight", "admitted, not-yet-retired service queries, "
                        "by tenant")
BUDGET_GRANTS_TOTAL = REGISTRY.counter(
    "budget_grants_total", "scorer-budget units granted by the service "
                           "scheduler, by tenant and policy")
ADMISSIONS_TOTAL = REGISTRY.counter(
    "admissions_total", "queries admitted by the service scheduler, "
                        "by policy")
WRITES_TOTAL = REGISTRY.counter(
    "writes_total", "committed live-table write batches, by table and "
                    "kind (append/update/delete)")
INDEX_SPLITS_TOTAL = REGISTRY.counter(
    "index_splits_total", "leaf splits performed by incremental "
                          "cluster-tree maintenance, by table")
CONTINUOUS_EMITS = REGISTRY.counter(
    "continuous_emits_total", "result snapshots re-emitted by standing "
                              "CONTINUOUS queries, by table")
