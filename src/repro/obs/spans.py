"""Nested query-lifecycle spans with stitchable cross-process fragments.

A :class:`TraceContext` records a tree of named spans —
``parse``/``plan``/``execute[mode]``/``round[i]``/``shard[j].slice[k]``
— each carrying real wall-clock, the virtual-clock charge, UDF-call and
memo-hit counts, and free-form attributes (threshold, bound trajectory).
Counters roll up: closing a span folds its totals into its parent, so
every rendered row is inclusive of its subtree.

Shard workers run in other threads or processes, so they record into
their *own* context and ship completed spans as JSON-safe fragment
dicts (riding the existing ``RoundOutcome`` wire format).  The
coordinator stitches them with :meth:`TraceContext.attach`, which
rebases the fragment's clock so it ends at the coordinator's "now" —
wall-clock offsets between processes are approximate by nature; the
deterministic counters are exact.

Two export formats:

* :meth:`TraceContext.to_dict` — the native format
  (``repro-trace/1``); round-trips through :meth:`TraceContext.from_dict`.
* :meth:`TraceContext.to_chrome_trace` — the Chrome trace-event JSON
  array that ``chrome://tracing`` and Perfetto load directly.

Everything here is pure stdlib; the engines only ever touch it behind
``if trace is not None`` guards, so the disabled path stays free.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: Version tag of the native export format.
TRACE_FORMAT = "repro-trace/1"

#: Counter keys every span carries (missing keys read as zero).
COUNTER_KEYS = ("vclock", "udf_calls", "memo_hits", "scored")


class Span:
    """One node of the span tree.

    ``start`` and ``wall`` are seconds relative to the owning context's
    origin; ``counters`` are inclusive of the subtree once the span is
    closed; ``attrs`` hold free-form JSON-safe annotations.
    """

    __slots__ = ("name", "start", "wall", "counters", "attrs", "children")

    def __init__(self, name: str, start: float = 0.0, wall: float = 0.0,
                 counters: Optional[Dict[str, float]] = None,
                 attrs: Optional[Dict[str, Any]] = None,
                 children: Optional[List["Span"]] = None) -> None:
        self.name = name
        self.start = start
        self.wall = wall
        self.counters: Dict[str, float] = counters or {}
        self.attrs: Dict[str, Any] = attrs or {}
        self.children: List[Span] = children or []

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict; empty counters/attrs/children are omitted."""
        out: Dict[str, Any] = {"name": self.name, "start": self.start,
                               "wall": self.wall}
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Span":
        return cls(
            name=payload["name"],
            start=float(payload.get("start", 0.0)),
            wall=float(payload.get("wall", 0.0)),
            counters=dict(payload.get("counters", {})),
            attrs=dict(payload.get("attrs", {})),
            children=[cls.from_dict(child)
                      for child in payload.get("children", [])],
        )

    def shift(self, delta: float) -> None:
        """Move this subtree ``delta`` seconds along the timeline."""
        self.start += delta
        for child in self.children:
            child.shift(delta)


def _merge_counters(into: Dict[str, float],
                    source: Dict[str, float]) -> None:
    for key, value in source.items():
        into[key] = into.get(key, 0.0) + value


class TraceContext:
    """Collector for one query's span tree.

    >>> trace = TraceContext()
    >>> with trace.span("parse"):
    ...     pass
    >>> with trace.span("execute[single]"):
    ...     with trace.span("round[0]"):
    ...         trace.add(scored=64, vclock=0.128)
    >>> [name for _, name in trace.walk_names()]
    ['parse', 'execute[single]', 'round[0]']
    >>> trace.roots[1].counters["scored"]
    64.0
    """

    def __init__(self, origin: Optional[float] = None) -> None:
        # ``origin`` (a perf_counter reading) lets a caller backdate the
        # timeline to cover work done just before the context existed —
        # the session uses it so the ``parse`` span starts at t=0.
        self._origin = time.perf_counter() if origin is None else origin
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    # -- recording -----------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self._origin

    def push(self, name: str, **attrs: Any) -> Span:
        """Open a span named ``name`` under the current span."""
        span = Span(name, start=self._now(), attrs=dict(attrs))
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent is not None else self.roots).append(span)
        self._stack.append(span)
        return span

    def pop(self) -> Span:
        """Close the innermost span, rolling its counters into its parent."""
        span = self._stack.pop()
        span.wall = self._now() - span.start
        if self._stack:
            _merge_counters(self._stack[-1].counters, span.counters)
        return span

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """``with trace.span("plan"):`` — push on entry, pop on exit."""
        span = self.push(name, **attrs)
        try:
            yield span
        finally:
            while self._stack and self._stack[-1] is not span:
                self.pop()          # close any still-open inner spans
            if self._stack:
                self.pop()

    def add(self, *, vclock: float = 0.0, udf_calls: int = 0,
            memo_hits: int = 0, scored: int = 0) -> None:
        """Charge counters to the innermost open span (no-op when none)."""
        if not self._stack:
            return
        counters = self._stack[-1].counters
        for key, value in (("vclock", vclock), ("udf_calls", udf_calls),
                           ("memo_hits", memo_hits), ("scored", scored)):
            if value:
                counters[key] = counters.get(key, 0.0) + value

    def annotate(self, **attrs: Any) -> None:
        """Merge attributes into the innermost open span."""
        if self._stack:
            self._stack[-1].attrs.update(attrs)

    # -- stitching -----------------------------------------------------

    def attach(self, fragment: Dict[str, Any],
               rename: Optional[str] = None) -> Span:
        """Stitch a worker fragment dict under the current span.

        The fragment keeps its internal shape and relative timing but is
        rebased so it *ends* at this context's "now" (the coordinator
        observes fragments at arrival).  Its counters fold into the open
        span so roll-up stays consistent.
        """
        span = Span.from_dict(fragment)
        if rename is not None:
            span.name = rename
        span.shift((self._now() - span.wall) - span.start)
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent is not None else self.roots).append(span)
        if parent is not None:
            _merge_counters(parent.counters, span.counters)
        return span

    def harvest(self) -> List[Dict[str, Any]]:
        """Return completed root spans as fragment dicts and clear them.

        Workers call this once per round/slice to ship their spans
        through the picklable ``RoundOutcome`` wire format.
        """
        assert not self._stack, "cannot harvest with open spans"
        fragments = [span.to_dict() for span in self.roots]
        self.roots = []
        return fragments

    # -- export --------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Native round-tripping export (``repro-trace/1``)."""
        return {"format": TRACE_FORMAT,
                "spans": [span.to_dict() for span in self.roots]}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TraceContext":
        if payload.get("format") != TRACE_FORMAT:
            raise ValueError(
                f"not a {TRACE_FORMAT} payload: {payload.get('format')!r}")
        trace = cls()
        trace.roots = [Span.from_dict(span)
                       for span in payload.get("spans", [])]
        return trace

    def to_chrome_trace(self) -> List[Dict[str, Any]]:
        """Chrome trace-event array (``chrome://tracing`` / Perfetto).

        Complete events (``ph: "X"``) with microsecond timestamps; the
        counters and attrs ride in ``args``.
        """
        events: List[Dict[str, Any]] = []

        def emit(span: Span, depth: int) -> None:
            args: Dict[str, Any] = dict(span.attrs)
            args.update(span.counters)
            events.append({
                "name": span.name,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.wall * 1e6,
                "pid": 0,
                "tid": depth,
                "cat": "repro",
                "args": args,
            })
            for child in span.children:
                emit(child, depth + 1)

        for root in self.roots:
            emit(root, 0)
        return events

    # -- inspection ----------------------------------------------------

    def walk(self) -> Iterator[Tuple[int, Span]]:
        """Depth-first ``(depth, span)`` pairs over the whole tree."""

        def visit(span: Span, depth: int) -> Iterator[Tuple[int, Span]]:
            yield depth, span
            for child in span.children:
                yield from visit(child, depth + 1)

        for root in self.roots:
            yield from visit(root, 0)

    def walk_names(self) -> List[Tuple[int, str]]:
        """Depth-first ``(depth, name)`` pairs — the tree's shape."""
        return [(depth, span.name) for depth, span in self.walk()]

    def span_count(self) -> int:
        return sum(1 for _ in self.walk())

    def timeline(self) -> List[Dict[str, Any]]:
        """The deterministic skeleton: order, names, and counters.

        Excludes the real stopwatch fields (``start``/``wall``), which
        PR 4's replay contract carves out — a replayed run must
        reproduce everything listed here.
        """
        return [
            {"depth": depth, "name": span.name,
             "counters": dict(span.counters)}
            for depth, span in self.walk()
        ]

    def render(self) -> str:
        """ASCII span tree with wall / virtual-clock / UDF / memo columns."""
        header = (f"{'span':<44} {'wall':>12} {'vclock':>12} "
                  f"{'udf':>8} {'memo':>8}")
        lines = [header, "-" * len(header)]
        for depth, span in self.walk():
            name = "  " * depth + span.name
            counters = span.counters
            attrs = " ".join(
                f"{key}={_fmt_attr(value)}"
                for key, value in sorted(span.attrs.items()))
            lines.append(
                f"{name:<44} {span.wall * 1e3:>9.3f} ms "
                f"{counters.get('vclock', 0.0):>10.4f} s "
                f"{int(counters.get('udf_calls', 0)):>8} "
                f"{int(counters.get('memo_hits', 0)):>8}"
                + (f"  {attrs}" if attrs else ""))
        return "\n".join(lines)


def _fmt_attr(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
