"""Query-lifecycle observability: spans, metrics, ``EXPLAIN ANALYZE``.

Zero-dependency tracing and metrics threaded through every engine.
Tracing is **off by default** — engines take ``trace=None`` and guard
every touch behind ``if trace is not None``, so the disabled path costs
nothing (gated by ``benchmarks/bench_obs.py``).  Metrics are always on
but coarse: one registry update per query, round, or slice.
"""

from .analyze import ExplainAnalyzeReport
from .metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .spans import COUNTER_KEYS, TRACE_FORMAT, Span, TraceContext

__all__ = [
    "COUNTER_KEYS",
    "Counter",
    "ExplainAnalyzeReport",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "Span",
    "TRACE_FORMAT",
    "TraceContext",
]
