"""``EXPLAIN ANALYZE``: the planner's estimates next to measured costs.

Plain ``EXPLAIN`` stops at the :class:`~repro.query.plan.ExecutionPlan`
— estimates only.  ``EXPLAIN ANALYZE`` *runs* the query under a forced
:class:`~repro.obs.spans.TraceContext` and returns an
:class:`ExplainAnalyzeReport` pairing the plan with the stitched span
tree and the answer, so the rendering shows planner numbers (budget,
selectivity, expected hit rate) directly above what actually happened
(per-round / per-slice / per-shard wall, virtual clock, UDF calls, memo
hits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict

from .spans import TraceContext

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..core.result import ResultBase
    from ..query.plan import ExecutionPlan


@dataclass
class ExplainAnalyzeReport:
    """What ``session.execute("EXPLAIN ANALYZE ...")`` returns."""

    plan: "ExecutionPlan"
    result: "ResultBase"
    trace: TraceContext

    def render(self) -> str:
        """The plan's estimate block followed by the measured span tree."""
        lines = [
            self.plan.explain(),
            "",
            "== analyze ==",
            self.trace.render(),
            "",
            f"answer: top-{len(self.result.ids)} "
            f"[{', '.join(self.result.ids[:5])}"
            f"{', ...' if len(self.result.ids) > 5 else ''}]",
        ]
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe pairing of the plan text, trace, and answer ids."""
        return {
            "plan": self.plan.explain(),
            "trace": self.trace.to_dict(),
            "ids": list(self.result.ids),
            "scores": [float(s) for s in self.result.scores],
        }
