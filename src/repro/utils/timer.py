"""Clocks used by the experiment harness.

The paper's latency figures mix two cost sources: (1) the opaque scoring
function (dominant: 2 ms/call on CPU, ~13 ms amortized per GPU batch) and
(2) the bandit's own bookkeeping (microseconds).  To keep the reproduction
deterministic and laptop-scale we charge scoring costs to a
:class:`VirtualClock` using the scorer's latency model, while measuring real
algorithm overhead with :class:`Stopwatch`.  Reported "time" is the sum.
"""

from __future__ import annotations

import time


class Stopwatch:
    """Accumulating wall-clock stopwatch based on ``time.perf_counter``.

    Use as a context manager to add the elapsed span to the running total:

    >>> sw = Stopwatch()
    >>> with sw:
    ...     pass
    >>> sw.elapsed >= 0.0
    True

    Re-entrant: nested ``with`` blocks on the same stopwatch count the
    outermost span once (inner spans are already inside it), so span
    nesting cannot double-charge or corrupt the running total.

    >>> sw = Stopwatch()
    >>> with sw:
    ...     with sw:
    ...         pass
    >>> sw._depth
    0
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._started_at: float | None = None
        self._depth = 0

    def __enter__(self) -> "Stopwatch":
        if self._depth == 0:
            self._started_at = time.perf_counter()
        self._depth += 1
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._depth > 0 and self._started_at is not None
        self._depth -= 1
        if self._depth == 0:
            self.elapsed += time.perf_counter() - self._started_at
            self._started_at = None

    def reset(self) -> None:
        """Zero the accumulated time."""
        self.elapsed = 0.0
        self._started_at = None
        self._depth = 0


class VirtualClock:
    """A monotone virtual clock advanced by explicit charges.

    All scoring-function latency in experiments is *simulated*: instead of
    sleeping, the harness calls :meth:`charge` with the latency-model cost of
    each batch.  This preserves every latency ratio the paper reports while
    keeping experiments fast and deterministic.
    """

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def charge(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds!r}")
        self._now += seconds
        return self._now

    def reset(self) -> None:
        """Rewind the clock to zero."""
        self._now = 0.0
