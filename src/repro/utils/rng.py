"""Deterministic random-number management.

Every stochastic component in the library accepts either an integer seed or a
:class:`numpy.random.Generator`.  :func:`as_generator` normalizes both forms,
and :class:`RngFactory` deterministically derives independent child generators
for subcomponents so that multi-part experiments are reproducible even when
components consume randomness in different orders.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an ``int`` seed, or an existing
        generator, which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class RngFactory:
    """Derive named, independent random generators from one root seed.

    Child streams are derived with :class:`numpy.random.SeedSequence.spawn`,
    so two factories created with the same root seed hand out identical
    streams regardless of request order for *distinct* names.

    Examples
    --------
    >>> factory = RngFactory(7)
    >>> a = factory.named("kmeans")
    >>> b = factory.named("bandit")
    >>> a is not b
    True
    >>> int(RngFactory(7).named("kmeans").integers(100)) == \
            int(RngFactory(7).named("kmeans").integers(100))
    True
    """

    def __init__(self, seed: SeedLike = None) -> None:
        if isinstance(seed, np.random.Generator):
            # Derive a stable root from the generator's own stream.
            seed = int(seed.integers(0, 2**63 - 1))
        self._root = np.random.SeedSequence(seed)
        self._named: dict[str, np.random.Generator] = {}
        self._counter = 0

    def named(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically.

        Repeated calls with the same name return the *same* generator object
        (which therefore continues its stream).
        """
        if name not in self._named:
            digest = np.frombuffer(
                name.encode("utf-8").ljust(8, b"\0")[:8], dtype=np.uint64
            )[0]
            child = np.random.SeedSequence(
                entropy=self._root.entropy, spawn_key=(int(digest),)
            )
            self._named[name] = np.random.default_rng(child)
        return self._named[name]

    def spawn(self) -> np.random.Generator:
        """Return a fresh anonymous generator (sequential spawn keys)."""
        self._counter += 1
        child = np.random.SeedSequence(
            entropy=self._root.entropy, spawn_key=(2**32 + self._counter,)
        )
        return np.random.default_rng(child)
