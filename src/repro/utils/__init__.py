"""Shared utilities: seeded RNG management, clocks, validation, statistics."""

from repro.utils.rng import RngFactory, as_generator
from repro.utils.timer import Stopwatch, VirtualClock
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
)
from repro.utils.stats import RunningMeanVar, summarize

__all__ = [
    "RngFactory",
    "as_generator",
    "Stopwatch",
    "VirtualClock",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_positive_int",
    "RunningMeanVar",
    "summarize",
]
