"""Small argument-validation helpers.

These raise :class:`repro.errors.ConfigurationError` with uniform messages so
misconfiguration is caught at construction time rather than deep inside a
query loop.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConfigurationError


def check_positive(value: float, name: str) -> float:
    """Require ``value > 0``; return it."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Require ``value >= 0``; return it."""
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value!r}")
    return value


def check_positive_int(value: Any, name: str) -> int:
    """Require an integral value > 0; return it as ``int``."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")
    return int(value)


def check_fraction(value: float, name: str, *, inclusive_low: bool = True,
                   inclusive_high: bool = True) -> float:
    """Require ``value`` in [0, 1] (bounds optionally exclusive); return it."""
    low_ok = value >= 0 if inclusive_low else value > 0
    high_ok = value <= 1 if inclusive_high else value < 1
    if not (low_ok and high_ok):
        raise ConfigurationError(f"{name} must lie in the unit interval, got {value!r}")
    return value
