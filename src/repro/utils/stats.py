"""Streaming statistics helpers used by the bandit and the harness."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


class RunningMeanVar:
    """Welford online mean/variance accumulator.

    Used by the UCB baseline (per-arm reward means) and by the harness to
    average curves across seeds without storing all samples.
    """

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        """Fold one observation into the running statistics."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)

    def add_many(self, values: Iterable[float]) -> None:
        """Fold each observation of ``values`` in order."""
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Unbiased sample standard deviation."""
        return math.sqrt(self.variance)


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float


def summarize(values: Sequence[float]) -> Summary:
    """Return a :class:`Summary` of ``values`` (must be non-empty)."""
    if len(values) == 0:
        raise ValueError("cannot summarize an empty sequence")
    arr = np.asarray(values, dtype=float)
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        median=float(np.median(arr)),
        maximum=float(arr.max()),
    )
