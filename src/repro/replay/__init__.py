"""Recorded-arrival replay: audit and reproduce real streaming runs.

The ``thread`` and ``process`` streaming backends merge slices in real —
hence nondeterministic — arrival order.  This package makes such runs
reproducible after the fact:

1. **Record.**  Construct the streaming engine with ``record=True`` (or
   pass ``--record-trace`` to ``python -m repro demo``).  The coordinator
   logs every slice submission and every merge arrival into a JSON-safe
   :class:`~repro.replay.trace.ArrivalTrace` (``engine.trace()``).
2. **Replay.**  :func:`replay_engine` rebuilds the same shards (from the
   trace's root entropy — supply the *same* dataset and scorer) wired to
   the :class:`~repro.replay.backend.ReplayStreamBackend`, which releases
   outcomes in the recorded order and re-emits the recorded wall-clock as
   its virtual clock.  :func:`replay_run` drives the recorded drives end
   to end and returns the final
   :class:`~repro.streaming.engine.StreamingResult`.

A replay reproduces the recorded run's merge sequence, progressive trace,
and answer bit for bit, and two replays of one trace are identical —
pinned by ``tests/test_replay.py``; protocol notes in
``docs/streaming.md``.  Divergence (different dataset, scorer, seed, or
configuration) raises :class:`~repro.errors.ReplayDivergenceError`
instead of silently producing a different history.
"""

from __future__ import annotations

from typing import Optional

from repro.replay.backend import REPLAY_BACKEND_NAME, ReplayStreamBackend
from repro.replay.trace import TRACE_FORMAT, ArrivalTrace, TraceRecorder

__all__ = [
    "ArrivalTrace",
    "REPLAY_BACKEND_NAME",
    "ReplayStreamBackend",
    "TRACE_FORMAT",
    "TraceRecorder",
    "replay_engine",
    "replay_run",
]


def replay_engine(dataset, scorer, trace: ArrivalTrace, *,
                  index_config=None, engine_config=None, index_cache=None,
                  span_trace=None):
    """Build a streaming engine that will re-execute ``trace``.

    ``dataset`` / ``scorer`` must be the ones the trace was recorded
    with (they are not serialized into the trace);  ``index_config`` /
    ``engine_config`` must repeat the recorded run's, exactly as for
    snapshot restore.  The returned engine exposes the normal anytime
    surface (``results_iter`` / ``run`` / ``result``) — drive it with the
    recorded budgets (see :func:`replay_run`).

    ``span_trace`` optionally threads a
    :class:`~repro.obs.spans.TraceContext` through the replay; its
    :meth:`~repro.obs.spans.TraceContext.timeline` (span order, names,
    and deterministic counters — everything but the real stopwatch,
    which PR 4's replay contract carves out) reproduces the recorded
    run's exactly.
    """
    from repro.streaming.engine import StreamingTopKEngine
    from repro.utils.rng import RngFactory

    engine = StreamingTopKEngine(
        dataset, scorer, k=trace.k,
        n_workers=trace.n_workers,
        backend=ReplayStreamBackend(trace),
        index_config=index_config,
        engine_config=engine_config,
        slice_budget=trace.slice_budget,
        share_threshold=trace.share_threshold,
        stable_slices=trace.stable_slices,
        confidence=trace.confidence,
        seed=None,
        index_cache=index_cache,
        trace=span_trace,
    )
    # Re-anchor the RNG streams to the recorded run's root entropy so the
    # partitions and shard engines rebuild identically (same trick as
    # snapshot restore).
    engine._factory = RngFactory(trace.root_entropy)
    engine._root_entropy = trace.root_entropy
    return engine


def replay_run(dataset, scorer, trace: ArrivalTrace, *,
               index_config=None, engine_config=None, index_cache=None,
               span_trace=None):
    """Re-execute every recorded drive; return the final streaming result."""
    engine = replay_engine(
        dataset, scorer, trace,
        index_config=index_config, engine_config=engine_config,
        index_cache=index_cache, span_trace=span_trace,
    )
    try:
        for drive in trace.drives:
            every: Optional[int] = drive.get("every")
            engine.run(budget=int(drive["budget"]),
                       every=None if every is None else int(every))
        return engine.result()
    finally:
        engine.close()
