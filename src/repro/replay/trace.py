"""Recorded-arrival traces: the JSON-safe audit log of a streaming run.

The streaming coordinator (:class:`repro.streaming.engine.StreamingTopKEngine`)
is a *deterministic function of its arrival order*: given the sequence in
which shard slices are consumed, every submission it makes (which shard,
what budget cap, what threshold floor) and every merge it performs follow
mechanically.  On the ``thread`` / ``process`` backends that arrival order
is real and nondeterministic — so recording it is exactly enough to make
a real run reproducible.

An :class:`ArrivalTrace` stores:

* the engine configuration needed to rebuild identical shards (worker
  count, ``k``, slice budget, stopping rules, and the root RNG entropy —
  the dataset and scorer are *not* serialized and must be supplied again
  at replay time);
* one entry per drive (the resolved budget and snapshot granularity);
* the ordered event log — ``submit`` events (worker, cap, floor: recorded
  for cross-validation, since a correct replay re-derives them) and
  ``arrival`` events (worker, elements scored, and the coordinator's
  measured wall-clock at the merge, which the replay re-emits as its
  virtual clock so progressive traces match the recorded run bit for
  bit).

:class:`TraceRecorder` is the coordinator-side collector; construct the
engine with ``record=True`` and read the finished trace with
``engine.trace()``.  Replay lives in :mod:`repro.replay.backend`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import SerializationError

TRACE_FORMAT = "repro-arrival-trace/1"


@dataclass
class ArrivalTrace:
    """One recorded streaming run: configuration + ordered event log."""

    backend: str                    # backend the run was recorded on
    n_workers: int
    k: int
    slice_budget: int
    share_threshold: bool
    stable_slices: Optional[int]
    confidence: Optional[float]
    root_entropy: int
    drives: List[Dict[str, object]] = field(default_factory=list)
    events: List[Dict[str, object]] = field(default_factory=list)

    @property
    def n_arrivals(self) -> int:
        """Number of recorded merge (arrival) events."""
        return sum(1 for event in self.events if event["type"] == "arrival")

    def summary(self) -> str:
        """One-line description of the recorded run."""
        return (
            f"trace of {self.backend}@{self.n_workers} "
            f"(k={self.k}, slice={self.slice_budget}): "
            f"{self.n_arrivals} arrivals over {len(self.drives)} drive(s)"
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation (inverse of :meth:`from_dict`)."""
        return {
            "format": TRACE_FORMAT,
            "backend": self.backend,
            "n_workers": self.n_workers,
            "k": self.k,
            "slice_budget": self.slice_budget,
            "share_threshold": self.share_threshold,
            "stable_slices": self.stable_slices,
            "confidence": self.confidence,
            "root_entropy": self.root_entropy,
            "drives": [dict(drive) for drive in self.drives],
            "events": [dict(event) for event in self.events],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ArrivalTrace":
        """Rebuild a trace from :meth:`to_dict` output; verify the format."""
        if payload.get("format") != TRACE_FORMAT:
            raise SerializationError(
                f"unrecognized arrival-trace format {payload.get('format')!r}"
                f" (expected {TRACE_FORMAT!r})"
            )
        try:
            stable = payload.get("stable_slices")
            confidence = payload.get("confidence")
            return cls(
                backend=str(payload["backend"]),
                n_workers=int(payload["n_workers"]),
                k=int(payload["k"]),
                slice_budget=int(payload["slice_budget"]),
                share_threshold=bool(payload["share_threshold"]),
                stable_slices=None if stable is None else int(stable),
                confidence=None if confidence is None else float(confidence),
                root_entropy=int(payload["root_entropy"]),
                drives=[dict(drive) for drive in payload.get("drives", [])],
                events=[dict(event) for event in payload.get("events", [])],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(
                f"malformed arrival-trace payload: {exc}"
            ) from exc

    def save(self, path: Union[str, Path]) -> Path:
        """Write the trace as JSON; returns the path written."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ArrivalTrace":
        """Read a trace written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))


class TraceRecorder:
    """Coordinator-side event collector (see the module docstring)."""

    def __init__(self) -> None:
        self.drives: List[Dict[str, object]] = []
        self.events: List[Dict[str, object]] = []

    def begin_drive(self, budget: int, every: Optional[int]) -> None:
        """Record the start of one ``results_iter`` drive."""
        self.drives.append({"budget": int(budget), "every": every})

    def submit(self, worker_id: int, cap: int,
               floor: Optional[float]) -> None:
        """Record one slice submission (cap/floor kept for validation)."""
        self.events.append({
            "type": "submit",
            "worker": int(worker_id),
            "cap": int(cap),
            "floor": floor if floor is None else float(floor),
        })

    def arrival(self, worker_id: int, scored: int, wall: float,
                cost: Optional[float] = None) -> None:
        """Record one merge: which shard arrived, when, how much it did.

        ``cost`` is the slice's deterministic virtual-clock charge;
        recorded for replay cross-validation (a diverging shard shows a
        different charge even when the element *count* happens to
        match).  Optional so traces recorded by older code still load
        and replay — the check is skipped when absent.
        """
        event: Dict[str, object] = {
            "type": "arrival",
            "worker": int(worker_id),
            "scored": int(scored),
            "wall": float(wall),
        }
        if cost is not None:
            event["cost"] = float(cost)
        self.events.append(event)
