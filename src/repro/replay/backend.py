"""The ``replay`` streaming backend: deterministic trace re-execution.

:class:`ReplayStreamBackend` drives the serial event loop with a recorded
:class:`~repro.replay.trace.ArrivalTrace` instead of the virtual
completion order: slices execute eagerly at submission (shard state is
deterministic given the ``(cap, floor)`` sequence, which the replaying
coordinator re-derives), and ``next_event`` releases outcomes in exactly
the recorded arrival order, re-emitting the recorded wall-clock as the
virtual clock.  A replayed run therefore reproduces the recorded run's
merge sequence, progressive trace, and final answer bit for bit — and
two replays of the same trace are identical, which makes real-backend
(thread/process) runs auditable and snapshot-testable after the fact.

Every recorded ``submit`` event is cross-checked against the replaying
coordinator's actual submission (worker, cap, floor) and every arrival's
``scored`` count against the re-executed slice; a mismatch raises
:class:`~repro.errors.ReplayDivergenceError` — the dataset, scorer, seed,
or configuration differs from the recorded run.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ReplayDivergenceError
from repro.parallel.worker import RoundOutcome, ShardSpec, ShardWorker
from repro.replay.trace import ArrivalTrace
from repro.streaming.backends import SliceEvent, StreamBackend

REPLAY_BACKEND_NAME = "replay"


class ReplayStreamBackend(StreamBackend):
    """Re-execute a recorded arrival order through the serial event loop."""

    name = REPLAY_BACKEND_NAME
    virtual_clock = True

    def __init__(self, trace: ArrivalTrace) -> None:
        self.trace = trace
        self.workers: List[ShardWorker] = []
        self._cursor = 0
        self._parked: Dict[int, RoundOutcome] = {}

    # -- event-log helpers ---------------------------------------------------

    def _next_recorded(self, expected_type: str) -> Dict[str, object]:
        if self._cursor >= len(self.trace.events):
            raise ReplayDivergenceError(
                f"trace exhausted after {self._cursor} events but the "
                f"coordinator expected another {expected_type!r} event"
            )
        event = self.trace.events[self._cursor]
        if event["type"] != expected_type:
            raise ReplayDivergenceError(
                f"event {self._cursor}: coordinator performed a "
                f"{expected_type!r} but the trace recorded "
                f"{event['type']!r} (worker {event.get('worker')})"
            )
        self._cursor += 1
        return event

    @property
    def exhausted(self) -> bool:
        """True once every recorded event has been replayed."""
        return self._cursor >= len(self.trace.events)

    # -- StreamBackend interface ---------------------------------------------

    def start(self, specs: List[ShardSpec], dataset, scorer,
              worker_times: Optional[List[float]] = None) -> None:
        if len(specs) != self.trace.n_workers:
            raise ReplayDivergenceError(
                f"trace was recorded with {self.trace.n_workers} workers, "
                f"got {len(specs)} shard specs"
            )
        self.workers = [ShardWorker(spec, dataset=dataset, scorer=scorer)
                        for spec in specs]

    def submit(self, worker_id: int, cap: int,
               threshold_floor: Optional[float]) -> None:
        event = self._next_recorded("submit")
        recorded = (event["worker"], event["cap"], event["floor"])
        actual = (worker_id, cap, threshold_floor)
        if recorded != actual:
            raise ReplayDivergenceError(
                f"event {self._cursor - 1}: replayed submission "
                f"(worker, cap, floor)={actual} diverges from recorded "
                f"{recorded} — dataset/scorer/seed/config differ from the "
                f"recorded run"
            )
        outcome = self.workers[worker_id].run_round(cap, threshold_floor)
        self._parked[worker_id] = outcome

    def next_event(self) -> SliceEvent:
        event = self._next_recorded("arrival")
        worker_id = int(event["worker"])
        outcome = self._parked.pop(worker_id, None)
        if outcome is None:
            raise ReplayDivergenceError(
                f"event {self._cursor - 1}: trace releases worker "
                f"{worker_id} but that shard has no slice in flight"
            )
        if outcome.scored != event["scored"]:
            raise ReplayDivergenceError(
                f"event {self._cursor - 1}: worker {worker_id} scored "
                f"{outcome.scored} elements on replay but the trace "
                f"recorded {event['scored']} — shard execution diverged"
            )
        recorded_cost = event.get("cost")
        if recorded_cost is not None and outcome.cost != recorded_cost:
            # The virtual charge is a deterministic function of the slice,
            # so exact equality is the contract (older traces carry no
            # cost field and skip this check).
            raise ReplayDivergenceError(
                f"event {self._cursor - 1}: worker {worker_id} charged "
                f"{outcome.cost!r} virtual seconds on replay but the "
                f"trace recorded {recorded_cost!r} — the scorer's cost "
                f"model differs from the recorded run"
            )
        return SliceEvent(outcome, virtual_completion=float(event["wall"]))

    def snapshots(self) -> List[dict]:
        return [worker.snapshot() for worker in self.workers]

    def inline_workers(self) -> Optional[List[ShardWorker]]:
        return self.workers
