"""A minimal declarative query interface — the Section 7.4 sketch.

"A minimal implementation is natural in a system that supports UDFs and an
incrementally updating query interface."  :class:`OpaqueQuerySession` is
that minimal implementation: register tables (datasets) and UDFs (scorers),
then execute queries written in a small SQL-ish dialect:

    SELECT TOP 250 FROM listings ORDER BY valuation
        [BUDGET 10% | BUDGET 5000] [BATCH 32] [SEED 7]

The session builds (and caches) one index per table — the index is
task-independent, so every UDF registered against a table reuses it — and
runs the anytime engine for the requested budget.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.engine import EngineConfig, TopKEngine
from repro.core.result import QueryResult
from repro.data.dataset import Dataset
from repro.errors import ConfigurationError
from repro.index.builder import IndexConfig, build_index
from repro.index.tree import ClusterTree
from repro.scoring.base import Scorer

_QUERY_RE = re.compile(
    r"""
    ^\s*SELECT\s+TOP\s+(?P<k>\d+)
    \s+FROM\s+(?P<table>[A-Za-z_][A-Za-z0-9_]*)
    \s+ORDER\s+BY\s+(?P<udf>[A-Za-z_][A-Za-z0-9_]*)
    (?:\s+(?P<desc>DESC))?
    (?:\s+BUDGET\s+(?P<budget>\d+(?:\.\d+)?)(?P<pct>%)?)?
    (?:\s+BATCH\s+(?P<batch>\d+))?
    (?:\s+SEED\s+(?P<seed>\d+))?
    \s*;?\s*$
    """,
    re.IGNORECASE | re.VERBOSE,
)


@dataclass(frozen=True)
class ParsedQuery:
    """The components of one opaque top-k query."""

    k: int
    table: str
    udf: str
    budget: Optional[int]          # absolute scoring-call budget
    budget_fraction: Optional[float]  # or a fraction of the table
    batch_size: int
    seed: Optional[int]


def parse_query(text: str) -> ParsedQuery:
    """Parse the SQL-ish dialect; raise ConfigurationError with guidance."""
    match = _QUERY_RE.match(text)
    if match is None:
        raise ConfigurationError(
            "could not parse query; expected: SELECT TOP <k> FROM <table> "
            "ORDER BY <udf> [DESC] [BUDGET <n> | BUDGET <p>%] [BATCH <b>] "
            f"[SEED <s>] — got {text!r}"
        )
    groups = match.groupdict()
    budget: Optional[int] = None
    fraction: Optional[float] = None
    if groups["budget"] is not None:
        value = float(groups["budget"])
        if groups["pct"]:
            if not 0.0 < value <= 100.0:
                raise ConfigurationError(
                    f"BUDGET percentage must be in (0, 100], got {value}"
                )
            fraction = value / 100.0
        else:
            budget = int(value)
            if budget <= 0:
                raise ConfigurationError("BUDGET must be positive")
    return ParsedQuery(
        k=int(groups["k"]),
        table=groups["table"],
        udf=groups["udf"],
        budget=budget,
        budget_fraction=fraction,
        batch_size=int(groups["batch"]) if groups["batch"] else 1,
        seed=int(groups["seed"]) if groups["seed"] else None,
    )


class OpaqueQuerySession:
    """Registry of tables and UDFs plus a tiny declarative executor."""

    def __init__(self, default_index_config: Optional[IndexConfig] = None,
                 index_seed: int = 0) -> None:
        self._tables: Dict[str, Dataset] = {}
        self._indexes: Dict[str, ClusterTree] = {}
        self._index_configs: Dict[str, IndexConfig] = {}
        self._udfs: Dict[str, Scorer] = {}
        self._default_index_config = default_index_config
        self._index_seed = index_seed

    # -- registration --------------------------------------------------------

    def register_table(self, name: str, dataset: Dataset,
                       index_config: Optional[IndexConfig] = None,
                       index: Optional[ClusterTree] = None) -> None:
        """Register a dataset; optionally with a prebuilt index."""
        if name in self._tables:
            raise ConfigurationError(f"table {name!r} already registered")
        self._tables[name] = dataset
        if index is not None:
            if index.n_elements() != len(dataset):
                raise ConfigurationError(
                    "prebuilt index does not cover the dataset"
                )
            self._indexes[name] = index
        if index_config is not None:
            self._index_configs[name] = index_config

    def register_udf(self, name: str, scorer: Scorer) -> None:
        """Register an opaque scoring function under a name."""
        if name in self._udfs:
            raise ConfigurationError(f"udf {name!r} already registered")
        self._udfs[name] = scorer

    # -- execution ---------------------------------------------------------------

    def _index_for(self, table: str) -> ClusterTree:
        """Build (once) or fetch the table's task-independent index."""
        if table not in self._indexes:
            dataset = self._tables[table]
            config = self._index_configs.get(
                table,
                self._default_index_config
                or IndexConfig(n_clusters=max(2, min(64, len(dataset) // 50))),
            )
            self._indexes[table] = build_index(
                dataset.features(), dataset.ids(), config,
                rng=self._index_seed,
            )
        return self._indexes[table]

    def execute(self, query: str) -> QueryResult:
        """Parse and run one query; returns the engine's QueryResult."""
        parsed = parse_query(query)
        if parsed.table not in self._tables:
            raise ConfigurationError(
                f"unknown table {parsed.table!r}; registered: "
                f"{sorted(self._tables)}"
            )
        if parsed.udf not in self._udfs:
            raise ConfigurationError(
                f"unknown udf {parsed.udf!r}; registered: "
                f"{sorted(self._udfs)}"
            )
        dataset = self._tables[parsed.table]
        scorer = self._udfs[parsed.udf]
        budget = parsed.budget
        if parsed.budget_fraction is not None:
            budget = max(parsed.k, int(parsed.budget_fraction * len(dataset)))
        engine = TopKEngine(
            self._index_for(parsed.table),
            EngineConfig(k=parsed.k, batch_size=parsed.batch_size,
                         seed=parsed.seed),
            scoring_latency_hint=scorer.batch_cost(parsed.batch_size)
            / max(1, parsed.batch_size),
        )
        return engine.run(dataset, scorer, budget=budget)
