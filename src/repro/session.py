"""A declarative query interface — the Section 7.4 sketch, grown up.

"A minimal implementation is natural in a system that supports UDFs and an
incrementally updating query interface."  :class:`OpaqueQuerySession` is
that implementation: register tables (datasets) and UDFs (scorers), then
execute queries written in a small SQL-ish dialect.

Queries run through a three-stage pipeline (see :mod:`repro.query`):

1. **Parse** — :func:`repro.query.parse`, a hand-written recursive-descent
   parser (order-insensitive clauses, ``WHERE`` feature predicates,
   ``EXPLAIN``, caret-span errors), produces a logical
   :class:`~repro.query.plan.QueryPlan`.  The parser module docstring is
   the normative grammar; ``docs/dialect.md`` is the user-facing tour.
2. **Resolve** — :meth:`OpaqueQuerySession.plan` checks registrations,
   merges caller-side defaults (validated exactly like the equivalent
   clauses), evaluates the ``WHERE`` mask over the table's features, and
   resolves the budget into an :class:`~repro.query.plan.ExecutionPlan`.
3. **Dispatch** — :meth:`OpaqueQuerySession.execute` hands the plan to
   the matching executor from the registry in
   :mod:`repro.query.executors` (``single`` / ``sharded`` /
   ``streaming``), or returns the plan itself for ``EXPLAIN`` queries.

Every executor returns a :class:`~repro.core.result.ResultBase`: the
single-engine :class:`~repro.core.result.QueryResult`, the sharded
:class:`~repro.parallel.engine.DistributedResult`, or the streaming
:class:`~repro.streaming.engine.StreamingResult` — one shared surface
(``items`` / ``summary()`` / ``budget_spent`` / ``displacement_bound`` /
``to_json()``).

:func:`parse_query` and :class:`ParsedQuery` remain as thin deprecation
shims over the new parser:

    >>> parse_query("SELECT TOP 10 FROM t ORDER BY f").k
    10
    >>> parsed = parse_query("SELECT TOP 5 FROM listings ORDER BY "
    ...                      "valuation BUDGET 10% SEED 7")
    >>> (parsed.table, parsed.udf, parsed.budget_fraction, parsed.seed)
    ('listings', 'valuation', 0.1, 7)
    >>> parse_query("SELECT TOP 5 FROM t ORDER BY f "
    ...             "WHERE feature[0] > 0.5 STREAM CONFIDENCE 95%").where
    'feature[0] > 0.5'

The session builds (and caches) one index per table — the index is
task-independent, so every UDF registered against a table reuses it.
Per-shard partition indexes are cached across sharded *and* streaming
runs on the same table (one :class:`~repro.parallel.cache.ShardIndexCache`
per table, keys including the ``WHERE`` candidate-subset fingerprint), so
repeat queries with the same seed, worker count, filter, and index
configuration skip every per-partition k-means fit.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from typing import Dict, Iterator, Optional, Tuple, Union

import numpy as np

from repro.core.convergence import check_confidence
from repro.core.result import QueryResult, ResultBase
from repro.data.dataset import Dataset
from repro.errors import ConfigurationError
from repro.index.builder import IndexConfig, build_index
from repro.index.tree import ClusterNode, ClusterTree
from repro.live.maintenance import IndexMaintainer
from repro.live.table import LiveTable, TableSnapshot
from repro.memo import MemoStore, PriorStore, udf_fingerprint
from repro.obs.analyze import ExplainAnalyzeReport
from repro.obs.metrics import BOUND_WIDTH, MEMO_HIT_RATE, QUERIES_TOTAL
from repro.obs.spans import Span, TraceContext
from repro.parallel.backends import available_backends
from repro.parallel.cache import ShardIndexCache
from repro.parallel.engine import DistributedResult
from repro.query.executors import StreamingExecutor, get_executor
from repro.query.parser import parse
from repro.query.plan import ExecutionPlan, QueryPlan
from repro.scoring.base import Scorer
from repro.streaming.engine import ProgressiveResult, StreamingResult


@dataclass(frozen=True)
class ParsedQuery:
    """Deprecated flat view of one parsed query.

    Thin shim over :class:`repro.query.plan.QueryPlan` kept for backward
    compatibility; new code should call :func:`repro.query.parse` and use
    the plan directly (the ``where`` predicate survives only as canonical
    text here).
    """

    k: int
    table: str
    udf: str
    budget: Optional[int]          # absolute scoring-call budget
    budget_fraction: Optional[float]  # or a fraction of the candidates
    batch_size: int
    seed: Optional[int]
    descending: bool = True        # DESC is documentary; top-k maximizes
    workers: Optional[int] = None  # WORKERS clause (None = not specified)
    backend: Optional[str] = None  # BACKEND clause (None = not specified)
    stream: bool = False           # STREAM clause (barrier-free execution)
    every: Optional[int] = None    # EVERY clause (snapshot granularity)
    confidence: Optional[float] = None  # CONFIDENCE clause (early stop)
    where: Optional[str] = None    # WHERE clause, canonical predicate text
    explain: bool = False          # EXPLAIN-wrapped statement
    analyze: bool = False          # EXPLAIN ANALYZE-wrapped statement


def parse_query(text: str) -> ParsedQuery:
    """Deprecated: parse the dialect into a flat :class:`ParsedQuery`.

    Thin shim over :func:`repro.query.parse`; see the parser module
    (:mod:`repro.query.parser`) for the normative grammar and
    ``docs/dialect.md`` for the tour.
    """
    plan = parse(text)
    return ParsedQuery(
        k=plan.k,
        table=plan.table,
        udf=plan.udf,
        budget=plan.budget,
        budget_fraction=plan.budget_fraction,
        batch_size=plan.batch_size,
        seed=plan.seed,
        descending=plan.descending,
        workers=plan.workers,
        backend=plan.backend,
        stream=plan.stream,
        every=plan.every,
        confidence=plan.confidence,
        where=None if plan.where is None else plan.where.canonical(),
        explain=plan.explain,
        analyze=plan.analyze,
    )


class OpaqueQuerySession:
    """Registry of tables and UDFs plus the declarative executor.

    ``enable_cache`` (default on) activates the cross-query score memo
    (:mod:`repro.memo`): scores are remembered per ``(udf fingerprint,
    element id)`` across queries on the same table, so no element is ever
    scored twice by the same UDF — and memo hits are *transparent* (full
    budget and clock accounting), so warm answers are bit-identical to
    cold ones.  Per-query overrides: ``execute(..., use_cache=False)``
    disables the memo for one dispatch; ``warm_start=True`` additionally
    preloads bandit histogram priors harvested from earlier runs on the
    same ``(table, udf)`` pair (opt-in — a warm-started run explores
    differently, deterministically, but not bit-identically).

    A session instance serves **one caller at a time** — engines mutate
    per-dispatch state (``last_trace``, prior harvests) through it.  For
    concurrent callers, :meth:`fork` derives a connection-local session
    that *shares* the registrations and every transparent cache (tables,
    indexes, UDFs, shard-index caches, score memos — all safe to share
    because hits are bit-identical to rebuilds/rescoring) while keeping
    the non-transparent state private (warm-start prior stores — priors
    change exploration, so one tenant's learning must never leak into
    another's answers — and ``last_trace``).  The multi-tenant service
    (:mod:`repro.service`) forks one child per query.
    """

    def __init__(self, default_index_config: Optional[IndexConfig] = None,
                 index_seed: int = 0,
                 sync_interval: int = 100,
                 enable_cache: bool = True) -> None:
        self._tables: Dict[str, Dataset] = {}
        self._indexes: Dict[str, ClusterTree] = {}
        self._index_configs: Dict[str, IndexConfig] = {}
        self._udfs: Dict[str, Scorer] = {}
        self._default_index_config = default_index_config
        self._index_seed = index_seed
        self._sync_interval = sync_interval  # WORKERS merge / slice cadence
        # Per-table cache of per-shard partition indexes, shared by the
        # sharded (round) and streaming engines: datasets are immutable
        # once registered, so a repeat query with the same seed / worker
        # count / filter / index config reuses every partition index.
        self._shard_caches: Dict[str, ShardIndexCache] = {}
        # Cross-query learning (repro.memo): one score memo and one
        # warm-start prior store per table, keyed inside by UDF
        # fingerprint, so distinct scorers never share entries.
        self._enable_cache = bool(enable_cache)
        self._memos: Dict[str, "MemoStore"] = {}
        self._prior_stores: Dict[str, "PriorStore"] = {}
        # Live tables: one incremental index maintainer per mutable
        # table (shared across forks — the maintained tree is as
        # transparent as a built one), plus this fork's high-water mark
        # of the maintainer's touched-node log (prior stores are
        # fork-private, so each fork dirties its own priors).
        self._maintainers: Dict[str, IndexMaintainer] = {}
        self._prior_versions: Dict[str, int] = {}
        # Fingerprint taken at registration time (refreshed at plan time,
        # so post-registration parameter mutation invalidates cleanly).
        self._udf_fingerprints: Dict[str, Optional[str]] = {}
        #: Span tree of the most recent traced dispatch (``trace=True``
        #: or ``EXPLAIN ANALYZE``); ``None`` until one runs.
        self.last_trace: Optional[TraceContext] = None
        # Guards the lazy builders above (index/memo/cache creation) when
        # forked sessions race on first touch; shared across forks.
        self._registry_lock = threading.RLock()

    # -- connection isolation ------------------------------------------------

    def fork(self) -> "OpaqueQuerySession":
        """Derive a connection-local session over the same registrations.

        The fork shares every *transparent* structure with its parent —
        tables, built indexes, index configs, UDFs and their
        fingerprints, shard-index caches, and score memos (a hit in any
        of them is bit-identical to the rebuild or rescore it skips, so
        tenants warm each other without contaminating answers).  It gets
        its **own** warm-start prior stores (priors deliberately change
        exploration, so they stay per-connection) and its own
        ``last_trace``.  Registrations made on either side after the
        fork are visible to both — the registries are shared, not
        copied.
        """
        child = OpaqueQuerySession(
            default_index_config=self._default_index_config,
            index_seed=self._index_seed,
            sync_interval=self._sync_interval,
            enable_cache=self._enable_cache,
        )
        child._tables = self._tables
        child._indexes = self._indexes
        child._index_configs = self._index_configs
        child._udfs = self._udfs
        child._udf_fingerprints = self._udf_fingerprints
        child._shard_caches = self._shard_caches
        child._memos = self._memos
        child._maintainers = self._maintainers
        child._registry_lock = self._registry_lock
        return child

    # -- registration --------------------------------------------------------

    @staticmethod
    def _check_name(name: str, what: str) -> None:
        """Reject registry names the dialect could never reference."""
        from repro.query.parser import KEYWORDS

        if name.upper() in KEYWORDS:
            raise ConfigurationError(
                f"{what} name {name!r} is a reserved dialect keyword and "
                f"could never be queried; pick another name "
                f"(reserved: {', '.join(sorted(KEYWORDS))})"
            )

    def register_table(self, name: str, dataset: Dataset,
                       index_config: Optional[IndexConfig] = None,
                       index: Optional[ClusterTree] = None) -> None:
        """Register a dataset; optionally with a prebuilt index."""
        self._check_name(name, "table")
        if name in self._tables:
            raise ConfigurationError(f"table {name!r} already registered")
        self._tables[name] = dataset
        if index is not None:
            if index.n_elements() != len(dataset):
                raise ConfigurationError(
                    "prebuilt index does not cover the dataset"
                )
            self._indexes[name] = index
        if index_config is not None:
            self._index_configs[name] = index_config

    def register_udf(self, name: str, scorer: Scorer) -> None:
        """Register an opaque scoring function under a name.

        The scorer is fingerprinted (:func:`repro.memo.udf_fingerprint`)
        so the cross-query memo can key its scores; an unfingerprintable
        scorer registers fine but runs with caching off.
        """
        self._check_name(name, "udf")
        if name in self._udfs:
            raise ConfigurationError(f"udf {name!r} already registered")
        self._udfs[name] = scorer
        self._udf_fingerprints[name] = udf_fingerprint(scorer)

    # -- executor plumbing (shared with repro.query.executors) ---------------

    def _index_for(self, table: str, version: Optional[int] = None,
                   dataset: Optional[Dataset] = None) -> ClusterTree:
        """Build (once) or fetch the table's task-independent index.

        Serialized under the registry lock so racing forks build the
        index exactly once (the build is deterministic, but one build is
        still cheaper than two).

        For live tables the maintained tree is served after catching the
        maintainer up to the write log.  ``version`` pins the request to
        one snapshot version: when it no longer matches the maintained
        tree (a write committed between plan and dispatch), a one-off
        tree is built from the pinned ``dataset`` instead — the query
        keeps its snapshot-isolated answer, uncached.
        """
        with self._registry_lock:
            live = self._live_table(table)
            if live is not None:
                _snapshot, maintainer = self._reconcile_writes(table, live)
                if version is not None and version != maintainer.version:
                    if dataset is None:
                        raise ConfigurationError(
                            f"table {table!r} is at version "
                            f"{maintainer.version}; cannot serve version "
                            f"{version} without its pinned snapshot"
                        )
                    return self._build_tree(table, dataset)
                return maintainer.tree
            if table not in self._indexes:
                dataset = self._tables[table]
                config = self._index_configs.get(
                    table,
                    self._default_index_config
                    or IndexConfig(
                        n_clusters=max(2, min(64, len(dataset) // 50))),
                )
                self._indexes[table] = build_index(
                    dataset.features(), dataset.ids(), config,
                    rng=self._index_seed,
                )
            return self._indexes[table]

    # -- live tables ---------------------------------------------------------

    def _live_table(self, table: str) -> Optional[LiveTable]:
        """The registered :class:`LiveTable`, or ``None`` (static)."""
        dataset = self._tables.get(table)
        return dataset if isinstance(dataset, LiveTable) else None

    def _build_tree(self, table: str, snapshot: Dataset) -> ClusterTree:
        """Full index build over one snapshot (the rebuild fallback).

        Applies the same sizing policy as the static path, clamped to
        the snapshot's current row count (a live table may have shrunk
        below the configured cluster count).
        """
        if len(snapshot) == 0:
            return ClusterTree(ClusterNode(node_id="root"))
        config = self._index_configs.get(
            table,
            self._default_index_config
            or IndexConfig(
                n_clusters=max(2, min(64, len(snapshot) // 50))),
        )
        if config.n_clusters > len(snapshot):
            config = replace(config, n_clusters=max(1, len(snapshot)))
        return build_index(snapshot.features(), snapshot.ids(), config,
                           rng=self._index_seed)

    def _maintainer_for(self, table: str,
                        live: LiveTable) -> IndexMaintainer:
        """The table's incremental index maintainer (lazily created).

        Caller holds the registry lock.  A registration-time prebuilt
        index is adopted only when it still covers exactly the live ids;
        otherwise the first touch rebuilds.
        """
        maintainer = self._maintainers.get(table)
        if maintainer is None:
            snapshot = live.snapshot()
            tree = self._indexes.get(table)
            if tree is not None:
                covered = {member for leaf in tree.leaves()
                           for member in leaf.member_ids}
                if covered != set(snapshot.ids()):
                    tree = None
            if tree is None:
                tree = self._build_tree(table, snapshot)
                self._indexes[table] = tree
            maintainer = IndexMaintainer(
                tree, snapshot,
                lambda snap, _table=table: self._build_tree(_table, snap),
                table=table,
            )
            self._maintainers[table] = maintainer
        return maintainer

    def _reconcile_writes(
            self, table: str, live: LiveTable,
    ) -> Tuple[TableSnapshot, IndexMaintainer]:
        """Catch every version-keyed structure up to the write log.

        Caller holds the registry lock.  Shared structures — the
        maintained index, the memo's MVCC write stamps, the shard-index
        cache — advance exactly once across forks; the fork-private
        warm-start prior store replays the maintainer's touched-node log
        from wherever *this* fork last synced, dropping exactly the node
        histograms whose subtrees changed.  Returns the snapshot the
        reconciliation ran against (callers pin queries to it).
        """
        maintainer = self._maintainer_for(table, live)
        snapshot = live.snapshot()
        if maintainer.version < snapshot.version:
            deltas = live.deltas_since(maintainer.version,
                                       upto=snapshot.version)
            maintainer.advance(deltas, snapshot)
            self._indexes[table] = maintainer.tree
            self._shard_cache_for(table).evict_stale(maintainer.version)
        memo = self._memo_for(table)
        for delta in live.deltas_since(memo.table_version,
                                       upto=maintainer.version):
            memo.apply_writes(delta.ids, delta.version)
        synced = self._prior_versions.get(table, 0)
        if synced < maintainer.version:
            store = self._prior_store_for(table)
            if synced < maintainer.log_floor:
                store.clear()  # the log no longer reaches back that far
            else:
                doomed = set()
                for version, nodes in maintainer.touched_log:
                    if version > synced:
                        doomed.update(nodes)
                store.drop_nodes(doomed)
            self._prior_versions[table] = maintainer.version
        return snapshot, maintainer

    def table_info(self, table: str) -> dict:
        """Version, row count, and index-freshness card of one table.

        The per-table surface behind ``repro info``: static tables
        report version 0 and a ``static``/``unbuilt`` index; live tables
        report their current ``table_version``, per-kind write counters,
        and how the maintained index last caught up (``built`` /
        ``incremental`` / ``rebuilt``).
        """
        if table not in self._tables:
            raise ConfigurationError(
                f"unknown table {table!r}; registered: "
                f"{sorted(self._tables)}"
            )
        with self._registry_lock:
            dataset = self._tables[table]
            live = self._live_table(table)
            info = {
                "table": table,
                "rows": len(dataset),
                "live": live is not None,
                "version": 0,
                "index_freshness": ("static" if table in self._indexes
                                    else "unbuilt"),
            }
            if live is not None:
                stats = live.stats()
                info["version"] = stats["version"]
                info["writes"] = stats["writes"]
                maintainer = self._maintainers.get(table)
                if maintainer is None:
                    info["index_freshness"] = "unbuilt"
                else:
                    info["index_freshness"] = maintainer.freshness
                    info["index_version"] = maintainer.version
                    info["index_splits"] = maintainer.n_splits
                    info["index_rebuilds"] = maintainer.n_rebuilds
            return info

    def _shard_cache_for(self, table: str) -> ShardIndexCache:
        """The table's cross-run cache of per-shard partition indexes."""
        with self._registry_lock:
            if table not in self._shard_caches:
                self._shard_caches[table] = ShardIndexCache()
            return self._shard_caches[table]

    def _memo_for(self, table: str) -> MemoStore:
        """The table's cross-query score memo (created on first touch)."""
        with self._registry_lock:
            if table not in self._memos:
                self._memos[table] = MemoStore()
            return self._memos[table]

    def _prior_store_for(self, table: str) -> PriorStore:
        """The table's warm-start prior store (created on first touch).

        Prior stores are fork-private (see :meth:`fork`), but a fork's
        executor threads may still race each other, so creation stays
        under the shared lock.
        """
        with self._registry_lock:
            if table not in self._prior_stores:
                self._prior_stores[table] = PriorStore()
            return self._prior_stores[table]

    def _memo_view_for(self, plan: ExecutionPlan):
        """The memo view an executor should thread, or ``None`` (off).

        Live-table plans carry their pinned snapshot's version; the view
        then refuses hits on — and never records scores for — elements
        rewritten after that version (the MVCC rule in
        :mod:`repro.memo.store`), so a reader over an old snapshot can
        neither consume nor poison newer scores.
        """
        if not plan.cache_enabled or plan.fingerprint is None:
            return None
        reader_version = (plan.table_version if plan.dataset is not None
                          else None)
        return self._memo_for(plan.table).view(
            plan.fingerprint, reader_version=reader_version)

    def cache_stats(self, table: str) -> dict:
        """Hit/miss/entry statistics of one table's score memo."""
        if table not in self._tables:
            raise ConfigurationError(
                f"unknown table {table!r}; registered: "
                f"{sorted(self._tables)}"
            )
        return self._memo_for(table).stats()

    # -- planning ------------------------------------------------------------

    def plan(self, query: Union[str, QueryPlan], *,
             workers: Optional[int] = None,
             backend: Optional[str] = None,
             stream: Optional[bool] = None,
             every: Optional[int] = None,
             confidence: Optional[float] = None,
             use_cache: Optional[bool] = None,
             warm_start: bool = False) -> ExecutionPlan:
        """Parse and resolve one query into an :class:`ExecutionPlan`.

        The keyword arguments are caller-side defaults (e.g. CLI flags)
        for the equivalent clauses; explicit clauses in the query text
        win.  Defaults are validated exactly like the clauses they stand
        in for, so ``execute(sql, backend="bogus")`` fails as loudly as
        ``... BACKEND bogus`` — never reaching an engine unvalidated.

        ``use_cache`` overrides the session's ``enable_cache`` for this
        query; ``warm_start`` opts into preloading harvested bandit
        priors (requires the cache).  The UDF fingerprint is recomputed
        here, so mutating a scorer's parameters after registration
        changes the key and never serves stale scores.
        """
        logical = parse(query) if isinstance(query, str) else query
        if logical.table not in self._tables:
            raise ConfigurationError(
                f"unknown table {logical.table!r}; registered: "
                f"{sorted(self._tables)}"
            )
        if logical.udf not in self._udfs:
            raise ConfigurationError(
                f"unknown udf {logical.udf!r}; registered: "
                f"{sorted(self._udfs)}"
            )
        dataset = self._tables[logical.table]
        # Live tables: reconcile the write log (index maintenance, memo
        # stamps, cache eviction, prior dirtying), then pin this query to
        # an immutable snapshot — concurrent writers can no longer change
        # what it reads.
        live = self._live_table(logical.table)
        table_version = 0
        index_freshness = None
        if live is not None:
            with self._registry_lock:
                pinned, maintainer = self._reconcile_writes(
                    logical.table, live)
            dataset = pinned
            table_version = pinned.version
            index_freshness = maintainer.freshness
        # Merge caller-side defaults under clause-wins precedence; every
        # merged value passes the same validation as its clause.
        n_workers = self._check_workers(
            logical.workers if logical.workers is not None else workers
        )
        backend_name = self._check_backend(logical.backend or backend)
        every = self._check_every(
            logical.every if logical.every is not None else every
        )
        confidence = check_confidence(
            logical.confidence if logical.confidence is not None
            else confidence
        )
        # Like the CLI's --every, an every= default implies streaming
        # (the EVERY clause itself already requires STREAM at parse time).
        streaming = bool(logical.stream or stream
                         or confidence is not None or every is not None)
        # WHERE pushdown: evaluate the predicate mask once over the cheap
        # feature matrix; the candidate list flows to every executor.
        allowed_ids = None
        n_candidates = len(dataset)
        if logical.where is not None:
            mask = np.asarray(logical.where.mask(dataset.features()),
                              dtype=bool)
            all_ids = dataset.ids()
            # flatnonzero + fancy indexing keeps the compaction out of
            # the interpreter loop (a 1M-row zip walk costs ~100 ms).
            allowed_ids = [all_ids[i] for i in np.flatnonzero(mask)]
            n_candidates = len(allowed_ids)
            # A filter may leave fewer candidates than requested shards;
            # clamp so the query still runs (one worker minimum) instead
            # of failing with a worker-count error that never mentions
            # the WHERE clause.
            n_workers = min(n_workers, max(1, n_candidates))
        budget = logical.budget
        if logical.budget_fraction is not None:
            budget = max(logical.k,
                         int(logical.budget_fraction * n_candidates))
        # Zero surviving candidates degenerate to the single executor,
        # which short-circuits to an (exact) empty answer — there is
        # nothing to shard or stream.
        mode = ("single" if n_candidates == 0
                else "streaming" if streaming
                else "sharded" if n_workers > 1 else "single")
        # Cross-query memo: refresh the fingerprint (mutation-safe) and
        # decide whether this dispatch caches.  The expected hit rate is
        # an O(candidates) probe, so it is computed for EXPLAIN only.
        fingerprint = udf_fingerprint(self._udfs[logical.udf])
        self._udf_fingerprints[logical.udf] = fingerprint
        cache_on = (self._enable_cache if use_cache is None
                    else bool(use_cache)) and fingerprint is not None
        memo_entries = 0
        expected_hit_rate = None
        if cache_on:
            memo_entries = self._memo_for(logical.table).n_entries(
                fingerprint
            )
            if logical.explain:
                expected_hit_rate = self._memo_for(
                    logical.table
                ).expected_hit_rate(
                    fingerprint, ids=allowed_ids,
                    n_candidates=n_candidates,
                )
        return ExecutionPlan(
            query=logical,
            mode=mode,
            n_elements=len(dataset),
            n_candidates=n_candidates,
            budget=budget,
            batch_size=logical.batch_size,
            seed=logical.seed,
            workers=n_workers,
            backend=backend_name,
            every=every,
            confidence=confidence,
            allowed_ids=allowed_ids,
            fingerprint=fingerprint,
            cache_enabled=cache_on,
            warm_start=bool(warm_start) and cache_on,
            memo_entries=memo_entries,
            expected_hit_rate=expected_hit_rate,
            dataset=dataset if live is not None else None,
            table_version=table_version,
            index_freshness=index_freshness,
        )

    @staticmethod
    def _check_workers(workers: Optional[int]) -> int:
        if workers is None:
            return 1
        if int(workers) != workers or workers <= 0:
            raise ConfigurationError(
                f"workers must be positive, got {workers!r}"
            )
        return int(workers)

    @staticmethod
    def _check_backend(backend: Optional[str]) -> str:
        if backend is None:
            return "serial"
        if backend not in available_backends():
            raise ConfigurationError(
                f"unknown backend {backend!r}; available: "
                f"{', '.join(available_backends())}"
            )
        return backend

    @staticmethod
    def _check_every(every: Optional[int]) -> Optional[int]:
        if every is None:
            return None
        if int(every) != every or every <= 0:
            raise ConfigurationError(
                f"every must be positive, got {every!r}"
            )
        return int(every)

    # -- execution -----------------------------------------------------------

    def execute(self, query: Union[str, QueryPlan], *,
                workers: Optional[int] = None,
                backend: Optional[str] = None,
                stream: Optional[bool] = None,
                every: Optional[int] = None,
                confidence: Optional[float] = None,
                use_cache: Optional[bool] = None,
                warm_start: bool = False,
                trace: bool = False,
                budget_gate=None,
                ) -> Union[ResultBase, ExecutionPlan,
                           ExplainAnalyzeReport]:
        """Parse, resolve, and dispatch one query.

        Single-engine queries return a
        :class:`~repro.core.result.QueryResult`; ``WORKERS > 1`` queries
        a :class:`~repro.parallel.engine.DistributedResult`; ``STREAM``
        queries the final
        :class:`~repro.streaming.engine.StreamingResult` (use
        :meth:`stream` for live snapshots) — all implementing
        :class:`~repro.core.result.ResultBase`.  ``EXPLAIN`` queries
        return the resolved :class:`~repro.query.plan.ExecutionPlan`
        instead of executing; ``EXPLAIN ANALYZE`` queries run under a
        forced tracer and return an
        :class:`~repro.obs.analyze.ExplainAnalyzeReport`.  Keyword
        arguments are caller-side defaults for the equivalent clauses
        (see :meth:`plan`).

        ``trace=True`` records a query-lifecycle span tree
        (:class:`~repro.obs.spans.TraceContext`) without changing the
        answer — tracing observes totals the engines already account, so
        traced runs stay bit-identical.  The tree is attached to the
        result as ``result.trace`` and kept as :attr:`last_trace`.

        ``budget_gate`` threads a service
        :class:`~repro.service.budget.QueryGrant` (or anything with its
        ``acquire``/``refund`` shape) to the engine, metering the
        query's real UDF calls against a shared pool; a fully funded
        gate never changes the answer.
        """
        t_parse = time.perf_counter()
        logical = parse(query) if isinstance(query, str) else query
        parse_wall = time.perf_counter() - t_parse
        # ANALYZE forces a tracer: the report *is* the span tree.  The
        # parse span is attached after the fact (the ANALYZE keyword is
        # only known once parsing is done) — backdating the origin to
        # t_parse keeps the timeline starting at the parse, not after it.
        tracer = (TraceContext(origin=t_parse)
                  if trace or logical.analyze else None)
        if tracer is not None:
            tracer.attach(Span("parse", wall=parse_wall).to_dict())
            with tracer.span("plan"):
                resolved = self.plan(logical, workers=workers,
                                     backend=backend, stream=stream,
                                     every=every, confidence=confidence,
                                     use_cache=use_cache,
                                     warm_start=warm_start)
        else:
            resolved = self.plan(logical, workers=workers, backend=backend,
                                 stream=stream, every=every,
                                 confidence=confidence,
                                 use_cache=use_cache, warm_start=warm_start)
        if resolved.query.explain and not resolved.query.analyze:
            return resolved
        if resolved.query.continuous:
            raise ConfigurationError(
                "CONTINUOUS queries are standing subscriptions, not "
                "one-shot dispatches; drive one with "
                "repro.live.ContinuousQuery or submit it to the "
                "multi-tenant repro.service.QueryService"
            )
        resolved.trace = tracer
        resolved.gate = budget_gate
        if tracer is not None:
            self.last_trace = tracer
        stats_before = (self._memo_for(resolved.table).stats()
                        if resolved.cache_enabled else None)
        result = get_executor(resolved.mode).execute(self, resolved)
        self._observe_query(resolved, result, stats_before)
        if tracer is not None:
            result.trace = tracer
        if resolved.query.analyze:
            return ExplainAnalyzeReport(plan=resolved, result=result,
                                        trace=tracer)
        return result

    def _observe_query(self, plan: ExecutionPlan, result: ResultBase,
                       stats_before: Optional[dict]) -> None:
        """Fold one finished dispatch into the process-wide metrics.

        Always on (unlike span tracing): one counter bump and two gauge
        stores per *query* — never per element — so the cost is
        unmeasurable against even the cheapest dispatch.
        """
        QUERIES_TOTAL.inc(table=plan.table, mode=plan.mode)
        BOUND_WIDTH.set(float(result.displacement_bound), mode=plan.mode)
        if stats_before is not None:
            after = self._memo_for(plan.table).stats()
            hits = after["hits"] - stats_before["hits"]
            looked = hits + (after["misses"] - stats_before["misses"])
            if looked:
                MEMO_HIT_RATE.set(hits / looked, table=plan.table)

    def stream(self, query: Union[str, QueryPlan], *,
               workers: Optional[int] = None,
               backend: Optional[str] = None,
               every: Optional[int] = None,
               confidence: Optional[float] = None,
               use_cache: Optional[bool] = None,
               warm_start: bool = False,
               trace: bool = False,
               budget_gate=None,
               ) -> Iterator[ProgressiveResult]:
        """Run one query barrier-free, yielding progressive snapshots.

        Any query is accepted (a ``STREAM`` clause is implied); snapshots
        arrive from the first slice onward and the last one carries
        ``converged=True``.  Keyword arguments default the missing
        clauses, as in :meth:`execute`; ``trace=True`` records the span
        tree into :attr:`last_trace` (complete once the iterator is
        exhausted).
        """
        t_parse = time.perf_counter()
        logical = parse(query) if isinstance(query, str) else query
        parse_wall = time.perf_counter() - t_parse
        tracer = TraceContext(origin=t_parse) if trace else None
        if tracer is not None:
            tracer.attach(Span("parse", wall=parse_wall).to_dict())
            with tracer.span("plan"):
                resolved = self.plan(logical, workers=workers,
                                     backend=backend, stream=True,
                                     every=every, confidence=confidence,
                                     use_cache=use_cache,
                                     warm_start=warm_start)
        else:
            resolved = self.plan(logical, workers=workers, backend=backend,
                                 stream=True, every=every,
                                 confidence=confidence,
                                 use_cache=use_cache, warm_start=warm_start)
        if resolved.query.explain:
            raise ConfigurationError(
                "EXPLAIN queries return a plan and cannot be streamed; "
                "use execute() to inspect the plan"
            )
        if resolved.query.continuous:
            raise ConfigurationError(
                "CONTINUOUS queries are standing subscriptions; stream() "
                "yields one drive's snapshots and then stops — drive a "
                "standing query with repro.live.ContinuousQuery or the "
                "multi-tenant repro.service.QueryService"
            )
        resolved.trace = tracer
        resolved.gate = budget_gate
        if tracer is not None:
            self.last_trace = tracer
        if resolved.n_candidates == 0:
            # WHERE filtered everything out (plan() degrades the mode to
            # "single"): the empty answer is exact and final — mirror
            # execute() instead of asking a streaming engine to shard
            # zero elements.
            yield ProgressiveResult(
                top_k=[], budget_spent=0, threshold=None, converged=True,
                stk=0.0, wall_time=0.0, n_merges=0,
                backend=resolved.backend,
                displacement_bound=0.0, exhaustive_bound=0.0,
            )
            return
        QUERIES_TOTAL.inc(table=resolved.table, mode=resolved.mode)
        streaming = StreamingExecutor().engine(self, resolved)
        try:
            yield from streaming.results_iter(resolved.budget,
                                              every=resolved.every)
        finally:
            from repro.query.executors import _harvest_shard_priors

            _harvest_shard_priors(self, resolved, streaming)
            streaming.close()
