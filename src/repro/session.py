"""A minimal declarative query interface — the Section 7.4 sketch.

"A minimal implementation is natural in a system that supports UDFs and an
incrementally updating query interface."  :class:`OpaqueQuerySession` is
that minimal implementation: register tables (datasets) and UDFs (scorers),
then execute queries written in a small SQL-ish dialect.  (User-facing
tour: ``docs/dialect.md``; this docstring is the normative grammar and
its examples run as tier-1 doctests.)

Grammar
-------
One statement form, clauses in this order, keywords case-insensitive, an
optional trailing ``;``::

    SELECT TOP <k> FROM <table> ORDER BY <udf> [DESC]
        [BUDGET <n> | BUDGET <p>%]
        [BATCH <b>]
        [SEED <s>]
        [WORKERS <w> [BACKEND serial|thread|process]]
        [STREAM [EVERY <n>] [CONFIDENCE <p>]]

Clause semantics, each with a runnable example:

``SELECT TOP <k>`` — answer cardinality; the engine maintains a
cardinality-constrained priority queue of the ``k`` best scores seen.

    >>> parse_query("SELECT TOP 10 FROM t ORDER BY f").k
    10

``FROM <table>`` / ``ORDER BY <udf>`` — names previously registered with
:meth:`OpaqueQuerySession.register_table` /
:meth:`~OpaqueQuerySession.register_udf`.  The UDF is the opaque scoring
function; the session never inspects it.

    >>> parsed = parse_query("SELECT TOP 5 FROM listings ORDER BY valuation")
    >>> (parsed.table, parsed.udf)
    ('listings', 'valuation')

``DESC`` — optional and purely documentary: top-k always means the *k
highest* scores, so descending order is the only supported direction and
``DESC`` makes it explicit.  (``ASC`` is not in the dialect.)

    >>> parse_query("SELECT TOP 5 FROM t ORDER BY f DESC").descending
    True

``BUDGET <n>`` or ``BUDGET <p>%`` — the scoring budget: either an absolute
number of UDF calls or a percentage of the table, resolved at execution
time as ``max(k, p/100 * len(table))``.  Omitted: the whole table (exact
answer).

    >>> parse_query("SELECT TOP 5 FROM t ORDER BY f BUDGET 500").budget
    500
    >>> parse_query("SELECT TOP 5 FROM t ORDER BY f BUDGET 10%").budget_fraction
    0.1

``BATCH <b>`` — score elements in batches of ``b`` (Section 3.2.5); default
1.  Larger batches amortize per-call overhead and suit GPU-style scorers.

    >>> parse_query("SELECT TOP 5 FROM t ORDER BY f BATCH 32").batch_size
    32

``SEED <s>`` — root seed for the engine's random streams; omitted means
fresh entropy (non-reproducible).

    >>> parse_query("SELECT TOP 5 FROM t ORDER BY f SEED 7").seed
    7

``WORKERS <w>`` — shard the query across ``w`` workers, each with its own
partition index and bandit engine, merged by a coordinator every
synchronization round (see :mod:`repro.parallel`).  ``WORKERS 1`` (or
omitting the clause) runs the ordinary single-engine path.

    >>> parse_query("SELECT TOP 5 FROM t ORDER BY f WORKERS 4").workers
    4

``BACKEND serial|thread|process`` — how the shards execute (only valid
after ``WORKERS``): ``serial`` is the deterministic simulation, ``thread``
and ``process`` run on real concurrency.  Default: ``serial``.

    >>> parse_query(
    ...     "SELECT TOP 5 FROM t ORDER BY f WORKERS 4 BACKEND process"
    ... ).backend
    'process'

``STREAM [EVERY <n>]`` — execute barrier-free (see :mod:`repro.streaming`):
shard workers run continuously in small budget slices, the coordinator
merges outcomes on arrival, and progressive snapshots are available from
the first slice onward.  ``EVERY <n>`` throttles snapshots to one per
``n`` scored elements (default: one per slice).
:meth:`OpaqueQuerySession.execute` returns the final
:class:`~repro.streaming.engine.StreamingResult`;
:meth:`OpaqueQuerySession.stream` yields the
:class:`~repro.streaming.engine.ProgressiveResult` snapshots live.

    >>> parse_query("SELECT TOP 5 FROM t ORDER BY f STREAM").stream
    True
    >>> parse_query(
    ...     "SELECT TOP 5 FROM t ORDER BY f WORKERS 4 STREAM EVERY 200"
    ... ).every
    200

``CONFIDENCE <p>`` — principled early stop for streaming queries (only
valid after ``STREAM``): stop once the coordinator's displacement bound
(see :mod:`repro.core.convergence`) certifies that the probability of the
rest of the budget still changing the top-k is at most ``1 - p``.  Accepts
a decimal in (0, 1) or a percentage.

    >>> parse_query(
    ...     "SELECT TOP 5 FROM t ORDER BY f STREAM CONFIDENCE 0.95"
    ... ).confidence
    0.95
    >>> parse_query(
    ...     "SELECT TOP 5 FROM t ORDER BY f STREAM EVERY 100 CONFIDENCE 95%"
    ... ).confidence
    0.95

Malformed queries raise :class:`~repro.errors.ConfigurationError` with the
expected shape:

    >>> parse_query("SELECT * FROM t")
    Traceback (most recent call last):
        ...
    repro.errors.ConfigurationError: could not parse query; expected: \
SELECT TOP <k> FROM <table> ORDER BY <udf> [DESC] [BUDGET <n> | \
BUDGET <p>%] [BATCH <b>] [SEED <s>] [WORKERS <w> [BACKEND <name>]] \
[STREAM [EVERY <n>] [CONFIDENCE <p>]] — got 'SELECT * FROM t'

The session builds (and caches) one index per table — the index is
task-independent, so every UDF registered against a table reuses it — and
runs the anytime engine for the requested budget.  ``WORKERS`` queries
instead build one index per partition inside
:class:`~repro.parallel.engine.ShardedTopKEngine` and return its
:class:`~repro.parallel.engine.DistributedResult` (same ``items`` /
``summary()`` surface as :class:`~repro.core.result.QueryResult`);
``STREAM`` queries run the barrier-free
:class:`~repro.streaming.engine.StreamingTopKEngine` instead.  Per-shard
partition indexes are cached across sharded *and* streaming runs on the
same table (one :class:`~repro.parallel.cache.ShardIndexCache` per
table), so repeat queries with the same seed, worker count, and index
configuration skip every per-partition k-means fit.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.core.engine import EngineConfig, TopKEngine
from repro.core.result import QueryResult
from repro.data.dataset import Dataset
from repro.errors import ConfigurationError
from repro.index.builder import IndexConfig, build_index
from repro.index.tree import ClusterTree
from repro.parallel.backends import available_backends
from repro.parallel.cache import ShardIndexCache
from repro.parallel.engine import DistributedResult, ShardedTopKEngine
from repro.scoring.base import Scorer
from repro.streaming.engine import (
    ProgressiveResult,
    StreamingResult,
    StreamingTopKEngine,
)

_QUERY_RE = re.compile(
    r"""
    ^\s*SELECT\s+TOP\s+(?P<k>\d+)
    \s+FROM\s+(?P<table>[A-Za-z_][A-Za-z0-9_]*)
    \s+ORDER\s+BY\s+(?P<udf>[A-Za-z_][A-Za-z0-9_]*)
    (?:\s+(?P<desc>DESC))?
    (?:\s+BUDGET\s+(?P<budget>\d+(?:\.\d+)?)(?P<pct>%)?)?
    (?:\s+BATCH\s+(?P<batch>\d+))?
    (?:\s+SEED\s+(?P<seed>\d+))?
    (?:\s+WORKERS\s+(?P<workers>\d+)
       (?:\s+BACKEND\s+(?P<backend>[A-Za-z_]+))?)?
    (?:\s+(?P<stream>STREAM)
       (?:\s+EVERY\s+(?P<every>\d+))?
       (?:\s+CONFIDENCE\s+(?P<confidence>\d+(?:\.\d+)?|\.\d+)
          (?P<confpct>%)?)?)?
    \s*;?\s*$
    """,
    re.IGNORECASE | re.VERBOSE,
)


@dataclass(frozen=True)
class ParsedQuery:
    """The components of one opaque top-k query."""

    k: int
    table: str
    udf: str
    budget: Optional[int]          # absolute scoring-call budget
    budget_fraction: Optional[float]  # or a fraction of the table
    batch_size: int
    seed: Optional[int]
    descending: bool = True        # DESC is documentary; top-k maximizes
    workers: Optional[int] = None  # WORKERS clause (None = not specified)
    backend: Optional[str] = None  # BACKEND clause (None = not specified)
    stream: bool = False           # STREAM clause (barrier-free execution)
    every: Optional[int] = None    # EVERY clause (snapshot granularity)
    confidence: Optional[float] = None  # CONFIDENCE clause (early stop)


def parse_query(text: str) -> ParsedQuery:
    """Parse the SQL-ish dialect; raise ConfigurationError with guidance.

    See the module docstring for the full grammar with examples.
    """
    match = _QUERY_RE.match(text)
    if match is None:
        raise ConfigurationError(
            "could not parse query; expected: SELECT TOP <k> FROM <table> "
            "ORDER BY <udf> [DESC] [BUDGET <n> | BUDGET <p>%] [BATCH <b>] "
            "[SEED <s>] [WORKERS <w> [BACKEND <name>]] "
            f"[STREAM [EVERY <n>] [CONFIDENCE <p>]] — got {text!r}"
        )
    groups = match.groupdict()
    budget: Optional[int] = None
    fraction: Optional[float] = None
    if groups["budget"] is not None:
        value = float(groups["budget"])
        if groups["pct"]:
            if not 0.0 < value <= 100.0:
                raise ConfigurationError(
                    f"BUDGET percentage must be in (0, 100], got {value}"
                )
            fraction = value / 100.0
        else:
            budget = int(value)
            if budget <= 0:
                raise ConfigurationError("BUDGET must be positive")
    workers: Optional[int] = None
    if groups["workers"] is not None:
        workers = int(groups["workers"])
        if workers <= 0:
            raise ConfigurationError("WORKERS must be positive")
    backend: Optional[str] = None
    if groups["backend"] is not None:
        backend = groups["backend"].lower()
        if backend not in available_backends():
            raise ConfigurationError(
                f"unknown BACKEND {backend!r}; available: "
                f"{', '.join(available_backends())}"
            )
    every: Optional[int] = None
    if groups["every"] is not None:
        every = int(groups["every"])
        if every <= 0:
            raise ConfigurationError("EVERY must be positive")
    confidence: Optional[float] = None
    if groups["confidence"] is not None:
        confidence = float(groups["confidence"])
        if groups["confpct"]:
            if not 0.0 < confidence < 100.0:
                raise ConfigurationError(
                    f"CONFIDENCE percentage must be in (0, 100), "
                    f"got {confidence}"
                )
            confidence /= 100.0
        elif not 0.0 < confidence < 1.0:
            raise ConfigurationError(
                f"CONFIDENCE must lie strictly inside (0, 1) "
                f"(or be a percentage like 95%), got {confidence}"
            )
    return ParsedQuery(
        k=int(groups["k"]),
        table=groups["table"],
        udf=groups["udf"],
        budget=budget,
        budget_fraction=fraction,
        batch_size=int(groups["batch"]) if groups["batch"] else 1,
        seed=int(groups["seed"]) if groups["seed"] else None,
        descending=True,
        workers=workers,
        backend=backend,
        stream=groups["stream"] is not None,
        every=every,
        confidence=confidence,
    )


class OpaqueQuerySession:
    """Registry of tables and UDFs plus a tiny declarative executor."""

    def __init__(self, default_index_config: Optional[IndexConfig] = None,
                 index_seed: int = 0,
                 sync_interval: int = 100) -> None:
        self._tables: Dict[str, Dataset] = {}
        self._indexes: Dict[str, ClusterTree] = {}
        self._index_configs: Dict[str, IndexConfig] = {}
        self._udfs: Dict[str, Scorer] = {}
        self._default_index_config = default_index_config
        self._index_seed = index_seed
        self._sync_interval = sync_interval  # WORKERS merge / slice cadence
        # Per-table cache of per-shard partition indexes, shared by the
        # sharded (round) and streaming engines: datasets are immutable
        # once registered, so a repeat query with the same seed / worker
        # count / index config reuses every partition index.
        self._shard_caches: Dict[str, ShardIndexCache] = {}

    # -- registration --------------------------------------------------------

    def register_table(self, name: str, dataset: Dataset,
                       index_config: Optional[IndexConfig] = None,
                       index: Optional[ClusterTree] = None) -> None:
        """Register a dataset; optionally with a prebuilt index."""
        if name in self._tables:
            raise ConfigurationError(f"table {name!r} already registered")
        self._tables[name] = dataset
        if index is not None:
            if index.n_elements() != len(dataset):
                raise ConfigurationError(
                    "prebuilt index does not cover the dataset"
                )
            self._indexes[name] = index
        if index_config is not None:
            self._index_configs[name] = index_config

    def register_udf(self, name: str, scorer: Scorer) -> None:
        """Register an opaque scoring function under a name."""
        if name in self._udfs:
            raise ConfigurationError(f"udf {name!r} already registered")
        self._udfs[name] = scorer

    # -- execution ---------------------------------------------------------------

    def _index_for(self, table: str) -> ClusterTree:
        """Build (once) or fetch the table's task-independent index."""
        if table not in self._indexes:
            dataset = self._tables[table]
            config = self._index_configs.get(
                table,
                self._default_index_config
                or IndexConfig(n_clusters=max(2, min(64, len(dataset) // 50))),
            )
            self._indexes[table] = build_index(
                dataset.features(), dataset.ids(), config,
                rng=self._index_seed,
            )
        return self._indexes[table]

    def _shard_cache_for(self, table: str) -> ShardIndexCache:
        """The table's cross-run cache of per-shard partition indexes."""
        if table not in self._shard_caches:
            self._shard_caches[table] = ShardIndexCache()
        return self._shard_caches[table]

    def _resolve(self, parsed: ParsedQuery,
                 workers: Optional[int], backend: Optional[str],
                 ) -> Tuple[Dataset, Scorer, Optional[int], int, str]:
        """Check registrations and resolve execution parameters.

        Returns ``(dataset, scorer, budget, n_workers, backend_name)``;
        explicit clauses in the query text beat the caller-side defaults.
        """
        if parsed.table not in self._tables:
            raise ConfigurationError(
                f"unknown table {parsed.table!r}; registered: "
                f"{sorted(self._tables)}"
            )
        if parsed.udf not in self._udfs:
            raise ConfigurationError(
                f"unknown udf {parsed.udf!r}; registered: "
                f"{sorted(self._udfs)}"
            )
        dataset = self._tables[parsed.table]
        scorer = self._udfs[parsed.udf]
        budget = parsed.budget
        if parsed.budget_fraction is not None:
            budget = max(parsed.k,
                         int(parsed.budget_fraction * len(dataset)))
        if workers is not None and workers <= 0:
            raise ConfigurationError(
                f"workers must be positive, got {workers!r}"
            )
        n_workers = parsed.workers if parsed.workers is not None else (
            workers if workers is not None else 1
        )
        backend_name = parsed.backend or backend or "serial"
        return dataset, scorer, budget, n_workers, backend_name

    def _streaming_engine(self, parsed: ParsedQuery, dataset: Dataset,
                          scorer: Scorer, n_workers: int,
                          backend_name: str,
                          confidence: Optional[float] = None,
                          ) -> StreamingTopKEngine:
        return StreamingTopKEngine(
            dataset, scorer, k=parsed.k,
            n_workers=n_workers,
            backend=backend_name,
            index_config=self._index_configs.get(
                parsed.table, self._default_index_config
            ),
            engine_config=EngineConfig(
                k=parsed.k, batch_size=parsed.batch_size,
            ),
            slice_budget=self._sync_interval,
            confidence=(parsed.confidence if parsed.confidence is not None
                        else confidence),
            seed=parsed.seed,
            index_cache=self._shard_cache_for(parsed.table),
        )

    def execute(self, query: str, *,
                workers: Optional[int] = None,
                backend: Optional[str] = None,
                stream: Optional[bool] = None,
                every: Optional[int] = None,
                confidence: Optional[float] = None,
                ) -> Union[QueryResult, DistributedResult, StreamingResult]:
        """Parse and run one query.

        ``workers`` / ``backend`` / ``stream`` / ``every`` /
        ``confidence`` are caller-side defaults (e.g. CLI flags); explicit
        ``WORKERS`` / ``BACKEND`` / ``STREAM EVERY CONFIDENCE`` clauses in
        the query text win.  Single-engine queries return a
        :class:`~repro.core.result.QueryResult`; ``WORKERS > 1`` queries
        run sharded and return a
        :class:`~repro.parallel.engine.DistributedResult`; ``STREAM``
        queries run barrier-free and return the final
        :class:`~repro.streaming.engine.StreamingResult` (use
        :meth:`stream` to consume the progressive snapshots live).
        """
        parsed = parse_query(query)
        dataset, scorer, budget, n_workers, backend_name = self._resolve(
            parsed, workers, backend
        )
        if parsed.stream or stream or confidence is not None:
            streaming = self._streaming_engine(
                parsed, dataset, scorer, n_workers, backend_name,
                confidence=confidence,
            )
            try:
                return streaming.run(
                    budget, every=parsed.every or every
                )
            finally:
                streaming.close()
        if n_workers > 1:
            sharded = ShardedTopKEngine(
                dataset, scorer, k=parsed.k,
                n_workers=n_workers,
                backend=backend_name,
                index_config=self._index_configs.get(
                    parsed.table, self._default_index_config
                ),
                engine_config=EngineConfig(
                    k=parsed.k, batch_size=parsed.batch_size,
                ),
                sync_interval=self._sync_interval,
                seed=parsed.seed,
                index_cache=self._shard_cache_for(parsed.table),
            )
            try:
                return sharded.run(budget)
            finally:
                sharded.close()
        engine = TopKEngine(
            self._index_for(parsed.table),
            EngineConfig(k=parsed.k, batch_size=parsed.batch_size,
                         seed=parsed.seed),
            scoring_latency_hint=scorer.batch_cost(parsed.batch_size)
            / max(1, parsed.batch_size),
        )
        return engine.run(dataset, scorer, budget=budget)

    def stream(self, query: str, *,
               workers: Optional[int] = None,
               backend: Optional[str] = None,
               every: Optional[int] = None,
               confidence: Optional[float] = None,
               ) -> Iterator[ProgressiveResult]:
        """Run one query barrier-free, yielding progressive snapshots.

        Any query is accepted (a ``STREAM`` clause is implied); snapshots
        arrive from the first slice onward and the last one carries
        ``converged=True``.  ``workers`` / ``backend`` / ``every`` /
        ``confidence`` default the missing clauses, as in :meth:`execute`.
        """
        parsed = parse_query(query)
        dataset, scorer, budget, n_workers, backend_name = self._resolve(
            parsed, workers, backend
        )
        streaming = self._streaming_engine(
            parsed, dataset, scorer, n_workers, backend_name,
            confidence=confidence,
        )
        try:
            yield from streaming.results_iter(
                budget, every=parsed.every or every
            )
        finally:
            streaming.close()
