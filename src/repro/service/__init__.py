"""Multi-tenant query service: admission, budgets, sessions, wire protocol.

The service layer turns the single-caller session into a long-lived
multi-tenant front-end (the ROADMAP's "millions of users" tentpole):

* :class:`~repro.service.budget.BudgetScheduler` /
  :class:`~repro.service.budget.QueryGrant` — one global scorer-budget
  pool, policy-ordered admission (fair-share round-robin or
  earliest-deadline-first), non-blocking per-quantum grants that keep
  fully funded queries bit-identical to solo runs;
* :class:`~repro.service.service.QueryService` /
  :class:`~repro.service.service.QueryHandle` — the asyncio front-end:
  one forked session per query over shared transparent caches, engines
  on executor threads, snapshot streaming, cancellation;
* :func:`~repro.service.protocol.serve` /
  :class:`~repro.service.protocol.ServiceClient` — the
  newline-delimited-JSON TCP protocol (also behind ``repro serve``).

See ``docs/service.md`` for the tour and ``docs/architecture.md`` for
the admission/budget protocol.
"""

from repro.service.budget import POLICIES, BudgetScheduler, QueryGrant
from repro.service.protocol import ServiceClient, ServiceError, serve
from repro.service.service import QueryHandle, QueryService

__all__ = [
    "POLICIES",
    "BudgetScheduler",
    "QueryGrant",
    "QueryHandle",
    "QueryService",
    "ServiceClient",
    "ServiceError",
    "serve",
]
