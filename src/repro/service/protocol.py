"""Newline-delimited JSON line protocol over TCP for the query service.

One connection carries one query.  The client sends a single request
line and reads response lines until ``result`` or ``error``:

.. code-block:: text

    -> {"query": "SELECT TOP 5 FROM t ORDER BY f", "tenant": "a",
        "snapshots": true, "workers": 3}
    <- {"type": "snapshot", "data": {"top_k": [...], "stk": ..., ...}}
    <- {"type": "snapshot", "data": {...}}
    <- {"type": "result", "kind": "streaming", "data": {...}}

Request fields: ``query`` (required), ``tenant``, ``deadline``,
``snapshots``, plus any ``execute`` keyword default (``workers``,
``backend``, ``stream``, ``every``, ``confidence``, ``use_cache``,
``warm_start``).  Responses are ``snapshot`` lines (only when
``snapshots`` was requested; each ``data`` is
:meth:`~repro.streaming.engine.ProgressiveResult.to_json`), then exactly
one terminal line: ``result`` (``data`` is the result's ``to_json()``)
or ``error`` (``error`` message + ``kind`` exception class name;
cancellations arrive as ``kind: "QueryCancelledError"``).

A client that disconnects mid-stream cancels its query: the server
notices EOF (or a failed write), calls
:meth:`~repro.service.service.QueryHandle.cancel`, and the engine
unwinds at its next grant quantum — budget and shared-memory segments
are reclaimed, which ``tests/test_service.py`` fault-injects.

:class:`ServiceClient` is the asyncio client the tests (and the CLI's
``repro query --connect``) use; the protocol is trivially speakable by
``netcat`` too.
"""

from __future__ import annotations

import asyncio
import json
from typing import AsyncIterator, Optional, Tuple

from repro.errors import ReproError
from repro.service.service import QueryService

#: Request keys forwarded to ``QueryService.submit`` as execute kwargs.
EXECUTE_KEYS = ("workers", "backend", "stream", "every", "confidence",
                "use_cache", "warm_start")


def _encode(payload: dict) -> bytes:
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


async def _handle_connection(service: QueryService,
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
    """Serve one connection: one request line, stream the response."""
    handle = None
    try:
        line = await reader.readline()
        if not line:
            return
        try:
            request = json.loads(line)
            query = request["query"]
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            writer.write(_encode({"type": "error", "kind": "BadRequest",
                                  "error": f"malformed request: {exc}"}))
            await writer.drain()
            return
        execute_kwargs = {key: request[key] for key in EXECUTE_KEYS
                          if request.get(key) is not None}
        handle = await service.submit(
            query,
            tenant=str(request.get("tenant", "default")),
            deadline=request.get("deadline"),
            snapshots=bool(request.get("snapshots", False)),
            **execute_kwargs,
        )
        # A disconnect must cancel the query even while it is still
        # computing between writes, so watch for EOF concurrently.
        eof_watch = asyncio.ensure_future(reader.read())
        try:
            async for snapshot in handle.snapshots():
                if eof_watch.done():
                    raise ConnectionResetError("client went away")
                writer.write(_encode({"type": "snapshot",
                                      "data": snapshot.to_json()}))
                await writer.drain()
            result = await handle.result()
            kind = getattr(result, "kind", type(result).__name__)
            payload = (result.to_json() if hasattr(result, "to_json")
                       else result)
            writer.write(_encode({"type": "result", "kind": str(kind),
                                  "data": payload}))
            await writer.drain()
        finally:
            eof_watch.cancel()
    except (ConnectionError, BrokenPipeError):
        # Client vanished: reclaim the query's budget and resources.
        if handle is not None:
            handle.cancel()
    except ReproError as exc:
        try:
            writer.write(_encode({"type": "error",
                                  "kind": type(exc).__name__,
                                  "error": str(exc)}))
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass


async def serve(service: QueryService, host: str = "127.0.0.1",
                port: int = 0) -> asyncio.base_events.Server:
    """Start the line-protocol server; ``port=0`` picks a free port.

    Returns the :class:`asyncio.Server`; the bound address is
    ``server.sockets[0].getsockname()``.  Close with ``server.close()``
    + ``await server.wait_closed()`` (in-flight queries keep their
    budget path — cancel them via :meth:`QueryService.close`).
    """

    async def connection(reader, writer):
        await _handle_connection(service, reader, writer)

    return await asyncio.start_server(connection, host=host, port=port)


class ServiceError(ReproError):
    """The server answered with an ``error`` line."""


class ServiceClient:
    """Minimal asyncio client for the line protocol (one query per call)."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = int(port)

    async def _request(self, payload: dict) -> Tuple[
            asyncio.StreamReader, asyncio.StreamWriter]:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        writer.write(_encode(payload))
        await writer.drain()
        return reader, writer

    @staticmethod
    async def _read_message(reader: asyncio.StreamReader) -> Optional[dict]:
        line = await reader.readline()
        return json.loads(line) if line else None

    async def execute(self, query: str, *, tenant: str = "default",
                      deadline: Optional[float] = None, **kwargs) -> dict:
        """Run one query to completion; returns the terminal message.

        The returned dict is the server's ``result`` line (``kind`` +
        ``data``); an ``error`` line raises :class:`ServiceError`.
        """
        reader, writer = await self._request(
            {"query": query, "tenant": tenant, "deadline": deadline,
             **kwargs}
        )
        try:
            while True:
                message = await self._read_message(reader)
                if message is None:
                    raise ServiceError("server closed the connection early")
                if message["type"] == "error":
                    raise ServiceError(
                        f"[{message.get('kind')}] {message.get('error')}"
                    )
                if message["type"] == "result":
                    return message
        finally:
            writer.close()
            await writer.wait_closed()

    async def stream(self, query: str, *, tenant: str = "default",
                     deadline: Optional[float] = None,
                     **kwargs) -> AsyncIterator[dict]:
        """Yield every server message for a snapshot-streaming query.

        Messages arrive as dicts — ``snapshot`` lines first, then the
        terminal ``result`` (or a raised :class:`ServiceError`).
        """
        reader, writer = await self._request(
            {"query": query, "tenant": tenant, "deadline": deadline,
             "snapshots": True, **kwargs}
        )
        try:
            while True:
                message = await self._read_message(reader)
                if message is None:
                    return
                if message["type"] == "error":
                    raise ServiceError(
                        f"[{message.get('kind')}] {message.get('error')}"
                    )
                yield message
                if message["type"] == "result":
                    return
        finally:
            writer.close()
            await writer.wait_closed()
