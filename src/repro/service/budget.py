"""Global scorer-budget scheduling for the multi-tenant query service.

One :class:`BudgetScheduler` owns a single pool of UDF-call budget that
every in-flight query of a :class:`~repro.service.service.QueryService`
draws from.  Scheduling happens at two levels:

**Admission** (blocking, policy-ordered).  Before a query starts, its
full scorer *demand* — the resolved per-query budget — is committed
from the pool by :meth:`BudgetScheduler.admit`.  When the pool cannot
cover the demand, the request waits in a policy-ordered queue:

* ``fair-share`` — round-robin across *tenants*: the waiting tenant
  with the fewest admissions so far goes first (FIFO within a tenant),
  so a chatty tenant can never starve a quiet one;
* ``deadline`` — earliest-deadline-first (EDF): the waiting request
  with the smallest deadline goes first; requests without a deadline
  sort last.  Admission order under contention *is* EDF order.

Admission is strictly head-of-line: if the policy's first choice does
not fit, nothing behind it is admitted either — that is what makes the
fairness and EDF guarantees real rather than best-effort.  Liveness is
preserved by clamping: when the pool is otherwise idle, a demand larger
than the whole budget is admitted with its demand clamped to what
exists (the query then stops early at grant exhaustion, exactly like an
engine hitting its own budget).

**Grants** (non-blocking, metered).  An admitted query draws its
committed demand in quanta through its :class:`QueryGrant` — the
engines call :meth:`QueryGrant.acquire` with their natural quantum (a
batch, a round, a slice cap) and get back how much of it is funded.
Because the demand was committed up front, a fully funded query is
granted every quantum in full and executes **bit-identically to a solo
run** — the gate never reorders, splits, or delays any engine decision.
Memo hits cost no real UDF call, so coordinators :meth:`QueryGrant.refund`
them (and any unscored reservation) after the fact; at
:meth:`QueryGrant.retire` the query's whole demand — consumed or not —
returns to the pool for waiting tenants.  The budget meters *in-flight*
scorer concurrency, not lifetime totals: a long-lived service never
wears its pool out, and ``spent`` is a cumulative telemetry counter
rather than a deduction.

The scheduler is thread-safe (one condition variable guards all state):
admission blocks service-side threads while engine threads acquire and
refund concurrently.  It also carries the service's cancellation path —
:meth:`QueryGrant.cancel` makes the *next* ``acquire`` raise
:class:`~repro.errors.QueryCancelledError` inside the engine, which
unwinds through the executors' normal cleanup (pools closed, shm
unlinked) before :meth:`~QueryGrant.retire` reclaims the budget.

Invariants (property/fuzz-tested in ``tests/test_budget.py``):

* conservation — the committed demand of live grants never exceeds the
  global budget, at every instant, under any interleaving of
  admit/acquire/refund/retire;
* all-or-nothing funding — an admitted query's acquires are granted in
  full until its demand is exhausted;
* no starvation under ``fair-share`` — every waiting request is
  eventually admitted provided admitted queries retire;
* EDF admission under ``deadline`` — contended admissions leave the
  queue in deadline order.
"""

from __future__ import annotations

import concurrent.futures
import itertools
import threading
from typing import Dict, List, Optional

from repro.errors import ConfigurationError, QueryCancelledError
from repro.obs.metrics import (
    ADMISSIONS_TOTAL,
    BUDGET_GRANTS_TOTAL,
    QUERIES_INFLIGHT,
)

#: Admission-ordering policies (see the module docstring).
POLICIES = ("fair-share", "deadline")


class QueryGrant:
    """One admitted query's handle on the global budget.

    Created by :meth:`BudgetScheduler.admit`; threaded through the
    session into the engines as their *budget gate* (see
    ``execute(..., budget_gate=...)``).  All methods are thread-safe.
    """

    def __init__(self, scheduler: "BudgetScheduler", tenant: str,
                 demand: int, deadline: Optional[float]) -> None:
        self._scheduler = scheduler
        self.tenant = str(tenant)
        #: Budget units committed to this query at admission (the
        #: resolved per-query budget, clamped to the pool when it was
        #: admitted on an otherwise idle scheduler).
        self.demand = int(demand)
        self.deadline = deadline
        self._acquired = 0          # net units drawn (acquires - refunds)
        self._granted_units = 0     # gross units granted (monotone)
        self._cancelled = False
        self._retired = False

    # -- engine-facing gate --------------------------------------------------

    def acquire(self, n: int) -> int:
        """Draw up to ``n`` units of this query's committed demand.

        Returns how many units are funded (``n`` while demand remains —
        the all-or-nothing guarantee engines rely on for bit-identity;
        less, possibly ``0``, once the committed demand is exhausted).
        Raises :class:`~repro.errors.QueryCancelledError` after
        :meth:`cancel` — this is the cancellation point the engines
        reach at their next quantum.
        """
        return self._scheduler._acquire(self, int(n))

    def refund(self, n: int) -> None:
        """Return ``n`` unconsumed units (memo hits, unscored caps)."""
        self._scheduler._refund(self, int(n))

    # -- service-facing lifecycle --------------------------------------------

    def cancel(self) -> None:
        """Make the next :meth:`acquire` raise ``QueryCancelledError``."""
        self._scheduler._cancel(self)

    def retire(self) -> None:
        """Release the whole committed demand back to the pool (idempotent)."""
        self._scheduler._retire(self)

    # -- introspection -------------------------------------------------------

    @property
    def consumed(self) -> int:
        """Net units drawn so far (acquires minus refunds)."""
        with self._scheduler._cond:
            return self._acquired

    @property
    def granted_units(self) -> int:
        """Gross units granted so far (refunds do not subtract)."""
        with self._scheduler._cond:
            return self._granted_units

    @property
    def cancelled(self) -> bool:
        with self._scheduler._cond:
            return self._cancelled

    @property
    def retired(self) -> bool:
        with self._scheduler._cond:
            return self._retired


class _Waiter:
    """One blocked admission request (internal)."""

    __slots__ = ("tenant", "demand", "deadline", "seq", "grant",
                 "abandoned", "future")

    def __init__(self, tenant: str, demand: int,
                 deadline: Optional[float], seq: int) -> None:
        self.tenant = tenant
        self.demand = demand
        self.deadline = deadline
        self.seq = seq
        self.grant: Optional[QueryGrant] = None
        self.abandoned = False
        #: Set for thread-free admissions (:meth:`admit_future`);
        #: resolved by ``_pump`` instead of a condition-variable wake.
        self.future: Optional[concurrent.futures.Future] = None


class BudgetScheduler:
    """Admission + grant metering over one global UDF-call budget.

    Parameters
    ----------
    budget:
        UDF calls the scheduler may have committed to *in-flight*
        queries at any one time (a retiring query returns its whole
        demand).  ``None`` means unmetered: every admission succeeds
        immediately (grants are still counted, so fairness metrics and
        cancellation keep working) — the right setting when the service
        exists for concurrency, not for scarcity.
    policy:
        ``"fair-share"`` (round-robin across tenants) or ``"deadline"``
        (EDF).  Ordering applies to *admission under contention*; see
        the module docstring.
    """

    def __init__(self, budget: Optional[int] = None,
                 policy: str = "fair-share") -> None:
        if budget is not None and (int(budget) != budget or budget <= 0):
            raise ConfigurationError(
                f"budget must be a positive integer or None, got {budget!r}"
            )
        if policy not in POLICIES:
            raise ConfigurationError(
                f"unknown policy {policy!r}; available: "
                f"{', '.join(POLICIES)}"
            )
        self.budget = None if budget is None else int(budget)
        self.policy = policy
        self._cond = threading.Condition()
        self._seq = itertools.count()
        self._waiters: List[_Waiter] = []
        self._live: List[QueryGrant] = []
        #: Net units consumed by retired grants (cumulative telemetry —
        #: never deducted from the pool).
        self._spent = 0
        #: Admissions completed per tenant (fair-share rotation key).
        self._admissions: Dict[str, int] = {}
        #: Live queries per tenant (backs the ``queries_inflight`` gauge).
        self._inflight: Dict[str, int] = {}
        #: High-water mark of committed demand (proves real concurrency
        #: in the service benchmark without a sampling thread).
        self._peak_committed = 0

    # -- admission -----------------------------------------------------------

    def admit(self, tenant: str, demand: int,
              deadline: Optional[float] = None,
              timeout: Optional[float] = None) -> QueryGrant:
        """Commit ``demand`` units for one query; block until admitted.

        ``deadline`` orders contended admissions under the ``deadline``
        policy (smaller = more urgent; ``None`` = least urgent) and is
        advisory under ``fair-share``.  ``timeout`` bounds the wait; on
        expiry the request is abandoned and ``QueryCancelledError``
        raised (nothing was committed).
        """
        if int(demand) != demand or demand < 0:
            raise ConfigurationError(
                f"demand must be a non-negative integer, got {demand!r}"
            )
        waiter = _Waiter(str(tenant), int(demand), deadline,
                         next(self._seq))
        with self._cond:
            self._waiters.append(waiter)
            self._pump()
            granted = self._cond.wait_for(lambda: waiter.grant is not None,
                                          timeout=timeout)
            if not granted:
                waiter.abandoned = True
                self._waiters.remove(waiter)
                raise QueryCancelledError(
                    f"admission timed out after {timeout}s "
                    f"(tenant {tenant!r}, demand {demand})"
                )
            return waiter.grant

    def admit_future(self, tenant: str, demand: int,
                     deadline: Optional[float] = None,
                     ) -> "concurrent.futures.Future[QueryGrant]":
        """Thread-free :meth:`admit`: the future resolves on admission.

        The request waits in the same policy-ordered queue as blocking
        admissions, but no thread is parked while it waits — ``_pump``
        resolves the future under the scheduler lock.  This is what the
        asyncio service uses (via ``asyncio.wrap_future``), so a backlog
        of waiting queries can never exhaust the worker threads that the
        *admitted* queries need in order to run and retire.
        """
        if int(demand) != demand or demand < 0:
            raise ConfigurationError(
                f"demand must be a non-negative integer, got {demand!r}"
            )
        waiter = _Waiter(str(tenant), int(demand), deadline,
                         next(self._seq))
        waiter.future = concurrent.futures.Future()
        with self._cond:
            self._waiters.append(waiter)
            self._pump()
        return waiter.future

    def _committed(self) -> int:
        """Units currently committed to live grants (their full demand)."""
        return sum(grant.demand for grant in self._live)

    def _available(self) -> Optional[int]:
        if self.budget is None:
            return None
        return self.budget - self._committed()

    def _order_key(self, waiter: _Waiter):
        if self.policy == "deadline":
            urgency = (float("inf") if waiter.deadline is None
                       else float(waiter.deadline))
            return (urgency, waiter.seq)
        # fair-share: tenants with fewer completed admissions first,
        # FIFO within a tenant — strict round-robin, starvation-free.
        return (self._admissions.get(waiter.tenant, 0), waiter.seq)

    def _pump(self) -> None:
        """Admit head-of-line waiters while the pool covers them.

        Must hold ``self._cond``.  Strictly in policy order: the first
        waiter that does not fit blocks everyone behind it (that is the
        fairness/EDF guarantee).  A demand larger than the whole pool is
        clamped once nothing else is committed, so it cannot wedge the
        queue forever.
        """
        admitted_any = False
        while self._waiters:
            waiter = min(self._waiters, key=self._order_key)
            available = self._available()
            demand = waiter.demand
            if available is not None and demand > available:
                if self._live or available < 0:
                    break  # head-of-line: wait for retire to free budget
                demand = max(0, available)  # idle pool: clamp, stay live
            grant = QueryGrant(self, waiter.tenant, demand, waiter.deadline)
            self._live.append(grant)
            self._waiters.remove(waiter)
            waiter.grant = grant
            if waiter.future is not None:
                waiter.future.set_result(grant)
            self._admissions[waiter.tenant] = (
                self._admissions.get(waiter.tenant, 0) + 1
            )
            self._inflight[waiter.tenant] = (
                self._inflight.get(waiter.tenant, 0) + 1
            )
            QUERIES_INFLIGHT.set(self._inflight[waiter.tenant],
                                 tenant=waiter.tenant)
            ADMISSIONS_TOTAL.inc(policy=self.policy)
            admitted_any = True
            self._peak_committed = max(self._peak_committed,
                                       self._committed())
        if admitted_any:
            self._cond.notify_all()

    # -- grant plumbing (QueryGrant methods delegate here) --------------------

    def _acquire(self, grant: QueryGrant, n: int) -> int:
        if n < 0:
            raise ConfigurationError(f"cannot acquire {n!r} units")
        with self._cond:
            if grant._cancelled:
                raise QueryCancelledError(
                    f"query of tenant {grant.tenant!r} was cancelled"
                )
            if grant._retired:
                return 0
            funded = min(n, grant.demand - grant._acquired)
            if funded > 0:
                grant._acquired += funded
                grant._granted_units += funded
                BUDGET_GRANTS_TOTAL.inc(funded, tenant=grant.tenant,
                                        policy=self.policy)
            return funded

    def _refund(self, grant: QueryGrant, n: int) -> None:
        if n < 0:
            raise ConfigurationError(f"cannot refund {n!r} units")
        with self._cond:
            if n > grant._acquired:
                raise ConfigurationError(
                    f"refund of {n} exceeds the {grant._acquired} units "
                    f"acquired (tenant {grant.tenant!r})"
                )
            grant._acquired -= n

    def _cancel(self, grant: QueryGrant) -> None:
        with self._cond:
            grant._cancelled = True
            self._cond.notify_all()

    def _retire(self, grant: QueryGrant) -> None:
        with self._cond:
            if grant._retired:
                return
            grant._retired = True
            self._live.remove(grant)
            self._spent += grant._acquired
            count = self._inflight.get(grant.tenant, 1) - 1
            self._inflight[grant.tenant] = count
            QUERIES_INFLIGHT.set(count, tenant=grant.tenant)
            self._pump()
            self._cond.notify_all()

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict:
        """JSON-safe snapshot of the pool and every tenant's totals."""
        with self._cond:
            tenants: Dict[str, dict] = {}
            for grant in self._live:
                entry = tenants.setdefault(
                    grant.tenant,
                    {"live": 0, "committed": 0, "consumed": 0},
                )
                entry["live"] += 1
                entry["committed"] += grant.demand
                entry["consumed"] += grant._acquired
            return {
                "policy": self.policy,
                "budget": self.budget,
                "spent": self._spent,
                "committed": self._committed(),
                "available": self._available(),
                "waiting": len(self._waiters),
                "peak_committed": self._peak_committed,
                "admissions": dict(self._admissions),
                "tenants": tenants,
            }
