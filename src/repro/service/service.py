"""Asyncio front-end admitting concurrent tenants over shared tables.

:class:`QueryService` turns the single-caller
:class:`~repro.session.OpaqueQuerySession` into a long-lived multi-tenant
server: it owns one *root* session holding the registered tables, UDFs,
and every transparent cache, and runs each submitted query in its own
:meth:`~repro.session.OpaqueQuerySession.fork` — so concurrent tenants
share warm shard-index caches and score memos (bit-identically) while
warm-start priors and traces stay per-query.

Scheduling is delegated to one :class:`~repro.service.budget.BudgetScheduler`:
:meth:`QueryService.submit` resolves the query's scorer demand from its
plan, admits it (policy-ordered and *thread-free* — the wait is a
future resolved by the scheduler, so a backlog of waiting queries can
never exhaust the worker threads admitted queries need to run and
retire), and threads the resulting
:class:`~repro.service.budget.QueryGrant` into the engine as its budget
gate.  The engines themselves run on the service's own bounded thread
pool; the event loop only coordinates.

Clients hold a :class:`QueryHandle`:

* ``await handle.result()`` — the final result object (exactly what a
  solo ``session.execute`` returns, and — when the grant was fully
  funded — field-for-field identical to it);
* ``async for snapshot in handle.snapshots()`` — live JSON-safe
  :class:`~repro.streaming.engine.ProgressiveResult` snapshots for
  queries submitted with ``snapshots=True`` (streaming mode);
* ``handle.cancel()`` — flags the grant; the engine raises
  :class:`~repro.errors.QueryCancelledError` at its next grant quantum
  and unwinds through the executors' normal cleanup (pools closed, shm
  unlinked) before the budget returns to the pool.

Queries carrying the dialect's ``CONTINUOUS`` clause are *standing*:
the service hosts one :class:`~repro.live.continuous.ContinuousQuery`
per submission, pushing a snapshot through ``handle.snapshots()``
whenever committed writes change the answer.  The tenant's grant meters
each recomputation cycle and is re-armed between cycles (a standing
query holds a per-cycle reservation, it does not drain the pool
forever); ``handle.cancel()`` is the disconnect — the stream ends and
``result()`` returns the last emitted answer.

Every terminal path — completion, cancellation, client disconnect,
worker-pool death — funnels through one ``finally`` that retires the
grant, so no failure mode leaks budget.  ``tests/test_service.py`` holds
the concurrency differential matrix and the fault-injection suite.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import functools
from typing import AsyncIterator, Dict, List, Optional

from repro.errors import ConfigurationError, QueryCancelledError
from repro.live.continuous import DEFAULT_POLL, ContinuousQuery
from repro.query.parser import parse
from repro.service.budget import BudgetScheduler, QueryGrant
from repro.session import OpaqueQuerySession


class QueryHandle:
    """One submitted query: its lifecycle, final answer, and snapshots."""

    def __init__(self, tenant: str, query: str, wants_snapshots: bool,
                 loop: asyncio.AbstractEventLoop) -> None:
        self.tenant = tenant
        self.query = query
        #: ``waiting`` -> ``running`` -> ``done`` | ``error`` | ``cancelled``
        self.state = "waiting"
        self._loop = loop
        self._wants_snapshots = wants_snapshots
        self._queue: "asyncio.Queue[Optional[object]]" = asyncio.Queue()
        self._done = asyncio.Event()
        self._result: Optional[object] = None
        self._error: Optional[BaseException] = None
        self._grant: Optional[QueryGrant] = None
        self._cancelled = False
        self._task: Optional[asyncio.Task] = None

    # -- client surface ------------------------------------------------------

    async def result(self):
        """Wait for the final result; re-raise the query's failure if any."""
        await self._done.wait()
        if self._error is not None:
            raise self._error
        return self._result

    async def snapshots(self) -> AsyncIterator[object]:
        """Yield progressive snapshots as the engine produces them.

        Only queries submitted with ``snapshots=True`` produce any; the
        iterator ends when the query finishes (however it finishes — a
        failure after some snapshots simply ends the stream, and
        :meth:`result` carries the error).
        """
        while True:
            snapshot = await self._queue.get()
            if snapshot is None:
                return
            yield snapshot

    def cancel(self) -> None:
        """Request cancellation (effective at the engine's next quantum).

        Safe from any thread and at any stage: a query still waiting for
        admission is failed on admit; a running one unwinds when its
        engine next touches the budget gate.  For a standing
        ``CONTINUOUS`` query this is the *disconnect*: the snapshot
        stream ends cleanly and :meth:`result` returns the last emitted
        answer instead of raising.
        """
        self._cancelled = True
        if self._grant is not None:
            self._grant.cancel()

    @property
    def done(self) -> bool:
        return self._done.is_set()

    # -- service-side plumbing ----------------------------------------------

    def _push_snapshot(self, snapshot) -> None:
        """Called from the engine thread; hops onto the event loop."""
        self._loop.call_soon_threadsafe(self._queue.put_nowait, snapshot)

    def _finish(self, *, result=None, error: Optional[BaseException] = None,
                ) -> None:
        if error is None:
            self.state = "done"
            self._result = result
        elif isinstance(error, QueryCancelledError):
            self.state = "cancelled"
            self._error = error
        else:
            self.state = "error"
            self._error = error
        self._queue.put_nowait(None)   # end the snapshot stream
        self._done.set()


class QueryService:
    """Long-lived asyncio service: registered tables, concurrent tenants.

    Parameters
    ----------
    budget:
        Global scorer budget shared by every query the service ever
        admits (``None`` = unmetered; see
        :class:`~repro.service.budget.BudgetScheduler`).
    policy:
        Admission policy: ``"fair-share"`` or ``"deadline"``.
    session:
        Optional pre-populated root session to serve (tables/UDFs
        registered outside); by default the service creates its own and
        callers use :meth:`register_table` / :meth:`register_udf`.
    max_threads:
        Bound on concurrently *running* engines (each takes one worker
        thread of the service's own pool).  Admission waits hold no
        thread at all (see
        :meth:`~repro.service.budget.BudgetScheduler.admit_future`), so
        queries beyond the bound queue for a thread rather than
        deadlocking it.
    """

    def __init__(self, budget: Optional[int] = None,
                 policy: str = "fair-share",
                 session: Optional[OpaqueQuerySession] = None,
                 max_threads: int = 32) -> None:
        self.scheduler = BudgetScheduler(budget=budget, policy=policy)
        self.session = session if session is not None else OpaqueQuerySession()
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=int(max_threads),
            thread_name_prefix="repro-service",
        )
        self._handles: List[QueryHandle] = []
        self._closed = False

    # -- registration (delegates to the root session) ------------------------

    def register_table(self, name, dataset, **kwargs) -> None:
        """Register a dataset on the root session (shared by all forks)."""
        self.session.register_table(name, dataset, **kwargs)

    def register_udf(self, name, scorer) -> None:
        """Register a scoring UDF on the root session."""
        self.session.register_udf(name, scorer)

    # -- submission ----------------------------------------------------------

    async def submit(self, query: str, *, tenant: str = "default",
                     deadline: Optional[float] = None,
                     snapshots: bool = False,
                     **execute_kwargs) -> QueryHandle:
        """Admit one query for ``tenant`` and start it; returns immediately.

        ``execute_kwargs`` are the caller-side defaults of
        :meth:`~repro.session.OpaqueQuerySession.execute` (``workers``,
        ``backend``, ``stream``, ``use_cache``, ``trace``, ...).
        ``snapshots=True`` forces streaming mode and makes
        :meth:`QueryHandle.snapshots` yield every
        :class:`~repro.streaming.engine.ProgressiveResult`; the final
        (converged) snapshot doubles as :meth:`QueryHandle.result`.
        ``deadline`` orders contended admissions under the ``deadline``
        policy (smaller = sooner).

        A query with the ``CONTINUOUS`` clause becomes a *standing*
        subscription: :meth:`QueryHandle.snapshots` yields the initial
        answer and then one snapshot per answer-changing write batch
        (regardless of ``snapshots=``), until :meth:`QueryHandle.cancel`
        disconnects it; a ``poll=`` kwarg tunes its wait granularity.
        """
        if self._closed:
            raise ConfigurationError("service is closed")
        loop = asyncio.get_running_loop()
        handle = QueryHandle(tenant, query, snapshots, loop)
        self._handles.append(handle)
        handle._task = loop.create_task(
            self._run(handle, deadline, execute_kwargs)
        )
        return handle

    async def _run(self, handle: QueryHandle, deadline: Optional[float],
                   execute_kwargs: Dict) -> None:
        grant: Optional[QueryGrant] = None
        try:
            # Fork once per query: shared transparent caches, private
            # warm-start priors and trace (see OpaqueQuerySession.fork).
            session = self.session.fork()
            loop = asyncio.get_running_loop()
            demand = await loop.run_in_executor(
                self._executor,
                functools.partial(self._resolve_demand, session,
                                  handle.query, execute_kwargs),
            )
            # The admission wait holds no thread (the scheduler resolves
            # the future); a cancel() during it is honoured right after
            # (nothing has run yet).
            grant = await asyncio.wrap_future(
                self.scheduler.admit_future(handle.tenant, demand, deadline)
            )
            handle._grant = grant
            if handle._cancelled:
                raise QueryCancelledError(
                    f"query of tenant {handle.tenant!r} cancelled before start"
                )
            handle.state = "running"
            if parse(handle.query).continuous:
                result = await loop.run_in_executor(
                    self._executor,
                    functools.partial(self._drive_continuous, session,
                                      handle, grant, execute_kwargs),
                )
            elif handle._wants_snapshots:
                result = await loop.run_in_executor(
                    self._executor,
                    functools.partial(self._drive_stream, session, handle,
                                      grant, execute_kwargs),
                )
            else:
                result = await loop.run_in_executor(
                    self._executor,
                    functools.partial(session.execute, handle.query,
                                      budget_gate=grant, **execute_kwargs),
                )
            handle._finish(result=result)
        except BaseException as exc:  # noqa: BLE001 — every failure is the
            handle._finish(error=exc)  # client's to observe via result()
        finally:
            if grant is not None:
                grant.retire()

    @staticmethod
    def _resolve_demand(session: OpaqueQuerySession, query: str,
                        execute_kwargs: Dict) -> int:
        """The scorer demand a query commits at admission.

        Its resolved budget when it has one, else every candidate the
        plan leaves in play — plus the engine's boundary headroom, so a
        fully funded run is bit-identical to a solo one even at budget
        edges the engines overshoot: the single engine's final batch
        crosses the budget line (up to ``batch_size - 1`` extra scored
        calls), and the sharded coordinator's last-round reserve rounds
        up to the active shard count before refunding the remainder.
        The streaming engine never reserves past its budget.  Unused
        headroom returns to the pool when the grant retires.
        """
        plan_kwargs = {key: value for key, value in execute_kwargs.items()
                       if key in ("workers", "backend", "stream", "every",
                                  "confidence", "use_cache", "warm_start")}
        plan = session.plan(query, **plan_kwargs)
        demand = (plan.n_candidates if plan.budget is None
                  else min(plan.budget, plan.n_candidates))
        if plan.mode == "single":
            return demand + max(0, plan.batch_size - 1)
        if plan.mode == "sharded":
            return demand + plan.workers
        return demand

    @staticmethod
    def _drive_stream(session: OpaqueQuerySession, handle: QueryHandle,
                      grant: QueryGrant, execute_kwargs: Dict):
        """Run a streaming query on this worker thread, pushing snapshots.

        Returns the last (converged) snapshot as the final result.  Runs
        entirely off-loop; each snapshot hops to the event loop through
        ``call_soon_threadsafe``.
        """
        kwargs = dict(execute_kwargs)
        kwargs.pop("stream", None)
        last = None
        for snapshot in session.stream(handle.query, budget_gate=grant,
                                       **kwargs):
            last = snapshot
            handle._push_snapshot(snapshot)
        return last

    @staticmethod
    def _drive_continuous(session: OpaqueQuerySession, handle: QueryHandle,
                          grant: QueryGrant, execute_kwargs: Dict):
        """Host one standing ``CONTINUOUS`` query on this worker thread.

        Each answer-changing write batch pushes a snapshot to the
        handle; the grant meters every recomputation cycle and is
        re-armed by the standing query between cycles.  The loop runs
        until the client disconnects (``handle.cancel()``), which ends
        the stream and returns the last emitted answer — cancellation
        of a standing query is its normal completion, not an error.
        """
        kwargs = dict(execute_kwargs)
        poll = kwargs.pop("poll", DEFAULT_POLL)
        standing = ContinuousQuery(session, handle.query, gate=grant,
                                   poll=poll, **kwargs)
        last = None
        try:
            while not (handle._cancelled or grant.cancelled):
                snapshot = standing.refresh(timeout=poll)
                if snapshot is not None:
                    last = snapshot
                    handle._push_snapshot(snapshot)
        except QueryCancelledError:
            pass  # grant cancelled mid-cycle: the disconnect path
        finally:
            standing.cancel()
        return last

    # -- lifecycle -----------------------------------------------------------

    def stats(self) -> dict:
        """JSON-safe service snapshot: scheduler pool + handle states."""
        states: Dict[str, int] = {}
        for handle in self._handles:
            states[handle.state] = states.get(handle.state, 0) + 1
        return {"scheduler": self.scheduler.stats(), "queries": states}

    async def drain(self) -> None:
        """Wait for every submitted query to reach a terminal state."""
        tasks = [handle._task for handle in self._handles
                 if handle._task is not None]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    async def close(self) -> None:
        """Cancel everything in flight and wait for it to unwind."""
        self._closed = True
        for handle in self._handles:
            if not handle.done:
                handle.cancel()
        await self.drain()
        self._executor.shutdown(wait=True)
