"""B+-tree substrate — the Section 7.1 application.

"Since the analysis for the top-k bandit is generic, our algorithm has wider
applicability.  For example, it can be applied over classic database indexes
such as B-trees."  This module provides a real B+-tree (sorted keys in leaf
pages, routing keys in internal pages, bulk loading, point and range
queries) and an adapter that exposes its page structure as a
:class:`~repro.index.tree.ClusterTree`, so the hierarchical bandit can run
over an existing database index with zero re-clustering cost: leaf pages
play the role of k-means clusters, and the tree's key locality plays the
role of vector-space locality (nearby keys often score similarly under
scoring functions correlated with the indexed attribute).
"""

from __future__ import annotations

import bisect
from typing import Any, Generic, Iterator, List, Optional, Sequence, Tuple, TypeVar

from repro.errors import ConfigurationError
from repro.index.tree import ClusterNode, ClusterTree

K = TypeVar("K")
V = TypeVar("V")


class _Page(Generic[K, V]):
    """One B+-tree page.  Leaves hold (key, value) pairs; internal pages
    hold routing keys and children, with ``keys[i]`` separating
    ``children[i]`` (< key) from ``children[i + 1]`` (>= key)."""

    __slots__ = ("keys", "values", "children", "next_leaf")

    def __init__(self) -> None:
        self.keys: List[K] = []
        self.values: List[V] = []
        self.children: List["_Page[K, V]"] = []
        self.next_leaf: Optional["_Page[K, V]"] = None

    @property
    def is_leaf(self) -> bool:
        return not self.children


class BPlusTree(Generic[K, V]):
    """An in-memory B+ tree with classic split-on-insert semantics.

    Parameters
    ----------
    order:
        Maximum number of keys per page (>= 3).  Pages split at
        ``order + 1`` keys into halves, so occupancy stays >= ``order // 2``
        for all but the root.
    """

    def __init__(self, order: int = 32) -> None:
        if order < 3:
            raise ConfigurationError(f"order must be >= 3, got {order!r}")
        self.order = int(order)
        self._root: _Page[K, V] = _Page()
        self._size = 0

    # -- basics ---------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of page levels (a lone root leaf has height 1)."""
        height = 1
        page = self._root
        while not page.is_leaf:
            page = page.children[0]
            height += 1
        return height

    # -- search ------------------------------------------------------------------

    def _descend(self, key: K) -> List[_Page[K, V]]:
        """Path of pages from root to the leaf that owns ``key``."""
        path = [self._root]
        page = self._root
        while not page.is_leaf:
            index = bisect.bisect_right(page.keys, key)
            page = page.children[index]
            path.append(page)
        return path

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """Point lookup."""
        leaf = self._descend(key)[-1]
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.values[index]
        return default

    def __contains__(self, key: K) -> bool:
        return self.get(key, _MISSING) is not _MISSING  # type: ignore[comparison-overlap]

    def range(self, low: K, high: K) -> Iterator[Tuple[K, V]]:
        """Yield (key, value) for ``low <= key <= high`` in key order."""
        leaf = self._descend(low)[-1]
        index = bisect.bisect_left(leaf.keys, low)
        while leaf is not None:
            while index < len(leaf.keys):
                key = leaf.keys[index]
                if key > high:
                    return
                yield key, leaf.values[index]
                index += 1
            leaf = leaf.next_leaf
            index = 0

    def items(self) -> Iterator[Tuple[K, V]]:
        """All (key, value) pairs in key order via the leaf chain."""
        page = self._root
        while not page.is_leaf:
            page = page.children[0]
        while page is not None:
            yield from zip(page.keys, page.values)
            page = page.next_leaf

    # -- insertion ------------------------------------------------------------------

    def insert(self, key: K, value: V) -> None:
        """Insert or overwrite ``key``."""
        path = self._descend(key)
        leaf = path[-1]
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            leaf.values[index] = value
            return
        leaf.keys.insert(index, key)
        leaf.values.insert(index, value)
        self._size += 1
        # Split upward while pages overflow.
        for depth in range(len(path) - 1, -1, -1):
            page = path[depth]
            if len(page.keys) <= self.order:
                break
            separator, sibling = self._split(page)
            if depth == 0:
                new_root: _Page[K, V] = _Page()
                new_root.keys = [separator]
                new_root.children = [page, sibling]
                self._root = new_root
            else:
                parent = path[depth - 1]
                at = parent.children.index(page)
                parent.keys.insert(at, separator)
                parent.children.insert(at + 1, sibling)

    def _split(self, page: _Page[K, V]) -> Tuple[K, _Page[K, V]]:
        """Split an overflowing page; return (separator key, right sibling)."""
        sibling: _Page[K, V] = _Page()
        mid = len(page.keys) // 2
        if page.is_leaf:
            sibling.keys = page.keys[mid:]
            sibling.values = page.values[mid:]
            page.keys = page.keys[:mid]
            page.values = page.values[:mid]
            sibling.next_leaf = page.next_leaf
            page.next_leaf = sibling
            separator = sibling.keys[0]
        else:
            separator = page.keys[mid]
            sibling.keys = page.keys[mid + 1:]
            sibling.children = page.children[mid + 1:]
            page.keys = page.keys[:mid]
            page.children = page.children[: mid + 1]
        return separator, sibling

    # -- bulk loading -----------------------------------------------------------------

    @classmethod
    def bulk_load(cls, pairs: Sequence[Tuple[K, V]], order: int = 32,
                  fill: float = 0.75) -> "BPlusTree[K, V]":
        """Build a tree bottom-up from sorted-or-not (key, value) pairs.

        Leaves are packed to ``fill * order`` keys, then parent levels are
        built over them — the classic O(n log n) bulk-load that databases use
        after sorting a run.
        """
        if not 0.0 < fill <= 1.0:
            raise ConfigurationError(f"fill must lie in (0, 1], got {fill!r}")
        tree: BPlusTree[K, V] = cls(order)
        ordered = sorted(pairs, key=lambda pair: pair[0])
        if not ordered:
            return tree
        last_key = object()
        deduped: List[Tuple[K, V]] = []
        for key, value in ordered:
            if deduped and deduped[-1][0] == key:
                deduped[-1] = (key, value)  # last write wins
            else:
                deduped.append((key, value))
        per_leaf = max(1, int(fill * order))
        leaves: List[_Page[K, V]] = []
        for start in range(0, len(deduped), per_leaf):
            chunk = deduped[start : start + per_leaf]
            leaf: _Page[K, V] = _Page()
            leaf.keys = [key for key, _ in chunk]
            leaf.values = [value for _, value in chunk]
            if leaves:
                leaves[-1].next_leaf = leaf
            leaves.append(leaf)
        level: List[_Page[K, V]] = leaves
        per_internal = max(2, int(fill * order))
        while len(level) > 1:
            parents: List[_Page[K, V]] = []
            for start in range(0, len(level), per_internal):
                group = level[start : start + per_internal]
                if len(group) == 1 and parents:
                    # Avoid a single-child parent: adopt into the previous.
                    parents[-1].children.append(group[0])
                    parents[-1].keys.append(_leftmost_key(group[0]))
                    continue
                parent: _Page[K, V] = _Page()
                parent.children = group
                parent.keys = [_leftmost_key(child) for child in group[1:]]
                parents.append(parent)
            level = parents
        tree._root = level[0]
        tree._size = len(deduped)
        return tree

    # -- structural checks (used by tests) ----------------------------------------------

    def check_invariants(self) -> None:
        """Assert sortedness, routing consistency, and balanced leaf depth."""
        depths: List[int] = []

        def walk(page: _Page[K, V], lo: Any, hi: Any, depth: int) -> None:
            assert page.keys == sorted(page.keys), "unsorted page"
            for key in page.keys:
                if lo is not _MISSING:
                    assert key >= lo, "key below routing bound"
                if hi is not _MISSING:
                    assert key < hi or page.is_leaf, "key above routing bound"
            if page.is_leaf:
                assert len(page.keys) == len(page.values)
                depths.append(depth)
                return
            assert len(page.children) == len(page.keys) + 1
            bounds = [lo] + list(page.keys) + [hi]
            for index, child in enumerate(page.children):
                walk(child, bounds[index], bounds[index + 1], depth + 1)

        walk(self._root, _MISSING, _MISSING, 0)
        assert len(set(depths)) <= 1, "leaves at different depths"

    # -- bandit adapter -----------------------------------------------------------------

    def to_cluster_tree(self, id_of: Optional[Any] = None,
                        min_leaf_size: int = 1) -> ClusterTree:
        """Expose the page structure as a :class:`ClusterTree`.

        Each B+-tree leaf page becomes a bandit leaf cluster whose members
        are ``id_of(key, value)`` strings (default: ``str(value)``); internal
        pages become internal cluster nodes.  The bandit then exploits *key
        locality* exactly as it exploits vector locality on the k-means
        index.
        """
        id_fn = id_of or (lambda key, value: str(value))
        counter = [0]

        def convert(page: _Page[K, V]) -> ClusterNode:
            counter[0] += 1
            node_id = f"page-{counter[0]}"
            if page.is_leaf:
                members = tuple(
                    id_fn(key, value)
                    for key, value in zip(page.keys, page.values)
                )
                return ClusterNode(node_id, member_ids=members)
            children = [convert(child) for child in page.children]
            children = [
                child for child in children
                if not child.is_leaf or child.member_ids
            ]
            return ClusterNode(node_id, children=children)

        root = convert(self._root)
        if root.is_leaf:
            root = ClusterNode("root", children=[root] if root.member_ids
                               else [])
            if not root.children:
                raise ConfigurationError("cannot index an empty B+ tree")
            return ClusterTree(root)
        return ClusterTree(ClusterNode("root", children=list(root.children)))


def _leftmost_key(page: _Page) -> Any:
    while not page.is_leaf:
        page = page.children[0]
    return page.keys[0]


_MISSING = object()
