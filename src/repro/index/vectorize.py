"""Cheap, task-independent vectorization schemes (Section 3.2.2).

"We vectorize images using pixel values.  For tabular data, we impute and
normalize numeric and boolean columns."  The vectorizers here implement
exactly those heuristics: they are *not* learned representations — the whole
point of the index is that a cheap embedding correlated with the opaque
scores is enough for the bandit to exploit.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Any, Dict, Iterable, List, Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError, NotFittedError


class Vectorizer(ABC):
    """Fits on raw elements, then maps them to fixed-length float vectors."""

    @abstractmethod
    def fit(self, items: Sequence[Any]) -> "Vectorizer":
        """Learn any dataset-level statistics (means, scales); return self."""

    @abstractmethod
    def transform(self, items: Sequence[Any]) -> np.ndarray:
        """Map ``items`` to an ``(n, d)`` float matrix."""

    def fit_transform(self, items: Sequence[Any]) -> np.ndarray:
        """Equivalent to ``fit(items).transform(items)``."""
        return self.fit(items).transform(items)


class IdentityVectorizer(Vectorizer):
    """Pass numeric scalars or vectors through unchanged (synthetic data)."""

    def fit(self, items: Sequence[Any]) -> "IdentityVectorizer":
        return self

    def transform(self, items: Sequence[Any]) -> np.ndarray:
        arr = np.asarray(items, dtype=float)
        if arr.ndim == 1:
            arr = arr.reshape(-1, 1)
        if arr.ndim != 2:
            raise ConfigurationError(
                f"IdentityVectorizer expects scalars or vectors, got ndim={arr.ndim}"
            )
        return arr


class TabularVectorizer(Vectorizer):
    """Impute-and-normalize projection of numeric/boolean columns.

    Mirrors the paper's UsedCars cleaning: project the boolean and numeric
    columns, coerce to float, impute missing values with the column mean,
    and z-normalize.  Boolean columns become {0, 1} before normalization.

    Parameters
    ----------
    columns:
        Ordered feature column names; target/key columns must be excluded by
        the caller (the paper excludes ``price`` and ``listing_id``).
    """

    def __init__(self, columns: Sequence[str]) -> None:
        if not columns:
            raise ConfigurationError("TabularVectorizer needs at least one column")
        self.columns = list(columns)
        self.means_: np.ndarray | None = None
        self.stds_: np.ndarray | None = None

    @staticmethod
    def _coerce(value: Any) -> float:
        """Map a raw cell to float; missing markers become NaN."""
        if value is None:
            return math.nan
        if isinstance(value, bool):
            return 1.0 if value else 0.0
        try:
            result = float(value)
        except (TypeError, ValueError):
            return math.nan
        return result

    def _raw_matrix(self, rows: Sequence[Mapping[str, Any]]) -> np.ndarray:
        matrix = np.empty((len(rows), len(self.columns)), dtype=float)
        for i, row in enumerate(rows):
            for j, column in enumerate(self.columns):
                matrix[i, j] = self._coerce(row.get(column))
        return matrix

    def fit(self, items: Sequence[Mapping[str, Any]]) -> "TabularVectorizer":
        matrix = self._raw_matrix(items)
        # All-NaN columns make nanmean/nanstd warn; they are handled below.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            means = np.nanmean(matrix, axis=0)
            stds = np.nanstd(matrix, axis=0)
        # Columns that are entirely missing impute to zero; constant columns
        # get unit scale so normalization is a no-op instead of a div-by-zero.
        means = np.where(np.isnan(means), 0.0, means)
        stds = np.where(np.isnan(stds) | (stds <= 0.0), 1.0, stds)
        self.means_ = means
        self.stds_ = stds
        return self

    def transform(self, items: Sequence[Mapping[str, Any]]) -> np.ndarray:
        if self.means_ is None or self.stds_ is None:
            raise NotFittedError("TabularVectorizer.transform before fit")
        matrix = self._raw_matrix(items)
        missing = np.isnan(matrix)
        if missing.any():
            matrix[missing] = np.broadcast_to(self.means_, matrix.shape)[missing]
        return (matrix - self.means_) / self.stds_


class ImageVectorizer(Vectorizer):
    """Downsample images to ``side x side x channels`` and flatten.

    The paper scales each ImageNet image to a 16x16x3 tensor, including the
    color channels, and flattens it.  Downsampling uses block averaging; if
    the source is already at or below the target resolution, it is used
    directly (padded by edge replication when needed).
    """

    def __init__(self, side: int = 16) -> None:
        if side <= 0:
            raise ConfigurationError(f"side must be positive, got {side!r}")
        self.side = int(side)

    def fit(self, items: Sequence[np.ndarray]) -> "ImageVectorizer":
        return self

    def _downsample(self, image: np.ndarray) -> np.ndarray:
        image = np.asarray(image, dtype=float)
        if image.ndim == 2:
            image = image[:, :, np.newaxis]
        if image.ndim != 3:
            raise ConfigurationError(
                f"expected HxW or HxWxC image, got shape {image.shape}"
            )
        height, width, channels = image.shape
        side = self.side
        if height == side and width == side:
            return image
        # Resize by sampling block means over an even grid.
        row_idx = np.linspace(0, height, side + 1).astype(int)
        col_idx = np.linspace(0, width, side + 1).astype(int)
        out = np.empty((side, side, channels), dtype=float)
        for i in range(side):
            r0, r1 = row_idx[i], max(row_idx[i + 1], row_idx[i] + 1)
            r1 = min(r1, height)
            r0 = min(r0, height - 1)
            for j in range(side):
                c0, c1 = col_idx[j], max(col_idx[j + 1], col_idx[j] + 1)
                c1 = min(c1, width)
                c0 = min(c0, width - 1)
                out[i, j] = image[r0:r1, c0:c1].reshape(-1, channels).mean(axis=0)
        return out

    def transform(self, items: Sequence[np.ndarray]) -> np.ndarray:
        vectors = [self._downsample(image).ravel() for image in items]
        return np.asarray(vectors, dtype=float)
