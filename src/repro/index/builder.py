"""Index construction pipeline (Section 3.2.2).

``build_index`` runs the paper's three phases — vectorization is assumed to
have already produced a feature matrix — over a dataset: (1) optionally
subsample for clustering ("we take a subsample for clustering if the dataset
is large"), (2) k-means over the vectors, assigning *all* elements to their
closest centroid, and (3) HAC with average linkage over the centroids to
form a dendrogram whose leaves are the k-means clusters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.index.hac import Linkage, agglomerate, merges_to_children
from repro.index.kmeans import KMeans
from repro.index.tree import ClusterNode, ClusterTree
from repro.utils.rng import SeedLike, as_generator


@dataclass
class IndexConfig:
    """Knobs of the index builder.

    Attributes
    ----------
    n_clusters:
        Number of k-means leaf clusters ``L``.
    subsample:
        If set and smaller than ``n``, fit k-means on this many uniformly
        sampled rows and then assign everything (paper: 100k of 320k images).
    linkage:
        HAC linkage for the dendrogram (paper default: average).
    max_kmeans_iter:
        Lloyd sweep cap.
    flat:
        If True, skip the dendrogram and emit a one-level index.
    """

    n_clusters: int
    subsample: Optional[int] = None
    linkage: Linkage | str = Linkage.AVERAGE
    max_kmeans_iter: int = 50
    flat: bool = False


def build_flat_index(ids: Sequence[str], labels: Sequence[int],
                     centroids: Optional[np.ndarray] = None) -> ClusterTree:
    """Assemble a flat index from precomputed cluster labels."""
    clusters: Dict[int, list] = {}
    for element_id, label in zip(ids, labels):
        clusters.setdefault(int(label), []).append(element_id)
    children = [
        ClusterNode(
            node_id=f"leaf-{label}",
            member_ids=tuple(members),
            centroid=None if centroids is None else centroids[label],
        )
        for label, members in sorted(clusters.items())
    ]
    return ClusterTree(ClusterNode(node_id="root", children=children))


def build_index(features: np.ndarray, ids: Sequence[str], config: IndexConfig,
                rng: SeedLike = None) -> ClusterTree:
    """Build the hierarchical cluster index over ``features``.

    Parameters
    ----------
    features:
        ``(n, d)`` cheap vector representations (see
        :mod:`repro.index.vectorize`).
    ids:
        Element IDs aligned with ``features`` rows.
    config:
        Builder configuration.
    rng:
        Seed or generator (controls subsampling and k-means init).
    """
    features = np.asarray(features, dtype=float)
    if features.ndim != 2:
        raise ConfigurationError(f"features must be (n, d), got {features.shape}")
    if len(features) != len(ids):
        raise ConfigurationError(
            f"{len(ids)} ids for {len(features)} feature rows"
        )
    if config.n_clusters > len(features):
        raise ConfigurationError(
            f"n_clusters={config.n_clusters} exceeds n={len(features)}"
        )
    generator = as_generator(rng)

    # Phase 1-2: k-means (optionally fit on a subsample, assign everything).
    kmeans = KMeans(config.n_clusters, max_iter=config.max_kmeans_iter,
                    rng=generator)
    if config.subsample is not None and config.subsample < len(features):
        sample_rows = generator.choice(len(features), size=config.subsample,
                                       replace=False)
        kmeans.fit(features[sample_rows])
        labels = kmeans.predict(features)
    else:
        labels = kmeans.fit_predict(features)
    centroids = kmeans.centroids_
    assert centroids is not None

    # Drop clusters that received no members during full assignment.
    populated = sorted(set(int(label) for label in labels))
    leaf_nodes: Dict[int, ClusterNode] = {}
    members_by_label: Dict[int, list] = {label: [] for label in populated}
    for element_id, label in zip(ids, labels):
        members_by_label[int(label)].append(element_id)
    for label in populated:
        leaf_nodes[label] = ClusterNode(
            node_id=f"leaf-{label}",
            member_ids=tuple(members_by_label[label]),
            centroid=centroids[label].copy(),
        )

    if config.flat or len(populated) == 1:
        root = ClusterNode(node_id="root",
                           children=[leaf_nodes[label] for label in populated])
        return ClusterTree(root)

    # Phase 3: HAC dendrogram over the populated centroids.
    centroid_matrix = np.stack([centroids[label] for label in populated])
    merges = agglomerate(centroid_matrix, config.linkage)
    children_map = merges_to_children(len(populated), merges)

    # HAC ids: 0..L-1 are leaves (positions into ``populated``); internal ids
    # follow.  Build ClusterNodes bottom-up.
    built: Dict[int, ClusterNode] = {
        position: leaf_nodes[label] for position, label in enumerate(populated)
    }
    for internal_id in sorted(children_map):
        left, right = children_map[internal_id]
        built[internal_id] = ClusterNode(
            node_id=f"internal-{internal_id}",
            children=[built[left], built[right]],
        )
    root_internal = max(built)
    root = ClusterNode(node_id="root", children=[built[root_internal]])
    # Collapse the redundant single-child root layer.
    top = built[root_internal]
    root = ClusterNode(node_id="root", children=list(top.children)) \
        if not top.is_leaf else ClusterNode(node_id="root", children=[top])
    return ClusterTree(root)
