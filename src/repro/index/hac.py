"""Hierarchical agglomerative clustering (HAC) from scratch.

The index "builds a dendrogram of the cluster centroids using hierarchical
agglomerative clustering with average linkage" (Section 3.2.2).  This module
implements the classic O(L^3) agglomeration with Lance-Williams updates for
average, single, and complete linkage — L (the number of leaf clusters) is
small relative to n, so cubic cost is negligible, exactly as the paper's
O(n L^3) accounting assumes.  Alternative linkages support the Section 7.3
discussion ("other linkage types could be more efficient").
"""

from __future__ import annotations

import enum
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError


class Linkage(str, enum.Enum):
    """Supported cluster-distance update rules."""

    AVERAGE = "average"
    SINGLE = "single"
    COMPLETE = "complete"


# Merge record: (left_id, right_id, distance, new_cluster_size).
MergeStep = Tuple[int, int, float, int]


def agglomerate(points: np.ndarray, linkage: Linkage | str = Linkage.AVERAGE
                ) -> List[MergeStep]:
    """Agglomerate ``points`` bottom-up; return scipy-style merge steps.

    Point ``i`` starts as singleton cluster ``i``; the merge created by step
    ``s`` gets id ``len(points) + s``.  Each step records the two merged
    cluster ids, the linkage distance at which they merged, and the size of
    the new cluster.  A single point yields an empty merge list.
    """
    linkage = Linkage(linkage)
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ConfigurationError(f"expected (L, d) matrix, got shape {points.shape}")
    n = len(points)
    if n == 0:
        raise ConfigurationError("cannot agglomerate zero points")
    if n == 1:
        return []

    # Condensed state: active cluster id -> (size); distance matrix over the
    # currently active clusters, indexed by a stable position map.
    diffs = points[:, np.newaxis, :] - points[np.newaxis, :, :]
    dist = np.sqrt(np.sum(diffs**2, axis=2))
    np.fill_diagonal(dist, np.inf)

    active = list(range(n))              # ids of live clusters
    position = {cid: i for i, cid in enumerate(active)}  # id -> matrix row
    sizes = {cid: 1 for cid in active}
    merges: List[MergeStep] = []
    next_id = n

    for _step in range(n - 1):
        # Find the closest active pair.
        sub = dist[np.ix_([position[c] for c in active],
                          [position[c] for c in active])]
        flat = int(np.argmin(sub))
        i_local, j_local = divmod(flat, len(active))
        if i_local == j_local:  # all-inf degenerate case (duplicate points OK)
            raise ConfigurationError("distance matrix degenerated during HAC")
        left, right = active[i_local], active[j_local]
        if left > right:
            left, right = right, left
        merge_dist = float(sub[i_local, j_local])
        size_l, size_r = sizes[left], sizes[right]
        new_size = size_l + size_r

        # Lance-Williams update of distances from the merged cluster to every
        # other active cluster, written into ``left``'s row/column.
        row_l, row_r = position[left], position[right]
        others = [c for c in active if c not in (left, right)]
        for other in others:
            row_o = position[other]
            d_lo = dist[row_l, row_o]
            d_ro = dist[row_r, row_o]
            if linkage is Linkage.AVERAGE:
                new_d = (size_l * d_lo + size_r * d_ro) / new_size
            elif linkage is Linkage.SINGLE:
                new_d = min(d_lo, d_ro)
            else:  # complete
                new_d = max(d_lo, d_ro)
            dist[row_l, row_o] = new_d
            dist[row_o, row_l] = new_d
        dist[row_r, :] = np.inf
        dist[:, row_r] = np.inf

        merges.append((left, right, merge_dist, new_size))
        active.remove(right)
        # The merged cluster inherits ``left``'s row under a fresh id.
        active.remove(left)
        active.append(next_id)
        position[next_id] = row_l
        sizes[next_id] = new_size
        next_id += 1

    return merges


def merges_to_children(n_leaves: int, merges: List[MergeStep]
                       ) -> dict[int, Tuple[int, int]]:
    """Map each internal merge id to its (left, right) child cluster ids."""
    return {
        n_leaves + step: (left, right)
        for step, (left, right, _dist, _size) in enumerate(merges)
    }
