"""Cluster tree (dendrogram) structure with JSON persistence.

The paper assumes the index fits into memory and persists it as "a simple
JSON file" (Section 3.2.6).  :class:`ClusterTree` is the in-memory form: an
arbitrary-fanout tree whose leaves own disjoint sets of element IDs and
whose internal nodes group similar leaves (built from the HAC dendrogram).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.errors import IndexError_, SerializationError


@dataclass
class ClusterNode:
    """One node of the cluster tree.

    Leaves carry ``member_ids`` (the element IDs of one k-means cluster) and
    the cluster ``centroid``; internal nodes carry only children.
    """

    node_id: str
    children: List["ClusterNode"] = field(default_factory=list)
    member_ids: tuple = ()
    centroid: Optional[np.ndarray] = None

    @property
    def is_leaf(self) -> bool:
        """True iff this node has no children."""
        return not self.children

    def size(self) -> int:
        """Number of elements under this node."""
        if self.is_leaf:
            return len(self.member_ids)
        return sum(child.size() for child in self.children)

    def iter_nodes(self) -> Iterator["ClusterNode"]:
        """Pre-order traversal of this subtree."""
        yield self
        for child in self.children:
            yield from child.iter_nodes()

    def iter_leaves(self) -> Iterator["ClusterNode"]:
        """Left-to-right leaf traversal of this subtree."""
        if self.is_leaf:
            yield self
        else:
            for child in self.children:
                yield from child.iter_leaves()

    def depth(self) -> int:
        """Height of this subtree (a leaf has depth 1)."""
        if self.is_leaf:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def to_dict(self) -> dict:
        """JSON-safe representation of this subtree."""
        payload: dict = {"node_id": self.node_id}
        if self.is_leaf:
            payload["member_ids"] = list(self.member_ids)
            if self.centroid is not None:
                payload["centroid"] = [float(x) for x in np.asarray(self.centroid)]
        else:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ClusterNode":
        """Rebuild a subtree from :meth:`to_dict` output."""
        try:
            node_id = str(payload["node_id"])
        except (KeyError, TypeError) as exc:
            raise SerializationError(f"malformed cluster node: {exc}") from exc
        children_payload = payload.get("children", [])
        children = [cls.from_dict(child) for child in children_payload]
        centroid_payload = payload.get("centroid")
        centroid = (
            np.asarray(centroid_payload, dtype=float)
            if centroid_payload is not None
            else None
        )
        return cls(
            node_id=node_id,
            children=children,
            member_ids=tuple(payload.get("member_ids", ())),
            centroid=centroid,
        )


class ClusterTree:
    """A validated hierarchical (or flat) clustering of a dataset."""

    def __init__(self, root: ClusterNode) -> None:
        self.root = root
        self.validate()

    # -- constructors ------------------------------------------------------------

    @classmethod
    def flat(cls, clusters: Dict[str, Sequence[str]],
             centroids: Optional[Dict[str, np.ndarray]] = None) -> "ClusterTree":
        """Build a one-level tree: a root whose children are the clusters."""
        children = [
            ClusterNode(
                node_id=cluster_id,
                member_ids=tuple(member_ids),
                centroid=None if centroids is None else centroids.get(cluster_id),
            )
            for cluster_id, member_ids in clusters.items()
        ]
        return cls(ClusterNode(node_id="root", children=children))

    # -- accessors ---------------------------------------------------------------

    def leaves(self) -> List[ClusterNode]:
        """All leaf nodes, left to right."""
        return list(self.root.iter_leaves())

    def nodes(self) -> List[ClusterNode]:
        """All nodes in pre-order."""
        return list(self.root.iter_nodes())

    def n_elements(self) -> int:
        """Total number of indexed elements."""
        return self.root.size()

    def n_leaves(self) -> int:
        """Number of leaf clusters."""
        return sum(1 for _ in self.root.iter_leaves())

    def depth(self) -> int:
        """Height of the tree."""
        return self.root.depth()

    def restricted(self, allowed: Sequence[str]) -> "ClusterTree":
        """Copy of the tree with leaves masked to ``allowed`` element IDs.

        The leaf-mask filtering behind the dialect's ``WHERE`` pushdown:
        each leaf keeps only its members inside ``allowed`` (preserving
        member order and centroids), emptied leaves are dropped, and
        internal nodes whose children all vanish are pruned recursively —
        so a bandit over the restricted tree can never draw (and a scorer
        can never be charged for) a filtered-out element.  Restricting to
        an empty set yields a valid empty tree (an engine over it is
        immediately exhausted).
        """
        allowed_set = frozenset(allowed)

        def prune(node: ClusterNode) -> Optional[ClusterNode]:
            if node.is_leaf:
                members = tuple(member for member in node.member_ids
                                if member in allowed_set)
                if not members:
                    return None
                return ClusterNode(node_id=node.node_id,
                                   member_ids=members,
                                   centroid=node.centroid)
            children = [kept for kept in map(prune, node.children)
                        if kept is not None]
            if not children:
                return None
            return ClusterNode(node_id=node.node_id, children=children)

        root = prune(self.root)
        if root is None:
            root = ClusterNode(node_id=self.root.node_id)
        return ClusterTree(root)

    def flattened(self) -> "ClusterTree":
        """Return a flat copy: root directly over the current leaves.

        This is the structure produced by the *tree fallback* (Section
        3.2.3): "we turn the index into a flat partition, removing the tree
        while preserving the clustering."
        """
        children = [
            ClusterNode(
                node_id=leaf.node_id,
                member_ids=leaf.member_ids,
                centroid=leaf.centroid,
            )
            for leaf in self.root.iter_leaves()
        ]
        return ClusterTree(ClusterNode(node_id="root", children=children))

    # -- validation ----------------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`IndexError_` unless the tree is well-formed.

        Checks: unique node ids, no empty internal nodes, members only at
        leaves, and no element assigned to two leaves.
        """
        seen_nodes: set[str] = set()
        seen_members: set[str] = set()
        for node in self.root.iter_nodes():
            if node.node_id in seen_nodes:
                raise IndexError_(f"duplicate node id {node.node_id!r}")
            seen_nodes.add(node.node_id)
            if node.is_leaf:
                if not node.member_ids and node is not self.root:
                    raise IndexError_(f"empty leaf cluster {node.node_id!r}")
                for member in node.member_ids:
                    if member in seen_members:
                        raise IndexError_(
                            f"element {member!r} appears in multiple leaves"
                        )
                    seen_members.add(member)
            else:
                if node.member_ids:
                    raise IndexError_(
                        f"internal node {node.node_id!r} must not own members"
                    )

    # -- persistence -----------------------------------------------------------------

    def to_json(self, path: str | Path | None = None, *, indent: int | None = None
                ) -> str:
        """Serialize to JSON; optionally also write to ``path``."""
        text = json.dumps({"format": "repro-cluster-tree/1", "root": self.root.to_dict()},
                          indent=indent)
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    @classmethod
    def from_json(cls, source: str | Path) -> "ClusterTree":
        """Load a tree from a JSON string or file path."""
        text: str
        candidate = Path(str(source))
        try:
            is_file = candidate.is_file()
        except OSError:
            is_file = False
        text = candidate.read_text(encoding="utf-8") if is_file else str(source)
        try:
            payload = json.loads(text)
            root_payload = payload["root"]
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise SerializationError(f"malformed cluster-tree JSON: {exc}") from exc
        return cls(ClusterNode.from_dict(root_payload))

    def __repr__(self) -> str:
        return (
            f"ClusterTree(leaves={self.n_leaves()}, elements={self.n_elements()}, "
            f"depth={self.depth()})"
        )
