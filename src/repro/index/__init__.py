"""Index substrate: the VOODOO-style hierarchical cluster index of
He et al. (SIGMOD 2020), adopted by the paper (Section 3.2.2).

Pipeline: cheap task-independent vectorization -> k-means over the vectors
(optionally on a subsample) -> hierarchical agglomerative clustering of the
cluster centroids into a dendrogram.  Every stage is implemented from
scratch on numpy.
"""

from repro.index.vectorize import (
    IdentityVectorizer,
    ImageVectorizer,
    TabularVectorizer,
    Vectorizer,
)
from repro.index.kmeans import KMeans
from repro.index.hac import agglomerate, Linkage
from repro.index.tree import ClusterNode, ClusterTree
from repro.index.builder import IndexConfig, build_flat_index, build_index
from repro.index.btree import BPlusTree

__all__ = [
    "BPlusTree",
    "Vectorizer",
    "IdentityVectorizer",
    "ImageVectorizer",
    "TabularVectorizer",
    "KMeans",
    "agglomerate",
    "Linkage",
    "ClusterNode",
    "ClusterTree",
    "IndexConfig",
    "build_index",
    "build_flat_index",
]
