"""k-means clustering from scratch (Lloyd's algorithm + k-means++ seeding).

The index applies k-means over the elements' cheap vector representations
(Section 3.2.2).  No third-party clustering library is available offline, so
this is a complete implementation: k-means++ initialization, vectorized
Lloyd sweeps, empty-cluster repair (re-seeding an empty centroid at the
point farthest from its assigned centroid), and convergence on centroid
movement tolerance.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, NotFittedError
from repro.utils.rng import SeedLike, as_generator


def _pairwise_sq_dists(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances, shape ``(n_points, n_centroids)``."""
    # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2, clipped for numeric noise.
    cross = points @ centroids.T
    sq = (
        np.sum(points**2, axis=1)[:, np.newaxis]
        - 2.0 * cross
        + np.sum(centroids**2, axis=1)[np.newaxis, :]
    )
    return np.maximum(sq, 0.0)


class KMeans:
    """Lloyd's k-means with k-means++ initialization.

    Parameters
    ----------
    n_clusters:
        Number of centroids ``L``.
    max_iter:
        Maximum Lloyd sweeps (default 100).
    tol:
        Convergence threshold on total squared centroid movement.
    rng:
        Seed or generator.

    Attributes
    ----------
    centroids_:
        ``(n_clusters, d)`` array after :meth:`fit`.
    labels_:
        Training-point assignments after :meth:`fit`.
    inertia_:
        Final sum of squared distances to assigned centroids.
    n_iter_:
        Number of Lloyd sweeps performed.
    """

    def __init__(self, n_clusters: int, max_iter: int = 100, tol: float = 1e-6,
                 rng: SeedLike = None) -> None:
        if n_clusters <= 0:
            raise ConfigurationError(f"n_clusters must be positive, got {n_clusters!r}")
        if max_iter <= 0:
            raise ConfigurationError(f"max_iter must be positive, got {max_iter!r}")
        self.n_clusters = int(n_clusters)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self._rng = as_generator(rng)
        self.centroids_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.inertia_: Optional[float] = None
        self.n_iter_: int = 0

    # -- initialization --------------------------------------------------------

    def _init_plus_plus(self, points: np.ndarray) -> np.ndarray:
        """k-means++ seeding: spread initial centroids by D^2 sampling."""
        n = len(points)
        centroids = np.empty((self.n_clusters, points.shape[1]), dtype=float)
        first = int(self._rng.integers(n))
        centroids[0] = points[first]
        closest_sq = _pairwise_sq_dists(points, centroids[:1]).ravel()
        for i in range(1, self.n_clusters):
            total = closest_sq.sum()
            if total <= 0.0:
                # All points coincide with chosen centroids; pick uniformly.
                index = int(self._rng.integers(n))
            else:
                index = int(
                    self._rng.choice(n, p=closest_sq / total)
                )
            centroids[i] = points[index]
            new_sq = _pairwise_sq_dists(points, centroids[i : i + 1]).ravel()
            closest_sq = np.minimum(closest_sq, new_sq)
        return centroids

    # -- fitting -----------------------------------------------------------------

    def fit(self, points: np.ndarray) -> "KMeans":
        """Cluster ``points`` (``(n, d)`` float array); return self."""
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or len(points) == 0:
            raise ConfigurationError(
                f"fit expects a non-empty (n, d) matrix, got shape {points.shape}"
            )
        if len(points) < self.n_clusters:
            raise ConfigurationError(
                f"cannot make {self.n_clusters} clusters from {len(points)} points"
            )
        centroids = self._init_plus_plus(points)
        labels = np.zeros(len(points), dtype=int)
        for sweep in range(self.max_iter):
            sq_dists = _pairwise_sq_dists(points, centroids)
            labels = np.argmin(sq_dists, axis=1)
            new_centroids = centroids.copy()
            for cluster in range(self.n_clusters):
                members = points[labels == cluster]
                if len(members):
                    new_centroids[cluster] = members.mean(axis=0)
            # Empty-cluster repair: re-seed at the point with the largest
            # distance to its assigned centroid.
            assigned_sq = sq_dists[np.arange(len(points)), labels]
            for cluster in range(self.n_clusters):
                if not np.any(labels == cluster):
                    farthest = int(np.argmax(assigned_sq))
                    new_centroids[cluster] = points[farthest]
                    assigned_sq[farthest] = 0.0
            movement = float(np.sum((new_centroids - centroids) ** 2))
            centroids = new_centroids
            self.n_iter_ = sweep + 1
            if movement <= self.tol:
                break
        sq_dists = _pairwise_sq_dists(points, centroids)
        self.labels_ = np.argmin(sq_dists, axis=1)
        self.centroids_ = centroids
        self.inertia_ = float(
            sq_dists[np.arange(len(points)), self.labels_].sum()
        )
        return self

    def predict(self, points: np.ndarray) -> np.ndarray:
        """Assign each row of ``points`` to its nearest learned centroid."""
        if self.centroids_ is None:
            raise NotFittedError("KMeans.predict before fit")
        points = np.asarray(points, dtype=float)
        return np.argmin(_pairwise_sq_dists(points, self.centroids_), axis=1)

    def fit_predict(self, points: np.ndarray) -> np.ndarray:
        """Equivalent to ``fit(points).labels_``."""
        return self.fit(points).labels_  # type: ignore[return-value]
