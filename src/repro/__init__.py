"""repro — approximating opaque top-k queries.

A standalone library reproducing Chang & Nargesian, *Approximating Opaque
Top-k Queries* (SIGMOD 2025): answer ``SELECT * ... ORDER BY udf(x) LIMIT k``
approximately when the scoring function is an expensive black box, using a
hierarchical cluster index plus a histogram-based epsilon-greedy
DR-submodular bandit.

Quickstart
----------
>>> import numpy as np
>>> from repro import (EngineConfig, TopKEngine, build_index, IndexConfig,
...                    InMemoryDataset, FunctionScorer)
>>> values = np.random.default_rng(0).normal(size=1000)
>>> ds = InMemoryDataset([f"e{i}" for i in range(1000)], list(values),
...                      values.reshape(-1, 1))
>>> index = build_index(ds.features(), ds.ids(), IndexConfig(n_clusters=8),
...                     rng=0)
>>> scorer = FunctionScorer(lambda v: max(0.0, float(v)))
>>> engine = TopKEngine(index, EngineConfig(k=10, seed=0))
>>> result = engine.run(ds, scorer, budget=400)
>>> len(result.ids)
10
"""

from repro.core import (
    AdaptiveHistogram,
    BanditConfig,
    Checkpoint,
    ConvergenceBound,
    TailSummary,
    DiscreteArm,
    DiscreteTopKBandit,
    EngineConfig,
    EpsilonGreedyBandit,
    FallbackConfig,
    MinMaxHeap,
    QueryResult,
    TopKBuffer,
    TopKEngine,
    kth_largest,
    marginal_gain,
    stk,
    stk_curve,
)
from repro.index import (
    ClusterNode,
    ClusterTree,
    IdentityVectorizer,
    ImageVectorizer,
    IndexConfig,
    KMeans,
    TabularVectorizer,
    build_flat_index,
    build_index,
)
from repro.data import (
    Dataset,
    InMemoryDataset,
    SyntheticClustersDataset,
    SyntheticImageDataset,
    UsedCarsDataset,
)
from repro.scoring import (
    AmortizedBatchLatency,
    CountingScorer,
    FixedPerCallLatency,
    FunctionScorer,
    GBDTValuationScorer,
    GradientBoostedRegressor,
    MLPClassifier,
    ReluScorer,
    Scorer,
    SoftmaxConfidenceScorer,
)
from repro.baselines import (
    EngineAlgorithm,
    ExplorationOnly,
    SamplingAlgorithm,
    ScanBest,
    ScanWorst,
    SortedScan,
    UCBBandit,
    UniformSample,
)
from repro.errors import (
    ConfigurationError,
    EmptyStructureError,
    ExhaustedError,
    NotFittedError,
    ReproError,
)
from repro.core.budgeted import budgeted_config, run_budgeted
from repro.core.snapshot import (
    restore_engine,
    restore_memo,
    snapshot_engine,
    snapshot_memo,
)
from repro.memo import (
    MemoStore,
    MemoView,
    PriorStore,
    udf_fingerprint,
)
from repro.live import (
    ContinuousQuery,
    IndexMaintainer,
    LiveTable,
    TableSnapshot,
    WriteDelta,
)
from repro.index.btree import BPlusTree
from repro.applications import (
    AcquisitionReport,
    DataSourceUnion,
    UncertaintyScorer,
    acquire_topk,
)
from repro.core.result import ResultBase
from repro.query import (
    ExecutionPlan,
    QueryPlan,
    available_executors,
    parse,
    register_executor,
)
from repro.session import OpaqueQuerySession, ParsedQuery, parse_query
from repro.distributed import DistributedTopKExecutor, DistributedResult
from repro.parallel import (
    ShardIndexCache,
    ShardedTopKEngine,
    available_backends,
)
from repro.streaming import (
    ProgressiveResult,
    StreamingResult,
    StreamingTopKEngine,
)
from repro.replay import (
    ArrivalTrace,
    ReplayStreamBackend,
    replay_engine,
    replay_run,
)
from repro.core.sketches import (
    EquiDepthSketch,
    ExactEmpiricalSketch,
    ReservoirSketch,
    ScoreSketch,
)
from repro.obs import (
    ExplainAnalyzeReport,
    MetricsRegistry,
    REGISTRY,
    TraceContext,
)
from repro.experiments.plotting import ascii_chart

__version__ = "1.0.0"

__all__ = [
    # core
    "stk",
    "stk_curve",
    "kth_largest",
    "marginal_gain",
    "MinMaxHeap",
    "TopKBuffer",
    "AdaptiveHistogram",
    "EpsilonGreedyBandit",
    "BanditConfig",
    "DiscreteArm",
    "DiscreteTopKBandit",
    "EngineConfig",
    "TopKEngine",
    "FallbackConfig",
    "QueryResult",
    "Checkpoint",
    # index
    "KMeans",
    "ClusterNode",
    "ClusterTree",
    "IndexConfig",
    "build_index",
    "build_flat_index",
    "IdentityVectorizer",
    "ImageVectorizer",
    "TabularVectorizer",
    # data
    "Dataset",
    "InMemoryDataset",
    "SyntheticClustersDataset",
    "UsedCarsDataset",
    "SyntheticImageDataset",
    # scoring
    "Scorer",
    "FunctionScorer",
    "CountingScorer",
    "ReluScorer",
    "GradientBoostedRegressor",
    "GBDTValuationScorer",
    "MLPClassifier",
    "SoftmaxConfidenceScorer",
    "FixedPerCallLatency",
    "AmortizedBatchLatency",
    # baselines
    "SamplingAlgorithm",
    "EngineAlgorithm",
    "UniformSample",
    "ExplorationOnly",
    "UCBBandit",
    "ScanBest",
    "ScanWorst",
    "SortedScan",
    # errors
    "ReproError",
    "ConfigurationError",
    "EmptyStructureError",
    "ExhaustedError",
    "NotFittedError",
    # extensions (paper Section 7)
    "budgeted_config",
    "run_budgeted",
    "BPlusTree",
    "DataSourceUnion",
    "UncertaintyScorer",
    "acquire_topk",
    "AcquisitionReport",
    "OpaqueQuerySession",
    "ParsedQuery",
    "parse_query",
    "parse",
    "QueryPlan",
    "ExecutionPlan",
    "register_executor",
    "available_executors",
    "ResultBase",
    "DistributedTopKExecutor",
    "DistributedResult",
    "ShardedTopKEngine",
    "ShardIndexCache",
    "StreamingTopKEngine",
    "StreamingResult",
    "ProgressiveResult",
    "ConvergenceBound",
    "TailSummary",
    "ArrivalTrace",
    "ReplayStreamBackend",
    "replay_engine",
    "replay_run",
    "available_backends",
    "snapshot_engine",
    "restore_engine",
    "snapshot_memo",
    "restore_memo",
    "MemoStore",
    "MemoView",
    "PriorStore",
    "udf_fingerprint",
    "LiveTable",
    "TableSnapshot",
    "WriteDelta",
    "IndexMaintainer",
    "ContinuousQuery",
    "ScoreSketch",
    "ReservoirSketch",
    "EquiDepthSketch",
    "ExactEmpiricalSketch",
    "TraceContext",
    "ExplainAnalyzeReport",
    "MetricsRegistry",
    "REGISTRY",
    "ascii_chart",
]
