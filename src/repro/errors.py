"""Exception hierarchy for the repro library.

Every error raised intentionally by this package derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid parameter or parameter combination was supplied."""


class EmptyStructureError(ReproError):
    """An operation required a non-empty container (heap, arm, index)."""


class ExhaustedError(ReproError):
    """A sampling source ran out of elements and cannot produce more."""


class IndexError_(ReproError):
    """The cluster index is malformed or inconsistent.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`IndexError`.
    """


class SerializationError(ReproError):
    """A structure could not be serialized or deserialized."""


class NotFittedError(ReproError):
    """A model was used before :meth:`fit` was called."""


class QueryCancelledError(ReproError):
    """A running query was cancelled by its client or service.

    Raised inside the engines by the budget gate
    (:class:`repro.service.budget.QueryGrant`) at the next grant
    quantum after :meth:`~repro.service.budget.QueryGrant.cancel`, so a
    cancelled query unwinds through the normal error path — executors
    close their engines, shared-memory segments are unlinked, and the
    scheduler reclaims the query's unconsumed budget.
    """


class ReplayDivergenceError(ReproError):
    """A recorded arrival trace does not match the replayed execution.

    Raised by :mod:`repro.replay` when the coordinator's decisions during
    replay (submissions, caps, floors) or the shard outcomes diverge from
    what the trace recorded — almost always a sign that the dataset,
    scorer, seed, or engine configuration differs from the recorded run.
    """
