"""Synthetic normal-mixture dataset — Section 5.1.2 (1) of the paper.

"We randomly generate L normal distributions with mu in [0, 20] and sigma in
(0, 5].  We then draw a fixed number of samples from each distribution,
which then serves as the leaf clusters of the index.  We build the
dendrogram over the means of each cluster.  There are 20 clusters and 2,500
samples per cluster."  The scoring function is ReLU, so elements are the raw
values themselves.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.data.dataset import InMemoryDataset
from repro.errors import ConfigurationError
from repro.index.hac import Linkage, agglomerate, merges_to_children
from repro.index.tree import ClusterNode, ClusterTree
from repro.utils.rng import SeedLike, as_generator


class SyntheticClustersDataset(InMemoryDataset):
    """Scalar elements drawn from L random normal distributions."""

    def __init__(self, ids: List[str], values: np.ndarray,
                 cluster_of: Dict[str, int], means: np.ndarray,
                 sigmas: np.ndarray) -> None:
        super().__init__(ids, list(values), values.reshape(-1, 1))
        self.cluster_of = cluster_of
        self.means = means
        self.sigmas = sigmas

    @classmethod
    def generate(cls, n_clusters: int = 20, per_cluster: int = 2500,
                 mu_range: Tuple[float, float] = (0.0, 20.0),
                 sigma_range: Tuple[float, float] = (0.0, 5.0),
                 rng: SeedLike = None) -> "SyntheticClustersDataset":
        """Draw the paper's synthetic workload (defaults match Section 5.2)."""
        if n_clusters <= 0 or per_cluster <= 0:
            raise ConfigurationError("n_clusters and per_cluster must be positive")
        generator = as_generator(rng)
        means = generator.uniform(mu_range[0], mu_range[1], size=n_clusters)
        # sigma in (0, high]: sample the open-low/closed-high interval.
        low, high = sigma_range
        sigmas = high - generator.uniform(0.0, high - low, size=n_clusters) * (
            1.0 - 1e-9
        )
        ids: List[str] = []
        values: List[float] = []
        cluster_of: Dict[str, int] = {}
        for cluster in range(n_clusters):
            draws = generator.normal(means[cluster], sigmas[cluster],
                                     size=per_cluster)
            for i, value in enumerate(draws):
                element_id = f"c{cluster:03d}-{i:05d}"
                ids.append(element_id)
                values.append(float(value))
                cluster_of[element_id] = cluster
        return cls(ids, np.asarray(values, dtype=float), cluster_of, means,
                   sigmas)

    @property
    def n_clusters(self) -> int:
        """Number of generating distributions L."""
        return len(self.means)

    def true_index(self, linkage: Linkage | str = Linkage.AVERAGE) -> ClusterTree:
        """The paper's index for this dataset: true clusters + mean dendrogram.

        The generating clusters serve directly as the leaf clusters, and the
        dendrogram is built by HAC over the cluster means.
        """
        members: Dict[int, List[str]] = {c: [] for c in range(self.n_clusters)}
        for element_id in self.ids():
            members[self.cluster_of[element_id]].append(element_id)
        leaves = {
            cluster: ClusterNode(
                node_id=f"leaf-{cluster}",
                member_ids=tuple(ids),
                centroid=np.asarray([self.means[cluster]]),
            )
            for cluster, ids in members.items()
        }
        if self.n_clusters == 1:
            return ClusterTree(
                ClusterNode(node_id="root", children=[leaves[0]])
            )
        merges = agglomerate(self.means.reshape(-1, 1), linkage)
        children_map = merges_to_children(self.n_clusters, merges)
        built: Dict[int, ClusterNode] = dict(leaves)
        for internal_id in sorted(children_map):
            left, right = children_map[internal_id]
            built[internal_id] = ClusterNode(
                node_id=f"internal-{internal_id}",
                children=[built[left], built[right]],
            )
        top = built[max(built)]
        root_children = list(top.children) if not top.is_leaf else [top]
        return ClusterTree(ClusterNode(node_id="root", children=root_children))

    def flat_index(self) -> ClusterTree:
        """One-level index over the true clusters (no dendrogram)."""
        members: Dict[str, List[str]] = {}
        for element_id in self.ids():
            members.setdefault(f"leaf-{self.cluster_of[element_id]}", []).append(
                element_id
            )
        return ClusterTree.flat(members)
