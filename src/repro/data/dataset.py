"""Dataset protocol: string IDs plus the user-defined sampler function.

Section 3.2.6: "we assume that each element in the search domain has a
unique string ID ... a user-defined sampler function takes an ID and
additional parameters as input, and returns an object — the element itself —
of arbitrary type."  :class:`Dataset` is that contract; everything else in
the library addresses elements only by ID.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, List, Sequence

import numpy as np

from repro.errors import ConfigurationError


class Dataset(ABC):
    """A searchable collection of elements addressed by unique string IDs."""

    @abstractmethod
    def ids(self) -> List[str]:
        """All element IDs, in a stable order."""

    @abstractmethod
    def fetch(self, element_id: str) -> Any:
        """Materialize one element (the paper's sampler function)."""

    def fetch_batch(self, element_ids: Sequence[str]) -> List[Any]:
        """Materialize several elements; default maps :meth:`fetch`."""
        return [self.fetch(element_id) for element_id in element_ids]

    @abstractmethod
    def features(self) -> np.ndarray:
        """Cheap vector representations aligned with :meth:`ids` rows."""

    def __len__(self) -> int:
        return len(self.ids())


class InMemoryDataset(Dataset):
    """Simple concrete dataset holding objects and features in memory.

    Parameters
    ----------
    ids:
        Unique string IDs.
    objects:
        Elements aligned with ``ids``.
    features:
        ``(n, d)`` cheap vectors aligned with ``ids``.
    """

    def __init__(self, ids: Sequence[str], objects: Sequence[Any],
                 features: np.ndarray) -> None:
        if len(ids) != len(objects):
            raise ConfigurationError(
                f"{len(ids)} ids for {len(objects)} objects"
            )
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features.reshape(-1, 1)
        if len(features) != len(ids):
            raise ConfigurationError(
                f"{len(ids)} ids for {len(features)} feature rows"
            )
        if len(set(ids)) != len(ids):
            raise ConfigurationError("element ids must be unique")
        self._ids = [str(element_id) for element_id in ids]
        self._objects: Dict[str, Any] = dict(zip(self._ids, objects))
        self._features = features
        self._row_of = {element_id: row for row, element_id in enumerate(self._ids)}

    def ids(self) -> List[str]:
        return list(self._ids)

    def fetch(self, element_id: str) -> Any:
        try:
            return self._objects[element_id]
        except KeyError:
            raise ConfigurationError(f"unknown element id {element_id!r}") from None

    def fetch_batch(self, element_ids: Sequence[str]) -> List[Any]:
        """Materialize several elements without per-element call overhead."""
        try:
            objects = self._objects
            return [objects[element_id] for element_id in element_ids]
        except KeyError as exc:
            raise ConfigurationError(
                f"unknown element id {exc.args[0]!r}"
            ) from None

    def features(self) -> np.ndarray:
        return self._features

    def feature_of(self, element_id: str) -> np.ndarray:
        """Feature row for one element ID."""
        try:
            return self._features[self._row_of[element_id]]
        except KeyError:
            raise ConfigurationError(f"unknown element id {element_id!r}") from None

    def features_of(self, element_ids: Sequence[str]) -> np.ndarray:
        """Feature rows for many IDs in one fancy-index slice.

        Bit-identical to stacking :meth:`feature_of` row by row (same
        underlying float64 data), but a single numpy gather — this is the
        fast path shard construction uses for large partitions.
        """
        try:
            row_of = self._row_of
            rows = [row_of[element_id] for element_id in element_ids]
        except KeyError as exc:
            raise ConfigurationError(
                f"unknown element id {exc.args[0]!r}"
            ) from None
        return self._features[rows]
