"""Synthetic US-Used-Cars-style tabular dataset.

The paper's tabular workload is a 100k-row slice of the US Used Cars Kaggle
dump [40], cleaned down to 11 columns: three boolean (``frame_damaged``,
``has_accidents``, ``is_new``), six numeric (``daysonmarket``, ``height``,
``horsepower``, ``length``, ``mileage``, ``seller_rating``), the target
``price`` (used for model training, excluded from indexing/querying), and
the key ``listing_id``.

The dump is unavailable offline, so this generator produces rows with the
same schema and — crucially — the same statistical property the index
exploits: listings cluster into market segments in feature space, and
predicted valuations concentrate in a few of those segments (luxury/sports
cars dominate the top-k).  Prices follow a heavy-tailed multiplicative
model over the features, so a gradient-boosted regressor trained on a
disjoint split learns a genuinely non-linear scoring surface.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import InMemoryDataset
from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, as_generator

BOOLEAN_COLUMNS: Tuple[str, ...] = ("frame_damaged", "has_accidents", "is_new")
NUMERIC_COLUMNS: Tuple[str, ...] = (
    "daysonmarket",
    "height",
    "horsepower",
    "length",
    "mileage",
    "seller_rating",
)
FEATURE_COLUMNS: Tuple[str, ...] = BOOLEAN_COLUMNS + NUMERIC_COLUMNS
TARGET_COLUMN = "price"
KEY_COLUMN = "listing_id"

# Market segments: (weight, base_price, hp_mu, hp_sigma, length_mu, height_mu)
_SEGMENTS: Tuple[Tuple[float, float, float, float, float, float], ...] = (
    (0.30, 14_000.0, 120.0, 20.0, 175.0, 57.0),   # economy sedans
    (0.25, 22_000.0, 180.0, 25.0, 190.0, 66.0),   # mid-size SUVs
    (0.20, 30_000.0, 250.0, 35.0, 210.0, 70.0),   # trucks
    (0.15, 45_000.0, 320.0, 40.0, 195.0, 56.0),   # luxury sedans
    (0.07, 75_000.0, 450.0, 60.0, 180.0, 50.0),   # sports cars
    (0.03, 130_000.0, 580.0, 70.0, 185.0, 49.0),  # exotics
)


def _draw_rows(n: int, generator: np.random.Generator,
               missing_rate: float) -> List[Dict[str, Any]]:
    """Draw ``n`` listing rows from the segment mixture model."""
    weights = np.array([seg[0] for seg in _SEGMENTS])
    weights = weights / weights.sum()
    segments = generator.choice(len(_SEGMENTS), size=n, p=weights)
    rows: List[Dict[str, Any]] = []
    for i in range(n):
        seg = _SEGMENTS[segments[i]]
        _w, base_price, hp_mu, hp_sigma, length_mu, height_mu = seg
        horsepower = max(60.0, generator.normal(hp_mu, hp_sigma))
        length = max(140.0, generator.normal(length_mu, 6.0))
        height = max(45.0, generator.normal(height_mu, 2.5))
        mileage = float(generator.exponential(45_000.0))
        is_new = bool(mileage < 100.0 or generator.random() < 0.02)
        if is_new:
            mileage = float(generator.uniform(0.0, 100.0))
        daysonmarket = float(generator.gamma(2.0, 30.0))
        seller_rating = float(np.clip(generator.normal(4.1, 0.6), 1.0, 5.0))
        frame_damaged = bool(generator.random() < 0.04)
        has_accidents = bool(frame_damaged or generator.random() < 0.12)

        # Heavy-tailed multiplicative price model over the features.
        price = base_price
        price *= 1.0 + 0.9 * (horsepower - hp_mu) / max(hp_mu, 1.0)
        price *= float(np.exp(-mileage / 120_000.0))
        if is_new:
            price *= 1.15
        if frame_damaged:
            price *= 0.55
        elif has_accidents:
            price *= 0.82
        price *= 1.0 + 0.02 * (seller_rating - 4.0)
        price *= 1.0 - min(daysonmarket, 365.0) / 3_000.0
        price *= float(generator.lognormal(0.0, 0.12))
        price = max(500.0, price)

        row: Dict[str, Any] = {
            KEY_COLUMN: f"listing-{i:07d}",
            "frame_damaged": frame_damaged,
            "has_accidents": has_accidents,
            "is_new": is_new,
            "daysonmarket": daysonmarket,
            "height": height,
            "horsepower": horsepower,
            "length": length,
            "mileage": mileage,
            "seller_rating": seller_rating,
            TARGET_COLUMN: price,
        }
        # Inject missing numerics to exercise the imputation pipeline.
        if missing_rate > 0.0:
            for column in NUMERIC_COLUMNS:
                if generator.random() < missing_rate:
                    row[column] = None
        rows.append(row)
    return rows


class UsedCarsDataset(InMemoryDataset):
    """In-memory synthetic used-car listings with cleaned feature vectors.

    ``features()`` returns the imputed, z-normalized projection of the nine
    feature columns (booleans as {0,1}) — the exact cleaning the paper
    applies before indexing.  The ``price`` column is excluded from features
    and only used for model training.
    """

    def __init__(self, rows: Sequence[Dict[str, Any]],
                 features: np.ndarray) -> None:
        ids = [str(row[KEY_COLUMN]) for row in rows]
        super().__init__(ids, list(rows), features)

    @classmethod
    def generate(cls, n: int = 10_000, missing_rate: float = 0.03,
                 rng: SeedLike = None) -> "UsedCarsDataset":
        """Generate ``n`` listings and fit the cleaning pipeline on them."""
        if n <= 0:
            raise ConfigurationError(f"n must be positive, got {n!r}")
        generator = as_generator(rng)
        rows = _draw_rows(n, generator, missing_rate)
        from repro.index.vectorize import TabularVectorizer

        vectorizer = TabularVectorizer(list(FEATURE_COLUMNS))
        features = vectorizer.fit_transform(rows)
        dataset = cls(rows, features)
        dataset.vectorizer = vectorizer
        return dataset

    @classmethod
    def generate_split(cls, n_train: int, n_query: int,
                       missing_rate: float = 0.03, rng: SeedLike = None
                       ) -> Tuple[List[Dict[str, Any]], "UsedCarsDataset"]:
        """Generate a disjoint (training rows, query dataset) pair.

        The paper trains its XGBoost valuation model on a split disjoint
        from the split used for indexing and query evaluation.
        """
        generator = as_generator(rng)
        train_rows = _draw_rows(n_train, generator, missing_rate)
        query_rows = _draw_rows(n_query, generator, missing_rate)
        # Re-key the query rows so IDs do not collide with the train rows.
        for i, row in enumerate(query_rows):
            row[KEY_COLUMN] = f"listing-q{i:07d}"
        from repro.index.vectorize import TabularVectorizer

        vectorizer = TabularVectorizer(list(FEATURE_COLUMNS))
        vectorizer.fit(query_rows)
        dataset = cls(query_rows, vectorizer.transform(query_rows))
        dataset.vectorizer = vectorizer
        return train_rows, dataset

    def prices(self) -> np.ndarray:
        """True prices aligned with :meth:`ids` (training targets only)."""
        return np.asarray(
            [self.fetch(element_id)[TARGET_COLUMN] for element_id in self.ids()],
            dtype=float,
        )
