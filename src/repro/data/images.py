"""Synthetic class-templated image dataset (ImageNet substitute).

The paper's multimedia workload scales 320k ImageNet images to 16x16x3
tensors, clusters them by raw pixels, and queries for the images most
confidently classified as a label by a pre-trained ResNeXT.  ImageNet and
pre-trained weights are unavailable offline, so this generator reproduces
the three properties the experiment actually relies on:

1. images of one class share visual structure (per-class smooth pixel
   templates, so pixel-space k-means correlates with labels);
2. a softmax classifier trained on held-out images yields genuinely skewed
   per-class confidences (most images score near zero for any fixed label);
3. some classes are visually consistent while others are diffuse (per-class
   noise scales vary), reproducing the paper's observation that the
   advantage of the bandit varies heavily per label.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.data.dataset import InMemoryDataset
from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, as_generator


def _smooth_field(generator: np.random.Generator, side: int,
                  channels: int) -> np.ndarray:
    """A smooth random template: sum of a few random 2-D Gaussian bumps."""
    yy, xx = np.mgrid[0:side, 0:side].astype(float) / side
    field = np.zeros((side, side, channels))
    n_bumps = int(generator.integers(3, 7))
    for _ in range(n_bumps):
        cx, cy = generator.uniform(0.1, 0.9, size=2)
        width = generator.uniform(0.08, 0.35)
        bump = np.exp(-(((xx - cx) ** 2 + (yy - cy) ** 2) / (2 * width**2)))
        color = generator.uniform(0.2, 1.0, size=channels)
        field += bump[:, :, np.newaxis] * color[np.newaxis, np.newaxis, :]
    field /= max(field.max(), 1e-9)
    return field


class SyntheticImageDataset(InMemoryDataset):
    """Class-templated noisy images with flattened-pixel features."""

    def __init__(self, ids: List[str], images: List[np.ndarray],
                 labels: np.ndarray, templates: np.ndarray) -> None:
        features = np.asarray([image.ravel() for image in images], dtype=float)
        super().__init__(ids, images, features)
        self.labels = labels
        self.templates = templates

    @classmethod
    def generate(cls, n: int = 5_000, n_classes: int = 10, side: int = 16,
                 channels: int = 3, noise: float = 0.25,
                 rng: SeedLike = None,
                 templates: np.ndarray | None = None) -> "SyntheticImageDataset":
        """Generate ``n`` images across ``n_classes`` templated classes.

        Per-class noise scales are drawn from ``[0.5 * noise, 1.5 * noise]``
        so some classes are visually crisp and others diffuse.  Pass an
        existing dataset's ``templates`` to generate a *different split of
        the same classes* (e.g. a training split for the classifier and a
        disjoint query corpus) — without it the two splits would depict
        entirely different class concepts.
        """
        if n <= 0 or n_classes <= 0:
            raise ConfigurationError("n and n_classes must be positive")
        generator = as_generator(rng)
        if templates is None:
            templates = np.stack(
                [_smooth_field(generator, side, channels)
                 for _ in range(n_classes)]
            )
        else:
            templates = np.asarray(templates, dtype=float)
            if templates.shape != (n_classes, side, side, channels):
                raise ConfigurationError(
                    f"templates shape {templates.shape} does not match "
                    f"({n_classes}, {side}, {side}, {channels})"
                )
        class_noise = generator.uniform(0.5 * noise, 1.5 * noise,
                                        size=n_classes)
        labels = generator.integers(0, n_classes, size=n)
        ids: List[str] = []
        images: List[np.ndarray] = []
        for i in range(n):
            label = int(labels[i])
            brightness = generator.uniform(0.6, 1.1)
            image = templates[label] * brightness
            image = image + generator.normal(0.0, class_noise[label],
                                             size=image.shape)
            images.append(np.clip(image, 0.0, 1.0))
            ids.append(f"img-{i:07d}")
        return cls(ids, images, np.asarray(labels, dtype=int), templates)

    @property
    def n_classes(self) -> int:
        """Number of class templates."""
        return len(self.templates)

    def train_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """(flattened images, labels) for classifier training."""
        return self.features(), self.labels
