"""Dataset substrates for the paper's three evaluation domains.

The paper evaluates on (1) synthetic normal mixtures, (2) the US Used Cars
tabular dataset, and (3) an ImageNet subset.  The public dumps are not
available offline, so (2) and (3) are replaced by schema- and
statistics-faithful synthetic generators (see DESIGN.md section 2 for the
substitution rationale); (1) is reimplemented exactly as described.
"""

from repro.data.dataset import Dataset, InMemoryDataset
from repro.data.synthetic import SyntheticClustersDataset
from repro.data.usedcars import (
    BOOLEAN_COLUMNS,
    FEATURE_COLUMNS,
    NUMERIC_COLUMNS,
    UsedCarsDataset,
)
from repro.data.images import SyntheticImageDataset

__all__ = [
    "Dataset",
    "InMemoryDataset",
    "SyntheticClustersDataset",
    "UsedCarsDataset",
    "FEATURE_COLUMNS",
    "BOOLEAN_COLUMNS",
    "NUMERIC_COLUMNS",
    "SyntheticImageDataset",
]
