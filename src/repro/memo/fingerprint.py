"""Structural fingerprints for opaque UDFs — the memo's cache key.

A cross-query score memo is only safe when its key captures *everything*
that determines a scorer's output.  The library never inspects a UDF's
semantics, but it can fingerprint the UDF's *structure*: the class, every
instance attribute, and — for plain functions and lambdas — the compiled
bytecode, constants, defaults, and captured closure cells.  Two scorers
with the same fingerprint compute the same function element-for-element;
a mutated parameter, a different constant, or a different code path
changes the digest and therefore keys a fresh memo shard.

:func:`udf_fingerprint` returns a 16-hex-character digest, or ``None``
when the scorer is *unfingerprintable* — some reachable attribute has no
stable structural identity (the telltale is a default ``repr`` carrying a
memory address).  ``None`` disables caching for that UDF instead of
risking a silently wrong hit; the session degrades gracefully
(``ExecutionPlan.cache_enabled`` is ``False`` and ``EXPLAIN`` says so).

Stability contract
------------------
* Deterministic within one interpreter: re-registering a structurally
  identical scorer (same source, same parameters) always reproduces the
  digest, so repeat traffic hits.
* Sensitive to parameters: fingerprints are recomputed at *plan* time,
  so mutating ``scorer.threshold = 2.0`` between queries invalidates the
  memo rather than serving stale scores.
* **Not** stable across Python versions (bytecode changes) — fingerprints
  key in-process memo stores, never on-disk artefacts shared between
  interpreters.  The version salt below also lets the fold itself evolve.

The randomized suite in ``tests/test_memo_fingerprint.py`` pins the
no-collision / always-hit / mutation-invalidates properties.
"""

from __future__ import annotations

import hashlib
import types
from typing import Any, Optional

import numpy as np

#: Version salt: bump to invalidate every fingerprint when the fold changes.
_VERSION = "repro-fp/1"

#: Recursion ceiling for attribute/container traversal.
_MAX_DEPTH = 10


class _Unfingerprintable(Exception):
    """Raised internally when a value has no stable structural identity."""


def _looks_like_address_repr(value: Any) -> bool:
    """True when ``repr(value)`` is the default ``<... at 0x...>`` form.

    Such reprs embed the object's memory address: two structurally equal
    instances would fingerprint differently run to run, which would turn
    every repeat query into a miss *silently*.  Treating them as
    unfingerprintable surfaces the problem as "caching disabled" instead.
    """
    text = repr(value)
    return text.startswith("<") and " at 0x" in text


def _fold(digest: "hashlib._Hash", value: Any, depth: int,
          seen: set) -> None:
    """Fold one value into the digest, tagged by type to avoid confusion."""
    if depth > _MAX_DEPTH:
        raise _Unfingerprintable("attribute graph too deep")
    if value is None or isinstance(value, (bool, int, float, complex,
                                           str, bytes)):
        digest.update(f"{type(value).__name__}:{value!r};".encode())
        return
    if isinstance(value, np.ndarray):
        digest.update(
            f"ndarray:{value.shape}:{value.dtype.str};".encode()
        )
        digest.update(np.ascontiguousarray(value).tobytes())
        return
    if isinstance(value, np.generic):
        digest.update(f"npscalar:{value.dtype.str}:{value!r};".encode())
        return
    marker = id(value)
    if marker in seen:
        digest.update(b"cycle;")
        return
    seen = seen | {marker}
    if isinstance(value, (list, tuple)):
        digest.update(f"{type(value).__name__}:{len(value)}[".encode())
        for item in value:
            _fold(digest, item, depth + 1, seen)
        digest.update(b"];")
        return
    if isinstance(value, (set, frozenset)):
        digest.update(f"set:{len(value)}[".encode())
        for item in sorted(value, key=repr):
            _fold(digest, item, depth + 1, seen)
        digest.update(b"];")
        return
    if isinstance(value, dict):
        digest.update(f"dict:{len(value)}{{".encode())
        for key in sorted(value, key=repr):
            _fold(digest, key, depth + 1, seen)
            _fold(digest, value[key], depth + 1, seen)
        digest.update(b"};")
        return
    if isinstance(value, types.CodeType):
        digest.update(b"code:")
        digest.update(value.co_code)
        digest.update(f":{value.co_argcount}:{value.co_names};".encode())
        for const in value.co_consts:
            _fold(digest, const, depth + 1, seen)
        return
    if isinstance(value, (types.FunctionType, types.LambdaType)):
        digest.update(
            f"function:{value.__module__}:{value.__qualname__};".encode()
        )
        _fold(digest, value.__code__, depth + 1, seen)
        _fold(digest, value.__defaults__, depth + 1, seen)
        _fold(digest, value.__kwdefaults__, depth + 1, seen)
        if value.__closure__ is not None:
            for cell in value.__closure__:
                try:
                    contents = cell.cell_contents
                except ValueError:  # empty cell
                    contents = None
                _fold(digest, contents, depth + 1, seen)
        return
    if isinstance(value, (types.BuiltinFunctionType, np.ufunc)):
        module = getattr(value, "__module__", None) or "builtins"
        name = getattr(value, "__name__", repr(value))
        digest.update(f"builtin:{module}:{name};".encode())
        return
    if isinstance(value, types.MethodType):
        digest.update(b"method:")
        _fold(digest, value.__func__, depth + 1, seen)
        _fold(digest, value.__self__, depth + 1, seen)
        return
    if isinstance(value, type):
        digest.update(
            f"class:{value.__module__}:{value.__qualname__};".encode()
        )
        return
    # A scorer (or any attribute) may define __fingerprint_state__ to
    # substitute its semantic identity for its raw attribute dict — e.g.
    # CountingScorer delegates to the scorer it wraps, so its mutable
    # call counters never invalidate the memo of the function it counts.
    hook = getattr(value, "__fingerprint_state__", None)
    if callable(hook):
        _fold(digest, hook(), depth + 1, seen)
        return
    # Generic object: identify by class, then by every instance attribute
    # (sorted, so dict insertion order never matters).
    cls = type(value)
    state = getattr(value, "__dict__", None)
    if state is None and hasattr(value, "__slots__"):
        state = {slot: getattr(value, slot)
                 for slot in cls.__slots__ if hasattr(value, slot)}
    if state is None:
        # No structural state to walk — the repr is all we have; reject
        # the address-bearing default repr (unstable across runs).
        if _looks_like_address_repr(value):
            raise _Unfingerprintable(
                f"{cls.__name__} has no stable structural identity"
            )
        digest.update(f"opaque:{value!r};".encode())
        return
    digest.update(f"object:{cls.__module__}:{cls.__qualname__};".encode())
    for name in sorted(state):
        digest.update(f"attr:{name}=".encode())
        _fold(digest, state[name], depth + 1, seen)


def udf_fingerprint(scorer: Any) -> Optional[str]:
    """Structural fingerprint of a scorer, or ``None`` if it has none.

    The digest covers the scorer's class, its full (recursive) instance
    state — parameters, latency model, wrapped callables with their
    bytecode, defaults, and closure values — and numpy array contents.
    ``None`` means some reachable attribute is unfingerprintable and the
    memo must stay off for this UDF (never silently wrong).
    """
    digest = hashlib.sha256(_VERSION.encode())
    try:
        _fold(digest, scorer, 0, set())
    except _Unfingerprintable:
        return None
    return digest.hexdigest()[:16]
