"""Cross-query learning: score memo, UDF fingerprints, warm-start priors.

Production traffic against a registered table is repetitive — the same
UDFs, overlapping ``WHERE`` subsets.  This package turns that repetition
into savings on two independent axes:

* **Score memo** (:class:`MemoStore` / :class:`MemoView`): scores keyed
  by ``(udf fingerprint, element id)``, so no element is ever scored
  twice across queries.  Hits are *transparent* — engine accounting is
  identical to a cold run, so memoized answers are bit-identical by
  construction (the differential matrix in ``tests/test_score_memo.py``
  is the proof).
* **Warm-start priors** (:class:`PriorStore`, :func:`harvest_priors`,
  :func:`apply_priors`): per-node histogram posteriors carried across
  runs on the same ``(table, udf)`` pair — opt-in, deterministic, and
  deliberately *not* bit-identical (a smarter start changes the run).

:func:`udf_fingerprint` is the key-maker: a structural digest of the
scorer (class, parameters, bytecode, closures) that never collides for
structurally distinct scorers and invalidates on parameter mutation.
``None`` (unfingerprintable) disables caching for that UDF — a cache
that cannot prove its key is off, never silently wrong.

See ``docs/caching.md`` for the user guide and invalidation rules.
"""

from repro.memo.fingerprint import udf_fingerprint
from repro.memo.priors import (
    PriorStore,
    apply_priors,
    harvest_priors,
    shard_scope,
    single_scope,
)
from repro.memo.store import MemoStore, MemoView

__all__ = [
    "udf_fingerprint",
    "MemoStore",
    "MemoView",
    "PriorStore",
    "harvest_priors",
    "apply_priors",
    "single_scope",
    "shard_scope",
]
