"""Cross-query score memo: per-table store, per-UDF views, write-back.

One :class:`MemoStore` maps to one immutable registered table.  Inside
it, scores are keyed by ``(udf fingerprint, element id)`` — the
fingerprint (:mod:`repro.memo.fingerprint`) isolates UDFs from each
other, the element id is the table's own identity — so no element is
ever scored twice across queries against the same ``(table, udf)``
pair, whatever engine or backend ran them.

The store is concurrency-safe (one re-entrant lock guards every read
and write): inline shard workers on the ``thread`` backend may consult
it from many threads, and a future multi-tenant session will share one
store across concurrent queries.  Process children never touch it —
they receive a frozen per-shard dict in their
:class:`~repro.parallel.worker.ShardSpec` and report fresh scores back
through :attr:`~repro.parallel.worker.RoundOutcome.fresh_scores`, which
the coordinator records at merge time (children stay read-only).

Transparency contract (the bit-identity backbone, pinned by
``tests/test_score_memo.py``): a memo hit replaces only the *real UDF
invocation*.  Engine accounting — draws, RNG consumption, ``n_scored``,
and the virtual-clock charge of the full ``batch_cost`` — is identical
to a cold run, so cached answers are bit-identical by construction and
the savings appear where they are real: UDF call counts and wall clock.
This also requires UDFs to be *element-wise pure*: an element's score
must not depend on its batch-mates (every scorer in
:mod:`repro.scoring` qualifies).

Live tables add a version dimension.  The store tracks, per element id,
the latest ``table_version`` that rewrote the element's features
(:meth:`MemoStore.apply_writes` — called by the session when it
reconciles a mutable table's write log).  A write both evicts the
element's memoized scores and stamps ``last_write[id]``; from then on a
reader pinned to an *older* snapshot can neither be served a score
computed against the newer features (its lookups miss) nor poison the
store with a score computed against the older ones (its records are
dropped).  Memo hits are therefore only ever served for the table
version that produced them.  Appends of brand-new ids evict nothing, so
standing queries keep every hit for unchanged elements.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SerializationError

_FORMAT = "repro-memo/1"


class MemoStore:
    """Thread-safe score memo for one table, keyed by UDF fingerprint."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        #: fingerprint -> {element id -> score}
        self._scores: Dict[str, Dict[str, float]] = {}
        #: element id -> latest table_version that rewrote its features
        self._last_write: Dict[str, int] = {}
        #: highest table_version reconciled into this store
        self.table_version = 0
        self.hits = 0
        self.misses = 0

    # -- views ---------------------------------------------------------------

    def view(self, fingerprint: str,
             reader_version: Optional[int] = None) -> "MemoView":
        """The per-UDF view the engines consume (creates the shard lazily).

        ``reader_version`` pins the view to one table snapshot: lookups
        miss on (and records are dropped for) any element rewritten
        after that version.  ``None`` means the table is immutable.
        """
        with self._lock:
            self._scores.setdefault(fingerprint, {})
        return MemoView(self, fingerprint, reader_version=reader_version)

    # -- live-table reconciliation -------------------------------------------

    def apply_writes(self, changed_ids: Iterable[str], version: int) -> None:
        """Fold one committed write batch into the store.

        Evicts every memoized score for ``changed_ids`` (a no-op for
        brand-new ids) and stamps their last-write version, so stale
        snapshots can neither hit on nor re-record those elements.
        """
        version = int(version)
        with self._lock:
            for element_id in changed_ids:
                element_id = str(element_id)
                for shard in self._scores.values():
                    shard.pop(element_id, None)
                self._last_write[element_id] = version
            if version > self.table_version:
                self.table_version = version

    def _valid_for(self, element_id: str,
                   reader_version: Optional[int]) -> bool:
        if reader_version is None:
            return True
        return self._last_write.get(element_id, 0) <= reader_version

    # -- introspection -------------------------------------------------------

    def fingerprints(self) -> List[str]:
        """Fingerprints with at least one memoized score."""
        with self._lock:
            return [fp for fp, shard in self._scores.items() if shard]

    def n_entries(self, fingerprint: Optional[str] = None) -> int:
        """Memoized scores for one fingerprint (or across all of them)."""
        with self._lock:
            if fingerprint is not None:
                return len(self._scores.get(fingerprint, ()))
            return sum(len(shard) for shard in self._scores.values())

    def expected_hit_rate(self, fingerprint: str,
                          ids: Optional[Sequence[str]] = None,
                          n_candidates: Optional[int] = None) -> float:
        """Fraction of the candidate set already memoized for this UDF.

        With an explicit ``ids`` subset (``WHERE`` pushdown) the overlap
        is counted exactly; otherwise ``n_candidates`` scales the shard's
        size.  This is what ``EXPLAIN`` reports — an upper bound on the
        run's actual hit rate, since a budgeted run may not draw every
        memoized element.
        """
        with self._lock:
            shard = self._scores.get(fingerprint)
            if not shard:
                return 0.0
            if ids is not None:
                if not ids:
                    return 0.0
                return sum(1 for element_id in ids
                           if element_id in shard) / len(ids)
            if not n_candidates:
                return 0.0
            return min(1.0, len(shard) / n_candidates)

    def stats(self) -> Dict[str, object]:
        """Counters snapshot: hits, misses, entries, per-UDF shard sizes."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": sum(len(s) for s in self._scores.values()),
                "udfs": {fp: len(shard)
                         for fp, shard in self._scores.items() if shard},
            }

    def count(self, hits: int, misses: int) -> None:
        """Fold externally observed hits/misses into the counters.

        Shard workers consult a *frozen copy* of the memo (never this
        store), so the coordinator reports their hit/miss totals here at
        merge time to keep ``stats()`` meaningful across backends.
        """
        with self._lock:
            self.hits += int(hits)
            self.misses += int(misses)

    def clear(self) -> None:
        """Drop every memoized score (counters are kept)."""
        with self._lock:
            self._scores.clear()

    # -- persistence ---------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe payload of every memoized score."""
        with self._lock:
            payload = {
                "format": _FORMAT,
                "scores": {fp: dict(shard)
                           for fp, shard in self._scores.items() if shard},
            }
            if self.table_version:
                payload["table_version"] = self.table_version
            if self._last_write:
                payload["last_write"] = dict(self._last_write)
            return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "MemoStore":
        """Rebuild a store from :meth:`to_dict` output."""
        if payload.get("format") != _FORMAT:
            raise SerializationError(
                f"unrecognized memo format {payload.get('format')!r}"
            )
        store = cls()
        for fingerprint, shard in payload.get("scores", {}).items():
            store._scores[str(fingerprint)] = {
                str(element_id): float(score)
                for element_id, score in shard.items()
            }
        store.table_version = int(payload.get("table_version", 0))
        store._last_write = {
            str(element_id): int(version)
            for element_id, version in payload.get("last_write", {}).items()
        }
        return store

    # -- internal (MemoView plumbing) ----------------------------------------

    def _lookup(self, fingerprint: str, ids: Sequence[str],
                reader_version: Optional[int] = None,
                ) -> Tuple[List[Optional[float]], List[int]]:
        with self._lock:
            shard = self._scores.get(fingerprint, {})
            if reader_version is None or not self._last_write:
                scores: List[Optional[float]] = [shard.get(element_id)
                                                 for element_id in ids]
            else:
                scores = [shard.get(element_id)
                          if self._valid_for(element_id, reader_version)
                          else None
                          for element_id in ids]
            misses = [position for position, value in enumerate(scores)
                      if value is None]
            self.hits += len(ids) - len(misses)
            self.misses += len(misses)
            return scores, misses

    def _record(self, fingerprint: str,
                pairs: Iterable[Tuple[str, float]],
                reader_version: Optional[int] = None) -> None:
        with self._lock:
            shard = self._scores.setdefault(fingerprint, {})
            for element_id, score in pairs:
                if self._valid_for(element_id, reader_version):
                    shard[element_id] = float(score)

    def _snapshot(self, fingerprint: str,
                  reader_version: Optional[int] = None) -> Dict[str, float]:
        with self._lock:
            shard = self._scores.get(fingerprint, ())
            if reader_version is None or not self._last_write:
                return dict(shard)
            return {element_id: score
                    for element_id, score in shard.items()
                    if self._valid_for(element_id, reader_version)}


class MemoView:
    """A :class:`MemoStore` bound to one UDF fingerprint.

    This is the object the engines thread through execution: it exposes
    exactly the lookup / record / snapshot surface a coordinator needs
    and nothing else, so an engine can never cross UDF shards.
    """

    def __init__(self, store: MemoStore, fingerprint: str,
                 reader_version: Optional[int] = None) -> None:
        self.store = store
        self.fingerprint = str(fingerprint)
        #: Table snapshot this view reads/writes against (None = immutable).
        self.reader_version = reader_version

    def __len__(self) -> int:
        return self.store.n_entries(self.fingerprint)

    def lookup(self, ids: Sequence[str],
               ) -> Tuple[List[Optional[float]], List[int]]:
        """``(scores-with-None-at-misses, miss positions)`` for a batch."""
        return self.store._lookup(self.fingerprint, ids,
                                  self.reader_version)

    def record(self, ids: Sequence[str],
               scores: Sequence[float]) -> None:
        """Memoize freshly computed scores (id-aligned)."""
        values = np.asarray(scores, dtype=float).reshape(-1).tolist()
        self.store._record(self.fingerprint, zip(ids, values),
                           self.reader_version)

    def record_pairs(self, pairs: Iterable[Tuple[str, float]]) -> None:
        """Memoize ``(id, score)`` pairs — the coordinator write-back."""
        self.store._record(self.fingerprint, pairs, self.reader_version)

    def count(self, hits: int, misses: int) -> None:
        """Report shard-observed hit/miss totals (coordinator write-back)."""
        self.store.count(hits, misses)

    def snapshot(self) -> Dict[str, float]:
        """Frozen copy of this UDF's memo (what ships to shard specs)."""
        return self.store._snapshot(self.fingerprint, self.reader_version)

    def to_payload(self) -> dict:
        """JSON-safe ``(fingerprint, scores)`` payload for engine snapshots."""
        return {"fingerprint": self.fingerprint,
                "scores": self.snapshot()}

    @classmethod
    def from_payload(cls, payload: dict,
                     store: Optional[MemoStore] = None) -> "MemoView":
        """Rebuild a view (into ``store``, or a fresh standalone one)."""
        view = (store if store is not None else MemoStore()).view(
            str(payload["fingerprint"])
        )
        view.record_pairs(
            (str(element_id), float(score))
            for element_id, score in payload.get("scores", {}).items()
        )
        return view
