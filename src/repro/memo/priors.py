"""Warm-start priors: carry learned bandit state across queries.

The score memo (:mod:`repro.memo.store`) removes *repeat UDF calls*; this
module removes *repeat learning*.  After a run, every bandit node's
adaptive histogram summarizes what the engine learned about its
subtree's score distribution.  :func:`harvest_priors` captures those
histograms (JSON-safe, via
:meth:`~repro.core.histogram.AdaptiveHistogram.to_dict`);
:func:`apply_priors` preloads them into a fresh engine before its first
draw, so the epsilon-greedy descent starts from yesterday's posterior
instead of uniform ignorance — the grown-up version of the
incremental-mean warm start in SNIPPETS.md's EpsilonGreedy.

:class:`PriorStore` is the per-table registry, keyed by
``(udf fingerprint, scope)``.  The *scope* pins everything that shapes
node identity and content: the single-engine scope embeds the WHERE
subset fingerprint (a restricted tree keeps node ids but changes leaf
membership), and shard scopes embed worker id, worker count, root
entropy, and subset — priors never cross structurally different trees.

**Warm-starting is opt-in and is NOT bit-identical** — that is its
point: preloaded histograms steer the very first descents, so a
warm-started run explores differently (usually better) than a cold one.
The bit-identity guarantee of the differential matrix covers the score
memo only; ``warm_start=True`` trades exact reproducibility for a
smarter start, deterministically (same priors + same seed = same run).
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.errors import SerializationError

_FORMAT = "repro-priors/1"


def harvest_priors(engine) -> Dict[str, dict]:
    """``{node id -> histogram payload}`` for every node of a run engine.

    Only the default :class:`~repro.core.histogram.AdaptiveHistogram`
    sketch serializes; custom sketch factories yield an empty harvest
    (warm-start silently unavailable, never wrong).
    """
    from repro.core.histogram import AdaptiveHistogram

    payload: Dict[str, dict] = {}

    def walk(node) -> None:
        if isinstance(node.histogram, AdaptiveHistogram):
            payload[node.node_id] = node.histogram.to_dict()
        for child in node.children:
            walk(child)

    walk(engine.policy.root)
    return payload


def apply_priors(engine, priors: Dict[str, dict]) -> int:
    """Preload harvested histograms into a fresh engine; returns #applied.

    Nodes are matched by id; ids missing from ``priors`` (or vice versa)
    are skipped, so priors harvested before a fallback flatten still
    apply to whatever structure both trees share.  Call before the first
    ``next_batch()`` — preloading after draws would double-count mass.
    """
    from repro.core.histogram import AdaptiveHistogram
    from repro.errors import ConfigurationError

    if engine.n_scored or engine.t_batches:
        raise ConfigurationError(
            "warm-start priors must be applied before the first draw"
        )
    applied = 0

    def walk(node) -> None:
        nonlocal applied
        payload = priors.get(node.node_id)
        if payload is not None:
            node.histogram = AdaptiveHistogram.from_dict(payload)
            applied += 1
        for child in node.children:
            walk(child)

    walk(engine.policy.root)
    return applied


def single_scope(subset: str = "") -> str:
    """Prior scope of a single-engine run (WHERE subset included)."""
    return f"single:{subset}"


def shard_scope(worker_id: int, n_workers: int, root_entropy: int,
                subset: str = "") -> str:
    """Prior scope of one shard: everything that shapes its local tree."""
    return f"shard:{worker_id}:{n_workers}:{root_entropy}:{subset}"


class PriorStore:
    """Thread-safe per-table registry of harvested histogram priors."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        #: (fingerprint, scope) -> {node id -> histogram payload}
        self._priors: Dict[tuple, Dict[str, dict]] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._priors)

    def get(self, fingerprint: str,
            scope: str) -> Optional[Dict[str, dict]]:
        """Priors for one ``(udf, scope)`` pair, or ``None``."""
        with self._lock:
            return self._priors.get((str(fingerprint), str(scope)))

    def put(self, fingerprint: str, scope: str,
            priors: Dict[str, dict]) -> None:
        """Store (replace) the harvest of one finished run."""
        if not priors:
            return
        with self._lock:
            self._priors[(str(fingerprint), str(scope))] = dict(priors)

    def clear(self) -> None:
        """Drop every stored prior."""
        with self._lock:
            self._priors.clear()

    def drop_nodes(self, node_ids) -> int:
        """Dirty specific tree nodes: remove their histograms everywhere.

        Incremental index maintenance reports which nodes' membership a
        write batch touched; their stored posteriors now describe a
        different subtree, so the session drops exactly those (across
        every ``(udf, scope)`` payload) and keeps the rest warm.
        Payloads emptied by the drop are removed.  Returns the number of
        node histograms dropped.
        """
        doomed = {str(node_id) for node_id in node_ids}
        if not doomed:
            return 0
        dropped = 0
        with self._lock:
            for key in list(self._priors):
                nodes = self._priors[key]
                hit = doomed.intersection(nodes)
                for node_id in hit:
                    del nodes[node_id]
                dropped += len(hit)
                if not nodes:
                    del self._priors[key]
        return dropped

    def to_dict(self) -> dict:
        """JSON-safe payload of every stored prior."""
        with self._lock:
            return {
                "format": _FORMAT,
                "priors": [
                    {"fingerprint": fingerprint, "scope": scope,
                     "nodes": dict(nodes)}
                    for (fingerprint, scope), nodes in self._priors.items()
                ],
            }

    @classmethod
    def from_dict(cls, payload: dict) -> "PriorStore":
        """Rebuild a store from :meth:`to_dict` output."""
        if payload.get("format") != _FORMAT:
            raise SerializationError(
                f"unrecognized priors format {payload.get('format')!r}"
            )
        store = cls()
        for entry in payload.get("priors", ()):
            store.put(entry["fingerprint"], entry["scope"],
                      entry["nodes"])
        return store
