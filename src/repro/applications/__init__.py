"""Further applications of the top-k bandit (Section 7.1 of the paper).

The bandit's analysis is generic over any partition of a search domain into
arms, so beyond the k-means index it applies to classic database indexes
(see :mod:`repro.index.btree`) and to *data acquisition*: selecting the most
valuable points to label/acquire from a union of heterogeneous data sources,
where the scoring function measures training value (e.g., proximity to a
model's decision boundary).
"""

from repro.applications.acquisition import (
    AcquisitionReport,
    DataSourceUnion,
    UncertaintyScorer,
    acquire_topk,
)

__all__ = [
    "DataSourceUnion",
    "UncertaintyScorer",
    "acquire_topk",
    "AcquisitionReport",
]
