"""High-priority data acquisition over a union of data sources.

Section 7.1: "Another potential application is high-priority data
acquisition over a union of heterogeneous data sources for model
improvement.  The scoring function could be proximity to decision boundary,
data difficulty, etc."

Here each *data source* (a vendor feed, a crawl, a warehouse partition) is
one arm of the top-k bandit; the opaque scorer values each candidate point
for model improvement; and the answer is the budget-bounded set of points
worth acquiring.  Sources differ in quality, so the bandit concentrates
acquisition on the sources whose score distributions have fat upper tails —
without scoring every candidate in every source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import EngineConfig, TopKEngine
from repro.data.dataset import Dataset
from repro.errors import ConfigurationError
from repro.index.tree import ClusterNode, ClusterTree
from repro.scoring.base import LatencyModel, Scorer, ZeroLatency


class DataSourceUnion(Dataset):
    """A union of named data sources, each holding (id, object, features).

    Element IDs are namespaced as ``{source}/{local_id}`` so provenance is
    recoverable from any query answer.
    """

    def __init__(self) -> None:
        self._sources: Dict[str, List[str]] = {}
        self._objects: Dict[str, Any] = {}
        self._features: Dict[str, np.ndarray] = {}

    def add_source(self, name: str, local_ids: Sequence[str],
                   objects: Sequence[Any],
                   features: Optional[np.ndarray] = None) -> None:
        """Register one source's candidates."""
        if name in self._sources:
            raise ConfigurationError(f"source {name!r} already registered")
        if "/" in name:
            raise ConfigurationError("source names must not contain '/'")
        if len(local_ids) != len(objects):
            raise ConfigurationError(
                f"{len(local_ids)} ids for {len(objects)} objects"
            )
        if not local_ids:
            raise ConfigurationError(f"source {name!r} is empty")
        namespaced = [f"{name}/{local}" for local in local_ids]
        if features is None:
            feature_rows = [np.zeros(1) for _ in namespaced]
        else:
            features = np.asarray(features, dtype=float)
            if len(features) != len(namespaced):
                raise ConfigurationError("features misaligned with ids")
            feature_rows = list(features)
        for element_id, obj, row in zip(namespaced, objects, feature_rows):
            if element_id in self._objects:
                raise ConfigurationError(f"duplicate id {element_id!r}")
            self._objects[element_id] = obj
            self._features[element_id] = np.asarray(row, dtype=float)
        self._sources[name] = namespaced

    @property
    def source_names(self) -> List[str]:
        """Registered source names."""
        return list(self._sources)

    def ids(self) -> List[str]:
        return [eid for ids in self._sources.values() for eid in ids]

    def fetch(self, element_id: str) -> Any:
        try:
            return self._objects[element_id]
        except KeyError:
            raise ConfigurationError(f"unknown element id {element_id!r}") from None

    def features(self) -> np.ndarray:
        return np.stack([self._features[eid] for eid in self.ids()])

    def source_of(self, element_id: str) -> str:
        """Provenance: the source a (namespaced) element came from."""
        return element_id.split("/", 1)[0]

    def as_cluster_tree(self) -> ClusterTree:
        """One bandit arm per source (a flat index over the union)."""
        if not self._sources:
            raise ConfigurationError("no sources registered")
        children = [
            ClusterNode(f"source-{name}", member_ids=tuple(ids))
            for name, ids in self._sources.items()
        ]
        return ClusterTree(ClusterNode("root", children=children))


class UncertaintyScorer(Scorer):
    """Acquisition value = proximity to a binary model's decision boundary.

    ``score(x) = 1 - |2 P(y=1|x) - 1|`` — maximal (1.0) on the boundary,
    zero where the model is already certain.  Any model exposing
    ``predict_proba(matrix) -> (n,)`` or ``(n, 2)`` works (e.g.
    :class:`repro.scoring.linear.LogisticRegressionModel`).
    """

    def __init__(self, model: Any, latency: LatencyModel | None = None) -> None:
        self.model = model
        self.latency = latency or ZeroLatency()

    def _proba(self, matrix: np.ndarray) -> np.ndarray:
        probs = np.asarray(self.model.predict_proba(matrix), dtype=float)
        if probs.ndim == 2:
            probs = probs[:, -1]
        return probs

    def score(self, obj: Any) -> float:
        matrix = np.asarray(obj, dtype=float).reshape(1, -1)
        return float(1.0 - abs(2.0 * self._proba(matrix)[0] - 1.0))

    def score_batch(self, objects: Sequence[Any]) -> np.ndarray:
        matrix = np.stack([np.asarray(obj, dtype=float).ravel()
                           for obj in objects])
        return 1.0 - np.abs(2.0 * self._proba(matrix) - 1.0)


@dataclass
class AcquisitionReport:
    """Outcome of one acquisition round."""

    acquired_ids: List[str]
    scores: List[float]
    per_source_counts: Dict[str, int]
    n_scored: int

    def summary(self) -> str:
        sources = ", ".join(
            f"{name}: {count}"
            for name, count in sorted(self.per_source_counts.items())
        )
        return (
            f"acquired {len(self.acquired_ids)} points after scoring "
            f"{self.n_scored} candidates ({sources})"
        )


def acquire_topk(union: DataSourceUnion, scorer: Scorer, k: int,
                 budget: int, seed: Optional[int] = None,
                 config: Optional[EngineConfig] = None) -> AcquisitionReport:
    """Select the ``k`` most valuable points from the union within budget.

    Runs the top-k bandit with one arm per source; returns the acquired
    points with per-source provenance counts.
    """
    if config is None:
        config = EngineConfig(k=k, seed=seed)
    elif config.k != k:
        raise ConfigurationError("config.k must match k")
    engine = TopKEngine(union.as_cluster_tree(), config)
    result = engine.run(union, scorer, budget=budget)
    counts: Dict[str, int] = {name: 0 for name in union.source_names}
    for element_id in result.ids:
        counts[union.source_of(element_id)] += 1
    return AcquisitionReport(
        acquired_ids=result.ids,
        scores=result.scores,
        per_source_counts=counts,
        n_scored=result.n_scored,
    )
