"""End-to-end opaque top-k query engine — Algorithm 1 over the index.

:class:`TopKEngine` composes the hierarchical epsilon-greedy policy, the
cardinality-constrained priority queue, batched execution (Section 3.2.5),
and the fallback controller (Section 3.2.3) into the full workflow of
Example 3.1:

1. initialize an empty histogram for every tree node and a priority queue
   with capacity ``k``;
2. each iteration, pick a leaf by per-layer epsilon-greedy descent;
3. draw a (batch of) sample(s) from the leaf and apply the opaque UDF;
4. update the priority queue and the histograms of the leaf and all its
   ancestors (with the re-binning rules of Section 3.2.4);
5. after a warmup, periodically check the failure conditions and fall back
   to a flat index or a uniform scan over the remaining elements;
6. stop any time and read the priority queue.

The engine exposes two equivalent driving styles:

* ``next_batch()`` / ``observe(ids, scores)`` — the *pull* interface the
  experiment harness uses, so that the scoring/latency accounting lives in
  one place for every algorithm;
* ``run(dataset, scorer, ...)`` — the standalone anytime loop a library
  user calls, which also records quality checkpoints.

Hot-path invariants (vectorized engine)
---------------------------------------
Per-element engine overhead is O(depth · B) with numpy inner kernels:

* ``exhausted`` and the per-descent candidate filters read the policy's
  incremental ``remaining`` counters (owned by the arms via their
  ``on_draw`` hook — see :mod:`repro.core.hierarchical`), never rescanning
  leaves.
* ``observe`` folds the whole batch with **one** root-to-leaf path walk per
  touched leaf (``HierarchicalBanditPolicy.update_batch`` →
  ``AdaptiveHistogram.add_batch``) instead of one walk per element; the
  priority-queue offers stay per-element so the threshold evolves exactly
  as in Algorithm 1, and the path update uses the post-batch threshold.
* Gain estimates are served from per-histogram ``(threshold, gain)`` caches,
  dirtied only by histogram mutation (batch adds on the touched path,
  re-binning, drop subtraction) or threshold movement, and recomputed for
  all sibling candidates in one stacked vectorized pass.

At ``batch_size=1`` every one of these paths degenerates to the original
scalar behaviour: same seeds produce the same draws and the same results
(pinned by ``tests/test_engine_equivalence.py``).

These invariants, and the shard/coordinator protocol that runs many
engines in parallel, are documented normatively in
``docs/architecture.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.core.bandit import BanditConfig
from repro.core.fallback import FallbackConfig, FallbackController, FallbackDecision
from repro.core.hierarchical import BanditNode, HierarchicalBanditPolicy
from repro.core.minmax_heap import TopKBuffer
from repro.core.policies import ExplorationSchedule, PolynomialDecay
from repro.core.result import Checkpoint, QueryResult
from repro.errors import ConfigurationError, ExhaustedError
from repro.index.tree import ClusterTree
from repro.obs.metrics import MEMO_HITS_TOTAL, UDF_CALLS_TOTAL
from repro.obs.spans import TraceContext
from repro.utils.rng import RngFactory, SeedLike
from repro.utils.timer import Stopwatch, VirtualClock
from repro.utils.validation import check_positive_int


class SupportsFetch(Protocol):
    """Structural type for datasets: the paper's user-defined sampler."""

    def fetch_batch(self, ids: Sequence[str]) -> List[object]:
        """Materialize the elements for ``ids`` (arrays accepted for batching)."""


class SupportsScore(Protocol):
    """Structural type for scorers: the opaque UDF plus its latency model."""

    def score_batch(self, objects: Sequence[object]) -> np.ndarray:
        """Score a batch of elements; must return non-negative floats."""

    def batch_cost(self, batch_size: int) -> float:
        """Latency-model cost (seconds) of scoring one batch of this size."""


def _fully_funded(gate, needed: int) -> bool:
    """Draw ``needed`` UDF calls from a service budget gate, all or nothing.

    A partial grant is refunded immediately — the engines stop at a whole
    quantum boundary rather than score a fraction of a batch, which is what
    keeps a funded run bit-identical to an ungated one.
    """
    funded = gate.acquire(needed)
    if funded < needed:
        if funded:
            gate.refund(funded)
        return False
    return True


@dataclass
class EngineConfig:
    """All knobs of Algorithm 1 plus engine-level execution settings.

    Defaults are the paper's: ``B=8``, ``alpha=0.1``, ``beta=1.1``,
    ``F=0.01``, warmup 30%, exploration ``t^(-1/3)``, batch size 1.
    """

    k: int = 10
    n_bins: int = 8
    initial_range: float = 0.1
    beta: float = 1.1
    batch_size: int = 1
    exploration: ExplorationSchedule = field(default_factory=PolynomialDecay)
    per_layer_exploration: bool = False
    enable_rebinning: bool = True
    enable_subtraction: bool = True
    visit_unvisited_first: bool = True
    sketch_factory: Optional[Callable] = None
    fallback: FallbackConfig = field(default_factory=FallbackConfig)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        check_positive_int(self.k, "k")
        check_positive_int(self.batch_size, "batch_size")

    def bandit_config(self) -> BanditConfig:
        """Project the histogram/exploration settings for the policy."""
        return BanditConfig(
            n_bins=self.n_bins,
            initial_range=self.initial_range,
            beta=self.beta,
            enable_rebinning=self.enable_rebinning,
            exploration=self.exploration,
            visit_unvisited_first=self.visit_unvisited_first,
            sketch_factory=self.sketch_factory,
        )


class TopKEngine:
    """Anytime approximate top-k execution over a prebuilt cluster index.

    Parameters
    ----------
    index:
        The hierarchical (or flat) cluster tree.
    config:
        Engine configuration; paper defaults if omitted.
    scoring_latency_hint:
        Estimated per-element scoring latency in seconds, used by the
        clustering-fallback slope test before real measurements accumulate
        (the harness refreshes it from the scorer's latency model).
    """

    def __init__(self, index: ClusterTree, config: EngineConfig | None = None,
                 *, scoring_latency_hint: float = 2e-3) -> None:
        self.config = config or EngineConfig()
        factory = RngFactory(self.config.seed)
        self._rng = factory.named("engine")
        self.policy = HierarchicalBanditPolicy(
            index,
            self.config.bandit_config(),
            rng=factory.named("tree"),
            enable_subtraction=self.config.enable_subtraction,
        )
        self.buffer: TopKBuffer[str] = TopKBuffer(self.config.k)
        self.n_total = index.n_elements()
        self.fallback = FallbackController(self.config.fallback, self.n_total)
        self.scoring_latency_hint = float(scoring_latency_hint)
        self.overhead = Stopwatch()
        # Execution state.
        self.mode = "bandit"  # or "scan" after clustering fallback
        self._scan_queue: List[str] = []
        self._pending: List[Tuple[Optional[BanditNode], str]] = []
        self.t_batches = 0
        self.n_scored = 0
        self.n_explore = 0
        self.n_exploit = 0
        self.fallback_events: List[Tuple[int, str]] = []
        # Optional externally-imposed kick-out floor: a distributed
        # coordinator broadcasts the *global* k-th score so workers stop
        # chasing elements that can no longer enter the merged answer.
        self.threshold_floor: Optional[float] = None

    # -- read-only state ---------------------------------------------------------

    @property
    def stk(self) -> float:
        """Running Sum-of-Top-k."""
        return self.buffer.stk

    @property
    def threshold(self) -> float | None:
        """Current kick-out threshold ``(S)_(k)``."""
        return self.buffer.threshold

    @property
    def effective_threshold(self) -> float | None:
        """Local threshold, raised to any coordinator-broadcast floor.

        Used for gain estimation and fallback checks; the local buffer still
        accepts everything (merging stays correct), but the bandit targets
        only scores that can enter the *global* answer.
        """
        local = self.buffer.threshold
        if self.threshold_floor is None:
            return local
        if local is None:
            return self.threshold_floor
        return max(local, self.threshold_floor)

    @property
    def exhausted(self) -> bool:
        """True once every element has been (or is about to be) scored."""
        if self._pending:
            return False
        if self.mode == "scan":
            return not self._scan_queue
        return self.policy.exhausted

    def topk_items(self) -> List[Tuple[str, float]]:
        """Current (id, score) answer rows in descending score order."""
        return [(payload, score) for score, payload in self.buffer.items()]

    @property
    def bandit_latency_per_element(self) -> float:
        """Measured algorithm overhead per scored element (seconds)."""
        if self.n_scored == 0:
            return 0.0
        return self.overhead.elapsed / self.n_scored

    # -- pull interface -------------------------------------------------------------

    def next_batch(self) -> List[str]:
        """Choose the next batch of element IDs to fetch and score.

        In bandit mode this performs one epsilon-greedy descent and draws up
        to ``batch_size`` members from the selected leaf; in scan mode it
        pops from the pre-shuffled remainder.  Raises
        :class:`~repro.errors.ExhaustedError` when nothing is left.
        """
        if self._pending:
            raise ConfigurationError(
                "observe() must be called before the next next_batch()"
            )
        with self.overhead:
            batch = self._select_batch()
        return [element_id for _leaf, element_id in batch]

    def _select_batch(self) -> List[Tuple[Optional[BanditNode], str]]:
        size = self.config.batch_size
        if self.mode == "scan":
            if not self._scan_queue:
                raise ExhaustedError("scan queue exhausted")
            take = self._scan_queue[:size]
            del self._scan_queue[:size]
            self._pending = [(None, element_id) for element_id in take]
            return self._pending
        if self.policy.exhausted:
            raise ExhaustedError("all clusters exhausted")
        self.t_batches += 1
        epsilon = self.config.exploration.effective_rate(
            max(1, self.n_scored + 1), self.config.batch_size
        )
        explore_roll = self._rng.random() < epsilon
        if explore_roll:
            self.n_explore += 1
        else:
            self.n_exploit += 1
        leaf = self.policy.select_leaf(
            self.effective_threshold,
            epsilon=1.0 if explore_roll else 0.0,
            per_layer=self.config.per_layer_exploration,
        )
        assert leaf.arm is not None
        ids = leaf.arm.draw_batch(size)
        self._pending = [(leaf, element_id) for element_id in ids]
        return self._pending

    def observe(self, ids: Sequence[str], scores: Sequence[float]) -> float:
        """Report the scores for the batch returned by :meth:`next_batch`.

        Returns the total marginal STK gain of the batch.  Performs all of
        Algorithm 1's bookkeeping: priority-queue offers, histogram updates
        with re-binning, empty-leaf drops, and periodic fallback checks.
        """
        if len(ids) != len(self._pending):
            raise ConfigurationError(
                f"observe() got {len(ids)} ids for {len(self._pending)} pending"
            )
        if len(scores) != len(ids):
            raise ConfigurationError(
                f"observe() got {len(scores)} scores for {len(ids)} ids"
            )
        for (_leaf, expected_id), got_id in zip(self._pending, ids):
            if expected_id != got_id:
                raise ConfigurationError(
                    f"observe() ids out of order: expected {expected_id!r}, "
                    f"got {got_id!r}"
                )
        total_gain = 0.0
        with self.overhead:
            score_arr = np.asarray(scores, dtype=float).reshape(-1)
            if len(score_arr) and score_arr.min() < 0.0:
                bad = float(score_arr[score_arr < 0.0][0])
                raise ConfigurationError(
                    f"opaque scores must be non-negative, got {bad!r}"
                )
            # Per-element priority-queue offers: the threshold must evolve
            # within the batch exactly as in the scalar Algorithm 1 loop.
            # One pass also groups the scores by leaf (a bandit batch has one
            # leaf; scan batches have none) for the batched path update.
            by_leaf: dict = {}
            for (leaf, element_id), score in zip(self._pending,
                                                 score_arr.tolist()):
                total_gain += self.buffer.offer(score, element_id)
                if leaf is not None:
                    by_leaf.setdefault(leaf, []).append(score)
            self.n_scored += len(self._pending)
            threshold = self.effective_threshold
            for leaf, leaf_scores in by_leaf.items():
                self.policy.update_batch(
                    leaf, leaf_scores, threshold,
                    enable_rebinning=self.config.enable_rebinning,
                )
            for leaf in by_leaf:
                if leaf.arm is not None and leaf.arm.is_empty:
                    self.policy.handle_exhausted(leaf)
            self._pending = []
            if self.mode == "bandit" and self.fallback.should_check(self.n_scored):
                self._apply_fallback()
        return total_gain

    def _apply_fallback(self) -> None:
        decision = self.fallback.evaluate(
            self.policy,
            self.effective_threshold,
            scoring_latency=self.scoring_latency_hint,
            bandit_latency=self.bandit_latency_per_element,
        )
        if decision is FallbackDecision.FLATTEN_TREE:
            self.policy.flatten()
            self.fallback_events.append((self.n_scored, decision.value))
        elif decision is FallbackDecision.UNIFORM_SCAN:
            remaining = self.policy.remaining_ids()
            self._rng.shuffle(remaining)
            self._scan_queue = remaining
            self.mode = "scan"
            self.fallback_events.append((self.n_scored, decision.value))

    # -- standalone anytime loop -----------------------------------------------------

    def run(self, dataset: SupportsFetch, scorer: SupportsScore,
            budget: Optional[int] = None,
            checkpoint_every: Optional[int] = None,
            memo=None, trace: Optional[TraceContext] = None,
            gate=None) -> QueryResult:
        """Execute the query end to end and return the result with its trace.

        Parameters
        ----------
        dataset:
            Provides ``fetch_batch(ids)`` (the user-defined sampler).
        scorer:
            Provides ``score_batch(objects)`` and ``batch_cost(n)`` — the
            opaque UDF and its latency model.  Scoring latency is charged to
            a virtual clock; algorithm overhead is measured for real.
        budget:
            Maximum number of scoring calls (default: the whole dataset).
        checkpoint_every:
            Record a :class:`Checkpoint` after every this many scored
            elements (default: ~200 checkpoints across the budget).
        memo:
            Optional :class:`~repro.memo.store.MemoView`, the cross-query
            score memo for this ``(table, udf)`` pair.  A hit skips only
            the real UDF invocation — draws, RNG consumption, ``n_scored``
            and the virtual-clock charge stay exactly those of a cold run
            (the virtual clock models the UDF's latency *as if uncached*,
            which is what keeps memoized runs bit-identical; real savings
            show up in UDF call counts and measured wall clock).  Fresh
            scores are written back batch by batch.  Requires element-wise
            pure scorers (an element's score must not depend on its
            batch-mates).
        trace:
            Optional :class:`~repro.obs.spans.TraceContext`.  When given,
            the run records a ``run[single]`` span with one ``window[i]``
            child per checkpoint interval, charging virtual-clock,
            UDF-call, and memo-hit counters as it goes.  ``None`` (the
            default) keeps the loop's fast path untouched.
        gate:
            Optional :class:`~repro.service.budget.QueryGrant`-shaped
            budget gate (``acquire(n) -> int`` / ``refund(n)``).  Real
            UDF calls — and only those; memo hits are free — are drawn
            from it before scoring.  A fully funded query is granted
            every batch in full, so the gate never perturbs the run; a
            partial grant is refunded and the run stops early, exactly
            like exhausting its own ``budget``.  Cancellation surfaces
            here as :class:`~repro.errors.QueryCancelledError`.
        """
        limit = self.n_total if budget is None else min(budget, self.n_total)
        if checkpoint_every is None:
            checkpoint_every = max(1, limit // 200)
        clock = VirtualClock()
        checkpoints: List[Checkpoint] = []
        next_checkpoint = checkpoint_every
        self.scoring_latency_hint = scorer.batch_cost(self.config.batch_size) / max(
            1, self.config.batch_size
        )
        run_hits = 0
        scored_before = self.n_scored
        if trace is not None:
            window = 0
            trace.push("run[single]", budget=limit,
                       batch_size=self.config.batch_size)
            trace.push("window[0]")
        while self.n_scored < limit and not self.exhausted:
            ids = self.next_batch()
            if not ids:
                break
            if memo is None:
                if gate is not None and not _fully_funded(gate, len(ids)):
                    break
                scores = scorer.score_batch(dataset.fetch_batch(ids))
            else:
                scores, misses = memo.lookup(ids)
                if misses:
                    miss_ids = [ids[position] for position in misses]
                    if (gate is not None
                            and not _fully_funded(gate, len(miss_ids))):
                        break
                    fresh = np.asarray(
                        scorer.score_batch(dataset.fetch_batch(miss_ids)),
                        dtype=float,
                    ).reshape(-1)
                    for position, value in zip(misses, fresh.tolist()):
                        scores[position] = value
                    memo.record(miss_ids, fresh)
                run_hits += len(ids) - len(misses)
            cost = scorer.batch_cost(len(ids))
            clock.charge(cost)
            self.observe(ids, scores)
            if trace is not None:
                hits = (len(ids) - len(misses)) if memo is not None else 0
                trace.add(vclock=cost, scored=len(ids),
                          udf_calls=len(ids) - hits, memo_hits=hits)
            if self.n_scored >= next_checkpoint:
                checkpoints.append(
                    Checkpoint(
                        iteration=self.n_scored,
                        virtual_time=clock.now,
                        overhead_time=self.overhead.elapsed,
                        stk=self.stk,
                        threshold=self.threshold,
                    )
                )
                next_checkpoint += checkpoint_every
                if trace is not None:
                    trace.annotate(stk=self.stk, threshold=self.threshold)
                    trace.pop()
                    window += 1
                    trace.push(f"window[{window}]")
        if trace is not None:
            trace.annotate(stk=self.stk, threshold=self.threshold)
            trace.pop()          # the open window
            trace.annotate(mode=self.mode, n_batches=self.t_batches)
            trace.pop()          # run[single]
        fresh_calls = self.n_scored - scored_before - run_hits
        if fresh_calls:
            UDF_CALLS_TOTAL.inc(fresh_calls, engine="single")
        if run_hits:
            MEMO_HITS_TOTAL.inc(run_hits, engine="single")
        items = self.topk_items()
        return QueryResult(
            k=self.config.k,
            items=items,
            stk=self.stk,
            n_scored=self.n_scored,
            n_batches=self.t_batches,
            n_explore=self.n_explore,
            n_exploit=self.n_exploit,
            virtual_time=clock.now,
            overhead_time=self.overhead.elapsed,
            fallback_events=list(self.fallback_events),
            checkpoints=checkpoints,
            # Every candidate scored => the answer is exact and the
            # result's displacement_bound reads 0.0.
            exhausted=self.exhausted,
        )
