"""Exploration-rate schedules for the epsilon-greedy bandit.

Algorithm 1 explores a uniformly random arm with probability
``epsilon_t = t^(-1/3)`` — refining the empirical histogram estimates is most
valuable early, and the schedule's cumulative Theta(T^(2/3)) exploration
rounds are exactly the additive regret term of Theorem 4.4.  The batched
variant divides ``t`` by the batch size (Section 3.2.5), and the fixed-budget
discussion (Section 7.2) suggests front-loading Theta(T^(2/3)) exploration
rounds, implemented here as :class:`FrontLoadedExploration`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.utils.validation import check_fraction, check_positive


class ExplorationSchedule(ABC):
    """Maps the (effective) iteration count to an exploration probability."""

    @abstractmethod
    def rate(self, t: int) -> float:
        """Exploration probability at iteration ``t`` (1-based)."""

    def effective_rate(self, t: int, batch_size: int = 1) -> float:
        """Exploration rate with the batched correction of Section 3.2.5.

        "Batching complicates the exploration rate guarantees ... we find
        that dividing t by the batch size suffices."
        """
        effective_t = max(1, t // max(1, batch_size))
        return self.rate(effective_t)


class PolynomialDecay(ExplorationSchedule):
    """The paper's schedule: ``epsilon_t = t ** exponent`` (default -1/3)."""

    def __init__(self, exponent: float = -1.0 / 3.0) -> None:
        if exponent >= 0:
            raise ValueError(f"decay exponent must be negative, got {exponent!r}")
        self.exponent = float(exponent)

    def rate(self, t: int) -> float:
        if t < 1:
            return 1.0
        return min(1.0, float(t) ** self.exponent)

    def __repr__(self) -> str:
        return f"PolynomialDecay(exponent={self.exponent:.4g})"


class ConstantEpsilon(ExplorationSchedule):
    """Fixed exploration probability — an ablation/baseline schedule."""

    def __init__(self, epsilon: float) -> None:
        self.epsilon = check_fraction(epsilon, "epsilon")

    def rate(self, t: int) -> float:
        return self.epsilon

    def __repr__(self) -> str:
        return f"ConstantEpsilon({self.epsilon:.4g})"


class FrontLoadedExploration(ExplorationSchedule):
    """Explore with probability 1 for the first ``ceil(c * T^(2/3))`` rounds.

    The fixed-budget variant of Section 7.2: "batch all exploration at the
    beginning; the number of exploration rounds should be in the order of
    Theta(T^(2/3))."  Requires the budget ``T`` to be known up front.
    """

    def __init__(self, budget: int, c: float = 1.0) -> None:
        check_positive(budget, "budget")
        check_positive(c, "c")
        self.budget = int(budget)
        self.c = float(c)
        self.cutoff = max(1, int(round(c * budget ** (2.0 / 3.0))))

    def rate(self, t: int) -> float:
        return 1.0 if t <= self.cutoff else 0.0

    def __repr__(self) -> str:
        return f"FrontLoadedExploration(budget={self.budget}, c={self.c:.4g})"
