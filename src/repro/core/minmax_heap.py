"""Cardinality-constrained priority queue backed by a min-max heap.

Algorithm 1 maintains "a priority queue of the k highest scores seen so far
... implemented using a cardinality-constrained min-max heap" (Atkinson,
Sack, Santoro & Strothotte, CACM 1986).  :class:`MinMaxHeap` is a faithful
from-scratch implementation supporting O(log n) ``push`` / ``pop_min`` /
``pop_max`` and O(1) ``peek_min`` / ``peek_max``; :class:`TopKBuffer` is the
cardinality-constrained wrapper the bandit uses, which additionally tracks
the running STK incrementally.
"""

from __future__ import annotations

from typing import Any, Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.errors import ConfigurationError, EmptyStructureError

T = TypeVar("T")

# Heap entries are (score, sequence_number, payload); comparisons only ever
# touch the (score, sequence_number) prefix so payloads need not be ordered.
_Entry = Tuple[float, int, Any]


def _is_min_level(index: int) -> bool:
    """True iff 0-based ``index`` sits on a min level (even depth) of the heap."""
    return (index + 1).bit_length() % 2 == 1


class MinMaxHeap(Generic[T]):
    """A min-max heap on (score, payload) pairs.

    Min levels hold local minima of their subtrees and max levels local
    maxima, giving double-ended priority-queue behaviour from one array.
    Ties between equal scores are broken by insertion order (FIFO for the
    minimum side), which keeps the structure deterministic under seeding.
    """

    def __init__(self) -> None:
        self._heap: List[_Entry] = []
        self._seq = 0

    # -- basic container protocol ------------------------------------------

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __iter__(self) -> Iterator[Tuple[float, T]]:
        """Iterate over (score, payload) pairs in arbitrary (heap) order."""
        for score, _seq, payload in self._heap:
            yield score, payload

    # -- public operations --------------------------------------------------

    def push(self, score: float, payload: T = None) -> None:
        """Insert ``(score, payload)`` in O(log n)."""
        self._heap.append((float(score), self._seq, payload))
        self._seq += 1
        self._bubble_up(len(self._heap) - 1)

    def peek_min(self) -> Tuple[float, T]:
        """Return (but do not remove) the minimum entry."""
        if not self._heap:
            raise EmptyStructureError("peek_min on an empty MinMaxHeap")
        score, _seq, payload = self._heap[0]
        return score, payload

    def peek_max(self) -> Tuple[float, T]:
        """Return (but do not remove) the maximum entry."""
        index = self._max_index()
        score, _seq, payload = self._heap[index]
        return score, payload

    def pop_min(self) -> Tuple[float, T]:
        """Remove and return the minimum entry in O(log n)."""
        if not self._heap:
            raise EmptyStructureError("pop_min on an empty MinMaxHeap")
        return self._pop_at(0)

    def pop_max(self) -> Tuple[float, T]:
        """Remove and return the maximum entry in O(log n)."""
        return self._pop_at(self._max_index())

    # -- internals -----------------------------------------------------------

    def _max_index(self) -> int:
        if not self._heap:
            raise EmptyStructureError("peek_max on an empty MinMaxHeap")
        if len(self._heap) == 1:
            return 0
        if len(self._heap) == 2:
            return 1
        return 1 if self._heap[1][:2] > self._heap[2][:2] else 2

    def _pop_at(self, index: int) -> Tuple[float, T]:
        heap = self._heap
        entry = heap[index]
        last = heap.pop()
        if index < len(heap):
            heap[index] = last
            self._trickle_down(index)
        return entry[0], entry[2]

    def _bubble_up(self, index: int) -> None:
        if index == 0:
            return
        heap = self._heap
        parent = (index - 1) // 2
        if _is_min_level(index):
            if heap[index][:2] > heap[parent][:2]:
                heap[index], heap[parent] = heap[parent], heap[index]
                self._bubble_up_grand(parent, is_min=False)
            else:
                self._bubble_up_grand(index, is_min=True)
        else:
            if heap[index][:2] < heap[parent][:2]:
                heap[index], heap[parent] = heap[parent], heap[index]
                self._bubble_up_grand(parent, is_min=True)
            else:
                self._bubble_up_grand(index, is_min=False)

    def _bubble_up_grand(self, index: int, *, is_min: bool) -> None:
        heap = self._heap
        while index >= 3:
            grandparent = ((index - 1) // 2 - 1) // 2
            if is_min:
                if heap[index][:2] < heap[grandparent][:2]:
                    heap[index], heap[grandparent] = heap[grandparent], heap[index]
                    index = grandparent
                else:
                    break
            else:
                if heap[index][:2] > heap[grandparent][:2]:
                    heap[index], heap[grandparent] = heap[grandparent], heap[index]
                    index = grandparent
                else:
                    break

    def _descendants(self, index: int) -> Iterator[Tuple[int, bool]]:
        """Yield (position, is_grandchild) for children and grandchildren."""
        size = len(self._heap)
        for child in (2 * index + 1, 2 * index + 2):
            if child < size:
                yield child, False
                for grand in (2 * child + 1, 2 * child + 2):
                    if grand < size:
                        yield grand, True

    def _trickle_down(self, index: int) -> None:
        is_min = _is_min_level(index)
        heap = self._heap
        while True:
            best: Optional[int] = None
            best_is_grand = False
            for pos, is_grand in self._descendants(index):
                if best is None:
                    better = True
                elif is_min:
                    better = heap[pos][:2] < heap[best][:2]
                else:
                    better = heap[pos][:2] > heap[best][:2]
                if better:
                    best, best_is_grand = pos, is_grand
            if best is None:
                return
            if is_min:
                out_of_order = heap[best][:2] < heap[index][:2]
            else:
                out_of_order = heap[best][:2] > heap[index][:2]
            if not out_of_order:
                return
            heap[index], heap[best] = heap[best], heap[index]
            if not best_is_grand:
                return
            parent = (best - 1) // 2
            if is_min:
                if heap[best][:2] > heap[parent][:2]:
                    heap[best], heap[parent] = heap[parent], heap[best]
            else:
                if heap[best][:2] < heap[parent][:2]:
                    heap[best], heap[parent] = heap[parent], heap[best]
            index = best

    # -- debugging aid -------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError if any min-max heap ordering is violated.

        Exposed for the test suite; O(n log n).
        """
        heap = self._heap
        for index in range(len(heap)):
            for pos, _ in self._descendants(index):
                if _is_min_level(index):
                    assert heap[index][:2] <= heap[pos][:2], (index, pos)
                else:
                    assert heap[index][:2] >= heap[pos][:2], (index, pos)


class TopKBuffer(Generic[T]):
    """The paper's cardinality-constrained priority queue of top-k scores.

    Keeps the ``k`` highest-scoring (score, payload) pairs seen so far and
    maintains the running ``STK`` incrementally, so the bandit reads both the
    kick-out threshold ``(S)_(k)`` and the objective value in O(1).
    """

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ConfigurationError(f"k must be a positive integer, got {k!r}")
        self.k = k
        self._heap: MinMaxHeap[T] = MinMaxHeap()
        self._stk = 0.0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def is_full(self) -> bool:
        """True once the buffer holds exactly ``k`` entries."""
        return len(self._heap) >= self.k

    @property
    def stk(self) -> float:
        """Current Sum-of-Top-k of everything offered so far."""
        return self._stk

    @property
    def threshold(self) -> float | None:
        """``(S)_(k)`` — the score a newcomer must beat — or None if |S| < k."""
        if not self.is_full:
            return None
        return self._heap.peek_min()[0]

    def offer(self, score: float, payload: T = None) -> float:
        """Offer a candidate; return the marginal STK gain it produced.

        A candidate either fills spare capacity (gain = score), evicts the
        current minimum (gain = score - threshold), or is rejected (gain 0).
        """
        score = float(score)
        if len(self._heap) < self.k:
            self._heap.push(score, payload)
            self._stk += score
            return score
        current_min = self._heap.peek_min()[0]
        if score > current_min:
            self._heap.pop_min()
            self._heap.push(score, payload)
            gain = score - current_min
            self._stk += gain
            return gain
        return 0.0

    def items(self) -> List[Tuple[float, T]]:
        """Return the (score, payload) pairs in descending score order."""
        return sorted(self._heap, key=lambda pair: pair[0], reverse=True)

    def scores(self) -> List[float]:
        """Return the held scores in descending order."""
        return [score for score, _payload in self.items()]

    def payloads(self) -> List[T]:
        """Return the held payloads in descending score order."""
        return [payload for _score, payload in self.items()]
