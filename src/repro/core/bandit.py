"""Flat-index epsilon-greedy top-k bandit (Algorithm 1 without the tree).

This is Algorithm 1 over a flat collection of arms: each arm keeps an
:class:`~repro.core.histogram.AdaptiveHistogram`; each iteration either
explores a uniformly random arm (probability ``t^(-1/3)``) or exploits the
arm maximizing the closed-form ``E[Delta_{t,l}]`` estimate, breaking ties at
random.  The hierarchical variant in :mod:`repro.core.hierarchical` reuses
the same selection rule per tree layer; the end-to-end engine composes
either policy with scoring, batching, and fallback.

The bandit is a *policy object*: callers drive the
``select_arm -> (draw & score) -> update`` loop so that batching and virtual
latency accounting stay outside the statistical logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

import numpy as np

from repro.core.arms import ArmState
from repro.core.histogram import AdaptiveHistogram, gain_batch
from repro.core.sketches import ScoreSketch
from repro.core.minmax_heap import TopKBuffer
from repro.core.policies import ExplorationSchedule, PolynomialDecay
from repro.errors import ConfigurationError, ExhaustedError
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive, check_positive_int


@dataclass
class BanditConfig:
    """Statistical knobs of Algorithm 1 (paper defaults).

    Attributes
    ----------
    n_bins:
        Histogram bucket count ``B`` (default 8).
    initial_range:
        Initial histogram maximum ``alpha`` (default 0.1).
    beta:
        Range-extension overestimation factor (default 1.1).
    enable_rebinning:
        If False, the Fig. 3a lowest-bin extension is skipped (the paper's
        "no re-binning" ablation).
    exploration:
        Schedule for ``epsilon_t`` (default: the paper's ``t^(-1/3)``).
    visit_unvisited_first:
        During exploitation, an arm whose histogram is still empty is
        preferred over any estimated arm (classic optimistic initialization,
        like UCB's pull-each-arm-once).  The paper's analysis relies on
        uniform exploration visiting every arm; with large batch sizes and
        small budgets the decayed schedule alone can leave arms unseen, so
        this is on by default (set False for the strictly-literal variant).
    """

    n_bins: int = 8
    initial_range: float = 0.1
    beta: float = 1.1
    enable_rebinning: bool = True
    exploration: ExplorationSchedule = field(default_factory=PolynomialDecay)
    visit_unvisited_first: bool = True
    sketch_factory: Optional[Callable[[], ScoreSketch]] = None

    def __post_init__(self) -> None:
        check_positive_int(self.n_bins, "n_bins")
        check_positive(self.initial_range, "initial_range")
        if not 1.0 <= self.beta <= 2.0:
            raise ConfigurationError(f"beta must lie in [1, 2], got {self.beta!r}")

    def new_histogram(self) -> AdaptiveHistogram:
        """Construct an empty histogram with these settings."""
        return AdaptiveHistogram(
            n_bins=self.n_bins, initial_range=self.initial_range, beta=self.beta
        )

    def new_sketch(self) -> ScoreSketch:
        """Construct the per-arm sketch: custom factory or paper histogram."""
        if self.sketch_factory is not None:
            return self.sketch_factory()
        return self.new_histogram()


class EpsilonGreedyBandit:
    """Epsilon-greedy top-k bandit over a flat set of arms.

    Parameters
    ----------
    arms:
        The sampleable clusters.
    k:
        Result cardinality (the query's ``LIMIT``).
    config:
        Statistical configuration; paper defaults if omitted.
    rng:
        Seed or generator for exploration coin-flips and tie-breaks.
    """

    def __init__(self, arms: Iterable[ArmState], k: int,
                 config: BanditConfig | None = None,
                 rng: SeedLike = None) -> None:
        self.config = config or BanditConfig()
        self._rng = as_generator(rng)
        self.arms: Dict[str, ArmState] = {}
        self.histograms: Dict[str, ScoreSketch] = {}
        for arm in arms:
            if arm.arm_id in self.arms:
                raise ConfigurationError(f"duplicate arm id {arm.arm_id!r}")
            self.arms[arm.arm_id] = arm
            self.histograms[arm.arm_id] = self.config.new_sketch()
        if not self.arms:
            raise ConfigurationError("bandit requires at least one arm")
        self.buffer: TopKBuffer[str] = TopKBuffer(k)
        self.t = 0
        self.n_explore = 0
        self.n_exploit = 0

    # -- bookkeeping -----------------------------------------------------------

    @property
    def k(self) -> int:
        """Result cardinality."""
        return self.buffer.k

    @property
    def active_arm_ids(self) -> List[str]:
        """IDs of arms that still have elements to draw."""
        return [arm_id for arm_id, arm in self.arms.items() if not arm.is_empty]

    @property
    def exhausted(self) -> bool:
        """True once every arm has run dry."""
        return not self.active_arm_ids

    @property
    def stk(self) -> float:
        """Running Sum-of-Top-k."""
        return self.buffer.stk

    @property
    def threshold(self) -> float | None:
        """Current kick-out threshold ``(S)_(k)``."""
        return self.buffer.threshold

    # -- Algorithm 1 steps -------------------------------------------------------

    def expected_gains(self) -> Dict[str, float]:
        """``E[Delta_{t,l}]`` estimate for every active arm.

        Evaluated through the shared vectorized/cached gain kernel: arms
        untouched since the last threshold movement are served from their
        histogram's gain cache, the rest in one stacked numpy pass.
        """
        threshold = self.threshold
        active = self.active_arm_ids
        gains = gain_batch([self.histograms[arm_id] for arm_id in active],
                           threshold)
        return {arm_id: float(gain) for arm_id, gain in zip(active, gains)}

    def greedy_arm(self) -> str:
        """Arm maximizing the estimated marginal gain; random tie-break.

        Unvisited arms (empty histograms) take priority when
        ``visit_unvisited_first`` is enabled.
        """
        gains = self.expected_gains()
        if not gains:
            raise ExhaustedError("all arms are exhausted")
        if self.config.visit_unvisited_first:
            unvisited = [arm_id for arm_id in gains
                         if self.histograms[arm_id].is_empty]
            if unvisited:
                return unvisited[int(self._rng.integers(len(unvisited)))]
        best = max(gains.values())
        tied = [arm_id for arm_id, gain in gains.items() if gain >= best - 1e-15]
        if len(tied) == 1:
            return tied[0]
        return tied[int(self._rng.integers(len(tied)))]

    def select_arm(self, batch_size: int = 1) -> str:
        """Pick the next arm: explore w.p. ``epsilon_t``, else exploit."""
        active = self.active_arm_ids
        if not active:
            raise ExhaustedError("all arms are exhausted")
        self.t += 1
        epsilon = self.config.exploration.effective_rate(self.t, batch_size)
        if self._rng.random() < epsilon:
            self.n_explore += 1
            return active[int(self._rng.integers(len(active)))]
        self.n_exploit += 1
        return self.greedy_arm()

    def update(self, arm_id: str, element_id: str, score: float) -> float:
        """Fold one scored element into the solution and sketches.

        Returns the marginal STK gain.  Mirrors the body of Algorithm 1:
        offer to the priority queue, then (optionally) extend the lowest bin
        when the threshold passed the second bin border, then record the
        score (auto-extending range if it overflows).
        """
        gain = self.buffer.offer(score, element_id)
        histogram = self.histograms[arm_id]
        if self.config.enable_rebinning:
            histogram.maybe_extend_lowest(self.threshold)
        histogram.add(score)
        return gain

    def step(self, score_fn) -> float:
        """Convenience one-iteration driver: select, draw, score, update.

        ``score_fn(element_id) -> float`` plays the role of the opaque UDF
        composed with the sampler.  Returns the marginal gain.  The engine
        does *not* use this (it batches); tests and small examples do.
        """
        arm_id = self.select_arm()
        element_id = self.arms[arm_id].draw()
        score = float(score_fn(element_id))
        return self.update(arm_id, element_id, score)

    def run(self, score_fn, budget: int) -> TopKBuffer[str]:
        """Run up to ``budget`` iterations (or until exhausted); return buffer."""
        for _ in range(budget):
            if self.exhausted:
                break
            self.step(score_fn)
        return self.buffer
