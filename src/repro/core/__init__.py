"""Core contribution: the STK objective, histogram sketches, and the
histogram-based epsilon-greedy top-k bandit (Algorithm 1 of the paper),
including the hierarchical variant, fallback strategies, and the end-to-end
query engine.
"""

from repro.core.stk import (
    stk,
    kth_largest,
    marginal_gain,
    stk_after_insert,
    stk_curve,
)
from repro.core.minmax_heap import MinMaxHeap, TopKBuffer
from repro.core.histogram import AdaptiveHistogram
from repro.core.convergence import (
    ConvergenceBound,
    TailSummary,
    tail_summary_from_engine,
)
from repro.core.sketches import (
    EquiDepthSketch,
    ExactEmpiricalSketch,
    ReservoirSketch,
    ScoreSketch,
)
from repro.core.arms import ArmState
from repro.core.policies import (
    ConstantEpsilon,
    ExplorationSchedule,
    FrontLoadedExploration,
    PolynomialDecay,
)
from repro.core.bandit import EpsilonGreedyBandit, BanditConfig
from repro.core.discrete import DiscreteArm, DiscreteTopKBandit
from repro.core.hierarchical import BanditNode, HierarchicalBanditPolicy
from repro.core.fallback import FallbackConfig, FallbackController, FallbackDecision
from repro.core.engine import EngineConfig, TopKEngine
from repro.core.result import Checkpoint, QueryResult
from repro.core.budgeted import budgeted_config, run_budgeted
from repro.core.snapshot import restore_engine, snapshot_engine

__all__ = [
    "stk",
    "kth_largest",
    "marginal_gain",
    "stk_after_insert",
    "stk_curve",
    "MinMaxHeap",
    "TopKBuffer",
    "AdaptiveHistogram",
    "ConvergenceBound",
    "TailSummary",
    "tail_summary_from_engine",
    "ScoreSketch",
    "ReservoirSketch",
    "EquiDepthSketch",
    "ExactEmpiricalSketch",
    "ArmState",
    "ExplorationSchedule",
    "PolynomialDecay",
    "ConstantEpsilon",
    "FrontLoadedExploration",
    "EpsilonGreedyBandit",
    "BanditConfig",
    "DiscreteArm",
    "DiscreteTopKBandit",
    "BanditNode",
    "HierarchicalBanditPolicy",
    "FallbackConfig",
    "FallbackController",
    "FallbackDecision",
    "EngineConfig",
    "TopKEngine",
    "Checkpoint",
    "QueryResult",
    "budgeted_config",
    "run_budgeted",
    "snapshot_engine",
    "restore_engine",
]
