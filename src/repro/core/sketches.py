"""Alternative per-arm score sketches.

The paper models each arm with an equi-width adaptive histogram and
acknowledges that its *uniform value assumption* "does not always hold"
(Section 3.2.4) — when it fails, "Ours can fail to model the exact
distributions" (Section 5.3).  This module makes the sketch pluggable:

* :class:`ScoreSketch` — the interface every sketch implements (the
  histogram of :mod:`repro.core.histogram` is registered as a virtual
  subclass);
* :class:`ReservoirSketch` — a bounded uniform reservoir of raw scores:
  the empirical estimator of Section 3.1 generalized to continuous domains
  under fixed memory.  No shape assumption at all; subtraction is
  approximated by nearest-value removal.
* :class:`ExactEmpiricalSketch` — keeps *every* score (unbounded memory);
  its gain estimate is exactly the Eq. 3 empirical expectation, making it
  the oracle the bounded sketches are tested against.

Swap sketches via ``BanditConfig(sketch_factory=...)`` /
``EngineConfig(sketch_factory=...)``; ``benchmarks/bench_ablation_sketches``
compares them on a distribution family where the uniform value assumption
is maximally wrong.
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from typing import Iterable, List

import numpy as np

from repro.core.histogram import AdaptiveHistogram
from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, as_generator


class ScoreSketch(ABC):
    """What the bandit needs from a per-arm distribution model."""

    @abstractmethod
    def add(self, value: float) -> None:
        """Record one observed score."""

    def add_many(self, values: Iterable[float]) -> None:
        """Record each score of ``values`` in order."""
        for value in values:
            self.add(value)

    def add_batch(self, values: Iterable[float]) -> None:
        """Record a batch of scores.

        Semantically equivalent to :meth:`add_many`; sketches with a
        vectorized bulk path (the adaptive histogram) override this so the
        engine's batched ``observe`` folds a whole batch in O(1) numpy calls
        instead of one Python call per element.
        """
        self.add_many(values)

    @abstractmethod
    def expected_marginal_gain(self, threshold: float | None) -> float:
        """Estimate ``E[max(X - threshold, 0)]`` (Eq. 2); mean if no threshold."""

    @abstractmethod
    def subtract(self, other: "ScoreSketch") -> None:
        """Remove another sketch's mass (dropped-child handling, Fig. 3c)."""

    @property
    @abstractmethod
    def total_mass(self) -> float:
        """Recorded sample mass (possibly fractional after maintenance)."""

    @property
    def is_empty(self) -> bool:
        """True iff the sketch holds no mass."""
        return self.total_mass <= 0.0

    def maybe_extend_lowest(self, threshold: float | None) -> bool:
        """Histogram-specific re-binning hook; a no-op for other sketches."""
        return False

    def tail_mass(self, threshold: float) -> float:
        """Estimated ``P(X > threshold)`` under the sketch.

        The conservative default (1.0 while any mass exists) keeps custom
        sketches sound for the convergence-bound layer
        (:mod:`repro.core.convergence`): an unknown tail can never make a
        displacement bound too small.  Built-in sketches override this
        with real estimates.
        """
        return 1.0 if self.total_mass > 0.0 else 0.0

    def survival_curve(self) -> tuple:
        """``(support, survival, kind)`` breakpoints of the tail function.

        Evaluated by :meth:`repro.core.convergence.TailSummary.survival_at`
        — ``kind`` is ``"linear"`` (interpolate between breakpoints, for
        histogram sketches) or ``"step"`` (right-continuous steps, for
        empirical sketches).  The default empty curve means "unknown",
        which the bound layer treats as survival 1 everywhere.
        """
        return (), (), "step"


# The adaptive histogram already satisfies the protocol.
ScoreSketch.register(AdaptiveHistogram)


def _empirical_tail_mass(values: List[float], threshold: float) -> float:
    """Fraction of ``values`` strictly above ``threshold`` (0 if empty)."""
    if not values:
        return 0.0
    arr = np.asarray(values, dtype=float)
    return float(np.count_nonzero(arr > threshold)) / arr.size


def _empirical_curve(values: List[float]) -> tuple:
    """Step survival curve of a raw sample: ``P(X > v)`` at each value."""
    if not values:
        return (), (), "step"
    support, counts = np.unique(np.asarray(values, dtype=float),
                                return_counts=True)
    above = (len(values) - np.cumsum(counts)) / len(values)
    return (
        tuple(float(v) for v in support),
        tuple(float(v) for v in above),
        "step",
    )


class ExactEmpiricalSketch(ScoreSketch):
    """Stores every observed score; exact empirical gain estimates.

    This is the continuous-domain version of the Section 3.1 counters
    ``N_{l,x}``: unbounded memory, zero modelling error.  Used as the test
    oracle and for small-L workloads where memory is irrelevant.
    """

    def __init__(self) -> None:
        self._values: List[float] = []  # kept sorted

    def add(self, value: float) -> None:
        if value < 0.0:
            raise ConfigurationError(f"scores must be non-negative, got {value!r}")
        bisect.insort(self._values, float(value))

    @property
    def total_mass(self) -> float:
        return float(len(self._values))

    def expected_marginal_gain(self, threshold: float | None) -> float:
        if not self._values:
            return 0.0
        values = np.asarray(self._values)
        if threshold is None:
            return float(values.mean())
        start = bisect.bisect_right(self._values, float(threshold))
        tail = values[start:]
        if not len(tail):
            return 0.0
        return float((tail - threshold).sum() / len(values))

    def subtract(self, other: "ScoreSketch") -> None:
        if isinstance(other, ExactEmpiricalSketch):
            for value in other._values:
                index = bisect.bisect_left(self._values, value)
                if index < len(self._values) and self._values[index] == value:
                    self._values.pop(index)
            return
        raise ConfigurationError(
            "ExactEmpiricalSketch can only subtract its own kind"
        )

    def quantile(self, q: float) -> float:
        """Empirical quantile (test helper)."""
        if not self._values:
            raise ConfigurationError("empty sketch has no quantiles")
        return float(np.quantile(np.asarray(self._values), q))

    def tail_mass(self, threshold: float) -> float:
        """Exact empirical ``P(X > threshold)`` over the stored scores."""
        return _empirical_tail_mass(self._values, threshold)

    def survival_curve(self) -> tuple:
        """Exact step survival curve over the stored scores."""
        return _empirical_curve(self._values)


class EquiDepthSketch(ScoreSketch):
    """Equi-depth (quantile) histogram derived lazily from a reservoir.

    The paper's equi-*width* histogram spends its bins uniformly over the
    value range; an equi-*depth* histogram spends them uniformly over the
    probability mass, which concentrates resolution wherever the data
    actually lives.  This implementation keeps a bounded reservoir and, on
    demand, summarizes it into ``n_bins`` quantile bins.  Interior bins are
    evaluated under the same uniform-in-bin assumption as the paper's
    sketch; the unbounded *top* bin — where that assumption is worst for
    heavy-tailed scores — is evaluated exactly from the reservoir's tail
    values.

    Memory: O(capacity); update: O(1) amortized (re-summarized lazily).
    Subtraction delegates to the underlying reservoir semantics.
    """

    def __init__(self, n_bins: int = 8, capacity: int = 256,
                 rng: SeedLike = None) -> None:
        if n_bins < 2:
            raise ConfigurationError(f"n_bins must be >= 2, got {n_bins!r}")
        self.n_bins = int(n_bins)
        self._reservoir = ReservoirSketch(capacity=capacity, rng=rng)
        self._edges: np.ndarray | None = None
        self._dirty = True

    def add(self, value: float) -> None:
        self._reservoir.add(value)
        self._dirty = True

    @property
    def total_mass(self) -> float:
        return self._reservoir.total_mass

    def _summarize(self) -> np.ndarray | None:
        if self._dirty:
            values = np.asarray(self._reservoir.values())
            if len(values) == 0:
                self._edges = None
            else:
                quantiles = np.linspace(0.0, 1.0, self.n_bins + 1)
                self._edges = np.quantile(values, quantiles)
            self._dirty = False
        return self._edges

    def expected_marginal_gain(self, threshold: float | None) -> float:
        edges = self._summarize()
        if edges is None or self.total_mass <= 0:
            return 0.0
        reservoir = np.asarray(self._reservoir.values())
        n_sampled = len(reservoir)
        if n_sampled == 0:
            return 0.0
        # Split: interior quantile bins (uniform-in-bin), exact tail.
        tail_border = float(edges[-2])
        tail_values = reservoir[reservoir >= tail_border]
        tail_frac = len(tail_values) / n_sampled
        interior_prob = (1.0 - tail_frac) / max(self.n_bins - 1, 1)
        lows, highs = edges[:-2], edges[1:-1]
        if threshold is None:
            total = float(interior_prob * (0.5 * (lows + highs)).sum())
        else:
            tau = float(threshold)
            widths = np.where(highs - lows > 0.0, highs - lows, 1.0)
            gain = np.zeros(len(lows))
            below = tau <= lows
            gain[below] = interior_prob * (
                0.5 * (lows[below] + highs[below]) - tau
            )
            inside = (~below) & (tau < highs)
            gain[inside] = (
                interior_prob * (highs[inside] - tau) ** 2
                / (2.0 * widths[inside])
            )
            total = float(gain.sum())
        if len(tail_values):
            if threshold is None:
                total += tail_frac * float(tail_values.mean())
            else:
                total += (
                    float(np.maximum(tail_values - tau, 0.0).sum()) / n_sampled
                )
        return total

    def subtract(self, other: "ScoreSketch") -> None:
        inner = other._reservoir if isinstance(other, EquiDepthSketch) else other
        self._reservoir.subtract(inner)
        self._dirty = True

    def edges(self) -> np.ndarray | None:
        """Current quantile bin borders (None while empty; test helper)."""
        return self._summarize()

    def tail_mass(self, threshold: float) -> float:
        """Empirical tail of the underlying reservoir sample."""
        return self._reservoir.tail_mass(threshold)

    def survival_curve(self) -> tuple:
        """Step survival curve of the underlying reservoir sample."""
        return self._reservoir.survival_curve()


class ReservoirSketch(ScoreSketch):
    """Bounded uniform reservoir sample of scores with mass accounting.

    Maintains a classic reservoir of up to ``capacity`` raw scores; every
    estimate is the plain empirical average over the reservoir, scaled by
    nothing — the reservoir is an unbiased sample of the arm's stream, so
    the Eq. 2 estimator needs no shape assumption.  ``total_mass`` tracks
    the *true* number of samples seen (minus subtractions), which the
    hierarchy uses for drop bookkeeping.

    Subtraction is necessarily approximate under bounded memory: for each
    value in the dropped child's reservoir (rescaled to the child's mass
    share), the nearest value in this reservoir is removed.
    """

    def __init__(self, capacity: int = 256, rng: SeedLike = None) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity!r}")
        self.capacity = int(capacity)
        self._rng = as_generator(rng)
        self._values: List[float] = []
        self._seen = 0.0

    def add(self, value: float) -> None:
        value = float(value)
        if value < 0.0:
            raise ConfigurationError(f"scores must be non-negative, got {value!r}")
        self._seen += 1.0
        if len(self._values) < self.capacity:
            self._values.append(value)
            return
        # Reservoir replacement with probability capacity / seen.
        slot = int(self._rng.integers(int(self._seen)))
        if slot < self.capacity:
            self._values[slot] = value

    @property
    def total_mass(self) -> float:
        return max(self._seen, 0.0)

    def expected_marginal_gain(self, threshold: float | None) -> float:
        if not self._values or self._seen <= 0:
            return 0.0
        values = np.asarray(self._values)
        if threshold is None:
            return float(values.mean())
        return float(np.maximum(values - threshold, 0.0).mean())

    def subtract(self, other: "ScoreSketch") -> None:
        other_mass = other.total_mass
        if other_mass <= 0 or self._seen <= 0:
            return
        removed_mass = min(other_mass, self._seen)
        if isinstance(other, ReservoirSketch) and other._values and self._values:
            # Remove nearest matches so the remaining reservoir approximates
            # the conditional distribution of this arm minus the child.
            share = removed_mass / self._seen
            n_remove = min(len(self._values) - 0,
                           max(1, int(round(share * len(self._values)))))
            child_values = list(other._values)
            for _ in range(n_remove):
                if not self._values or not child_values:
                    break
                target = child_values[
                    int(self._rng.integers(len(child_values)))
                ]
                nearest = min(
                    range(len(self._values)),
                    key=lambda i: abs(self._values[i] - target),
                )
                self._values.pop(nearest)
        self._seen -= removed_mass

    def values(self) -> List[float]:
        """Snapshot of the current reservoir (test helper)."""
        return list(self._values)

    def tail_mass(self, threshold: float) -> float:
        """Empirical ``P(X > threshold)`` over the (unbiased) reservoir."""
        return _empirical_tail_mass(self._values, threshold)

    def survival_curve(self) -> tuple:
        """Step survival curve over the reservoir sample."""
        return _empirical_curve(self._values)
