"""Arm state: uniform sampling without replacement from a cluster.

The abstract problem (Definition 2.2) samples i.i.d. from each arm's
distribution; "in practice, Alice samples listings from each cluster without
replacement" (Section 2.3).  :class:`ArmState` implements the practical
behaviour with O(1) swap-pop draws.

Two hot-path affordances:

* ``draw_batch`` consumes the generator with a *single* rng call for the
  whole batch (a vectorized partial Fisher-Yates step) and degenerates to
  the exact legacy one-call-per-draw sequence at ``size=1``, so seeded
  traces of ``batch_size=1`` runs are preserved bit for bit.
* ``on_draw`` is an optional callback fired once per draw call with the
  number of elements removed; the hierarchical policy hooks it to keep
  incremental ``remaining`` counters on every ancestor node, which is what
  makes ``exhausted`` checks O(1).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import ExhaustedError
from repro.utils.rng import SeedLike, as_generator


class ArmState:
    """Remaining members of one cluster, drawn uniformly without replacement.

    Parameters
    ----------
    arm_id:
        Stable identifier of the cluster (matches the index's leaf id).
    member_ids:
        Element IDs belonging to this cluster.
    rng:
        Seed or generator for the draw order.
    """

    def __init__(self, arm_id: str, member_ids: Iterable[str],
                 rng: SeedLike = None) -> None:
        self.arm_id = arm_id
        self._members: List[str] = list(member_ids)
        self._rng = as_generator(rng)
        self.n_drawn = 0
        # Fired with the number of elements removed by a draw call; used by
        # tree mirrors to maintain incremental per-node remaining counters.
        self.on_draw: Optional[Callable[[int], None]] = None

    def __len__(self) -> int:
        return len(self._members)

    @property
    def remaining(self) -> int:
        """Number of elements not yet drawn."""
        return len(self._members)

    @property
    def is_empty(self) -> bool:
        """True once the cluster has been exhausted."""
        return not self._members

    def draw(self) -> str:
        """Draw one member uniformly at random, removing it (O(1))."""
        if not self._members:
            raise ExhaustedError(f"arm {self.arm_id!r} is exhausted")
        index = int(self._rng.integers(len(self._members)))
        last = len(self._members) - 1
        self._members[index], self._members[last] = (
            self._members[last],
            self._members[index],
        )
        self.n_drawn += 1
        member = self._members.pop()
        if self.on_draw is not None:
            self.on_draw(1)
        return member

    def draw_batch(self, size: int) -> List[str]:
        """Draw up to ``size`` members (fewer if the arm runs dry).

        For ``size > 1`` the whole batch consumes exactly one rng call
        (a vector of uniforms scaled by shrinking bounds — a partial
        Fisher-Yates shuffle), so batched selection does O(1) generator
        work per batch.  ``size=1`` routes through :meth:`draw` and
        therefore reproduces the legacy seeded sequence exactly.
        """
        take = min(int(size), len(self._members))
        if take <= 0:
            return []
        if take == 1:
            return [self.draw()]
        n = len(self._members)
        bounds = np.arange(n, n - take, -1, dtype=np.int64)
        # floor(U * bounds) is uniform over [0, bounds) up to a 2^-53
        # rounding bias; one generator call for the whole batch.
        indices = (self._rng.random(take) * bounds).astype(np.int64)
        members = self._members
        batch: List[str] = []
        for offset, index in enumerate(indices):
            last = n - 1 - offset
            i = int(index)
            members[i], members[last] = members[last], members[i]
            batch.append(members.pop())
        self.n_drawn += take
        if self.on_draw is not None:
            self.on_draw(take)
        return batch

    def peek_members(self) -> Sequence[str]:
        """Read-only view of the not-yet-drawn member IDs (test helper)."""
        return tuple(self._members)
