"""Arm state: uniform sampling without replacement from a cluster.

The abstract problem (Definition 2.2) samples i.i.d. from each arm's
distribution; "in practice, Alice samples listings from each cluster without
replacement" (Section 2.3).  :class:`ArmState` implements the practical
behaviour with O(1) swap-pop draws.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.errors import ExhaustedError
from repro.utils.rng import SeedLike, as_generator


class ArmState:
    """Remaining members of one cluster, drawn uniformly without replacement.

    Parameters
    ----------
    arm_id:
        Stable identifier of the cluster (matches the index's leaf id).
    member_ids:
        Element IDs belonging to this cluster.
    rng:
        Seed or generator for the draw order.
    """

    def __init__(self, arm_id: str, member_ids: Iterable[str],
                 rng: SeedLike = None) -> None:
        self.arm_id = arm_id
        self._members: List[str] = list(member_ids)
        self._rng = as_generator(rng)
        self.n_drawn = 0

    def __len__(self) -> int:
        return len(self._members)

    @property
    def remaining(self) -> int:
        """Number of elements not yet drawn."""
        return len(self._members)

    @property
    def is_empty(self) -> bool:
        """True once the cluster has been exhausted."""
        return not self._members

    def draw(self) -> str:
        """Draw one member uniformly at random, removing it (O(1))."""
        if not self._members:
            raise ExhaustedError(f"arm {self.arm_id!r} is exhausted")
        index = int(self._rng.integers(len(self._members)))
        last = len(self._members) - 1
        self._members[index], self._members[last] = (
            self._members[last],
            self._members[index],
        )
        self.n_drawn += 1
        return self._members.pop()

    def draw_batch(self, size: int) -> List[str]:
        """Draw up to ``size`` members (fewer if the arm runs dry)."""
        batch: List[str] = []
        while len(batch) < size and self._members:
            batch.append(self.draw())
        return batch

    def peek_members(self) -> Sequence[str]:
        """Read-only view of the not-yet-drawn member IDs (test helper)."""
        return tuple(self._members)
