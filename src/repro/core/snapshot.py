"""Pause/resume support for running queries.

The paper's query model is *anytime*: "the user monitors the running
solution and retrieves the result as soon as satisfied" (Section 2.2).  A
natural companion is pausing: an analyst stops a long-running query, shuts
the notebook, and resumes tomorrow against the same (immutable) index
without re-scoring anything.

:func:`snapshot_engine` captures everything the engine learned — the
priority queue, every node's histogram sketch, each arm's remaining
members, counters, fallback state, and the scan queue if the clustering
fallback already fired — as a JSON-safe dict.  :func:`restore_engine`
rebuilds a live engine from it.

One documented caveat: random-generator state is *not* captured.  A resumed
engine derives fresh streams from ``resume_seed``, so a paused-and-resumed
run is a valid execution of Algorithm 1 but not bit-identical to the
uninterrupted one.

The sharded coordinator nests one of these payloads per shard
(:meth:`repro.parallel.engine.ShardedTopKEngine.snapshot`); the restore
invariants — notably ``recompute_remaining`` after writing arm members —
are documented in ``docs/architecture.md``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.engine import EngineConfig, TopKEngine
from repro.core.hierarchical import BanditNode
from repro.core.histogram import AdaptiveHistogram
from repro.errors import ConfigurationError, SerializationError
from repro.index.tree import ClusterTree

_FORMAT = "repro-engine-snapshot/1"


def _node_state(node: BanditNode) -> dict:
    payload: dict = {"node_id": node.node_id}
    if isinstance(node.histogram, AdaptiveHistogram):
        payload["histogram"] = node.histogram.to_dict()
    else:
        raise ConfigurationError(
            "snapshotting requires the default histogram sketch; custom "
            "sketch factories are not serializable"
        )
    if node.arm is not None:
        payload["remaining"] = list(node.arm.peek_members())
    else:
        payload["children"] = [_node_state(child) for child in node.children]
    return payload


def snapshot_engine(engine: TopKEngine) -> dict:
    """Capture a running engine's full learned state (JSON-safe)."""
    if engine._pending:
        raise ConfigurationError(
            "cannot snapshot between next_batch() and observe(); finish the "
            "in-flight batch first"
        )
    return {
        "format": _FORMAT,
        "k": engine.config.k,
        "mode": engine.mode,
        "scan_queue": list(engine._scan_queue),
        "buffer": [[score, payload] for score, payload in
                   engine.buffer.items()],
        "tree": _node_state(engine.policy.root),
        "flattened": engine.policy.flattened,
        "counters": {
            "t_batches": engine.t_batches,
            "n_scored": engine.n_scored,
            "n_explore": engine.n_explore,
            "n_exploit": engine.n_exploit,
            "n_drops": engine.policy.n_drops,
            "overhead_elapsed": engine.overhead.elapsed,
            "fallback_next_check": engine.fallback.next_check_at,
            "fallback_n_checks": engine.fallback.n_checks,
        },
        "fallback_events": [[t, kind] for t, kind in engine.fallback_events],
        "threshold_floor": engine.threshold_floor,
        "n_total": engine.n_total,
    }


def _restore_node(node: BanditNode, payload: dict) -> None:
    if node.node_id != payload.get("node_id"):
        raise SerializationError(
            f"snapshot tree mismatch: engine node {node.node_id!r} vs "
            f"snapshot {payload.get('node_id')!r}"
        )
    node.histogram = AdaptiveHistogram.from_dict(payload["histogram"])
    if node.arm is not None:
        remaining = payload.get("remaining")
        if remaining is None:
            raise SerializationError(
                f"snapshot missing arm members for leaf {node.node_id!r}"
            )
        node.arm._members = list(remaining)
    else:
        child_payloads = {p["node_id"]: p for p in payload.get("children", ())}
        kept: List[BanditNode] = []
        for child in node.children:
            if child.node_id in child_payloads:
                _restore_node(child, child_payloads[child.node_id])
                kept.append(child)
        node.children = kept


def restore_engine(index: ClusterTree, snapshot: dict,
                   config: Optional[EngineConfig] = None,
                   resume_seed: Optional[int] = None,
                   scoring_latency_hint: float = 2e-3) -> TopKEngine:
    """Rebuild a live engine from :func:`snapshot_engine` output.

    ``index`` must be the same immutable index the original engine ran
    over (node IDs are checked).  ``config`` defaults to paper settings
    with the snapshot's ``k``; ``resume_seed`` seeds the fresh random
    streams of the resumed run.
    """
    if snapshot.get("format") != _FORMAT:
        raise SerializationError(
            f"unrecognized snapshot format {snapshot.get('format')!r}"
        )
    if config is None:
        config = EngineConfig(k=int(snapshot["k"]), seed=resume_seed)
    elif config.k != int(snapshot["k"]):
        raise ConfigurationError("config.k must match the snapshot's k")
    engine = TopKEngine(index, config,
                        scoring_latency_hint=scoring_latency_hint)
    # Rehydrate learned state.
    _restore_node(engine.policy.root, snapshot["tree"])
    engine.policy.leaves_by_id = {
        leaf.node_id: leaf
        for leaf in engine.policy._iter_leaves(engine.policy.root)
        if leaf.arm is not None and not leaf.arm.is_empty
    }
    # The restore wrote arm members directly, bypassing the on_draw hook
    # that normally maintains the incremental counters.
    engine.policy.recompute_remaining()
    engine.policy.flattened = bool(snapshot.get("flattened", False))
    if engine.policy.flattened:
        engine.policy.flatten()
    for score, payload in snapshot["buffer"]:
        engine.buffer.offer(float(score), payload)
    engine.mode = snapshot["mode"]
    engine._scan_queue = list(snapshot.get("scan_queue", ()))
    counters = snapshot["counters"]
    engine.t_batches = int(counters["t_batches"])
    engine.n_scored = int(counters["n_scored"])
    engine.n_explore = int(counters["n_explore"])
    engine.n_exploit = int(counters["n_exploit"])
    engine.policy.n_drops = int(counters.get("n_drops", 0))
    engine.overhead.elapsed = float(counters.get("overhead_elapsed", 0.0))
    engine.fallback._next_check = int(counters.get("fallback_next_check", 0))
    engine.fallback.n_checks = int(counters.get("fallback_n_checks", 0))
    engine.fallback_events = [
        (int(t), str(kind)) for t, kind in snapshot.get("fallback_events", ())
    ]
    floor = snapshot.get("threshold_floor")
    engine.threshold_floor = None if floor is None else float(floor)
    return engine


_MEMO_FORMAT = "repro-memo-snapshot/1"


def snapshot_memo(memo, priors=None, table_version=None) -> dict:
    """Capture a table's cross-query state (JSON-safe).

    ``memo`` is a :class:`~repro.memo.store.MemoStore`; ``priors`` an
    optional :class:`~repro.memo.store.PriorStore` companion.  Pairs with
    :func:`restore_memo` so warm caches survive a session the same way
    engine state does.  One caveat mirrors the engine snapshot's RNG
    note: UDF *fingerprints* fold function bytecode, so a memo restored
    under a different Python version keys stale fingerprints — entries
    are then simply never hit (never wrong), and the first queries re-pay
    their UDF calls.

    ``table_version`` stamps the payload with the live-table version the
    scores were computed against (defaults to the store's own
    ``table_version`` counter, 0 for immutable tables).  On restore the
    stamp is checked: scores of a table that has since been written to
    would be silently wrong, so a mismatch clears instead of reviving.
    """
    version = (memo.table_version if table_version is None
               else int(table_version))
    return {
        "format": _MEMO_FORMAT,
        "memo": memo.to_dict(),
        "priors": None if priors is None else priors.to_dict(),
        "table_version": int(version),
    }


def restore_memo(payload: dict, expected_table_version=None):
    """Rebuild ``(MemoStore, PriorStore)`` from :func:`snapshot_memo`.

    The prior store is always returned (empty when none was captured), so
    callers can unpack unconditionally.

    When ``expected_table_version`` is given (the current version of the
    live table the memo will serve), it is compared against the
    snapshot's stamp: on mismatch the payload's scores and priors are
    *discarded* and fresh empty stores are returned — a memo carried
    across writes would otherwise serve element scores computed from
    rows that no longer exist.  The returned stores are stamped with the
    expected version so subsequent reconciliation starts clean.
    """
    from repro.memo import MemoStore, PriorStore

    if payload.get("format") != _MEMO_FORMAT:
        raise SerializationError(
            f"unrecognized memo snapshot format {payload.get('format')!r}"
        )
    stamped = int(payload.get("table_version", 0))
    if (expected_table_version is not None
            and stamped != int(expected_table_version)):
        memo = MemoStore()
        memo.table_version = int(expected_table_version)
        return memo, PriorStore()
    memo = MemoStore.from_dict(payload["memo"])
    priors_payload = payload.get("priors")
    priors = (PriorStore() if priors_payload is None
              else PriorStore.from_dict(priors_payload))
    return memo, priors
