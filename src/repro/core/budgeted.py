"""Fixed-budget execution — the Section 7.2 discussion, made concrete.

The main engine is *anytime*: it assumes the query may stop at any moment,
so exploration decays as ``t^(-1/3)``.  When the total budget ``T`` is known
up front, the paper suggests "a variant of Algorithm 1, batching all
exploration rounds at the beginning; the number of exploration rounds should
be in the order of Theta(T^(2/3))."  Being risk-seeking early and
risk-averse late is free when nobody reads the intermediate solution.

:func:`budgeted_config` derives that variant from any base configuration,
and :func:`run_budgeted` is a convenience wrapper that builds the engine and
executes exactly ``budget`` scoring calls.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.core.engine import EngineConfig, TopKEngine
from repro.core.policies import FrontLoadedExploration
from repro.core.result import QueryResult
from repro.errors import ConfigurationError
from repro.index.tree import ClusterTree
from repro.utils.validation import check_positive, check_positive_int


def budgeted_config(base: EngineConfig, budget: int,
                    exploration_multiplier: float = 1.0) -> EngineConfig:
    """Return ``base`` with exploration front-loaded for a known budget.

    The first ``ceil(exploration_multiplier * budget^(2/3))`` iterations
    explore with probability 1 (uniform arm choice), after which every
    iteration exploits greedily.  The cumulative exploration count matches
    the anytime schedule's Theta(T^(2/3)), so Theorem 4.4's regret term is
    unchanged while the exploitation rounds see strictly better histograms.
    """
    check_positive_int(budget, "budget")
    check_positive(exploration_multiplier, "exploration_multiplier")
    schedule = FrontLoadedExploration(budget=budget,
                                      c=exploration_multiplier)
    if schedule.cutoff >= budget:
        raise ConfigurationError(
            f"budget {budget} too small: the Theta(T^(2/3)) exploration "
            f"phase ({schedule.cutoff} rounds) would consume it entirely"
        )
    return replace(base, exploration=schedule)


def run_budgeted(index: ClusterTree, dataset, scorer, k: int, budget: int,
                 seed: Optional[int] = None,
                 exploration_multiplier: float = 1.0,
                 base: Optional[EngineConfig] = None) -> QueryResult:
    """Execute a fixed-budget opaque top-k query end to end."""
    base = base or EngineConfig(k=k, seed=seed)
    if base.k != k:
        raise ConfigurationError("base.k must match k")
    config = budgeted_config(base, budget, exploration_multiplier)
    engine = TopKEngine(index, config)
    return engine.run(dataset, scorer, budget=budget)
