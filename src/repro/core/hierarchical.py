"""Hierarchical epsilon-greedy bandit over the cluster tree (Section 3.2.2).

"Similar to He et al., we run our bandit algorithm over clusters in each
layer of the index.  The histogram of each cluster approximates the scores
of the UDF for all points in its descendant clusters.  Upon selecting a
cluster, its children constitute the collection of arms that the agent can
pull in the next bandit loop."

:class:`HierarchicalBanditPolicy` mirrors a :class:`~repro.index.tree.ClusterTree`
into bandit nodes (one adaptive histogram per node, one sampling arm per
leaf), performs root-to-leaf epsilon-greedy descent, updates the full
root-to-leaf histogram path on every observation, and implements the
empty-child handling of Section 3.2.4: dropped leaves are subtracted from
every ancestor's histogram, and childless internal nodes are removed
recursively.

Incremental-statistics invariants (the vectorized hot path)
-----------------------------------------------------------
* **``remaining`` ownership.**  Every :class:`BanditNode` stores its undrawn
  descendant count as a plain integer.  The *arm* owns the ground truth for
  a leaf: ``ArmState.on_draw`` is hooked to :meth:`BanditNode.note_drawn`,
  which decrements the counter along the root-to-leaf path on every draw —
  no matter who calls ``draw``/``draw_batch`` (engine, baselines, tests).
  ``flatten`` re-derives the root counter from the surviving leaves; a
  dropped leaf is already at zero, so drops need no adjustment.  Code that
  bypasses the arm API (snapshot restore writes ``arm._members`` directly)
  must call :meth:`HierarchicalBanditPolicy.recompute_remaining` afterwards.
  Consequences: ``exhausted`` is an O(1) counter check and the per-layer
  candidate filter reads one int per child instead of recursing.
* **Gain-cache ownership.**  Each node's histogram memoizes its last
  ``(threshold, gain)`` pair (see :mod:`repro.core.histogram`).  The cache
  is dirtied by any histogram mutation — ``add_batch`` during
  :meth:`update_batch`, re-binning via ``maybe_extend_lowest``, range
  extension, and ancestor ``subtract`` on drops — and by threshold movement
  (a cache-key miss).  Selection evaluates all sibling candidates through
  :func:`repro.core.histogram.gain_batch`, which serves cached nodes for
  free and evaluates the dirty ones in one stacked vectorized pass; between
  two observations only the last touched root-to-leaf path is dirty, so a
  descent costs O(depth · B) numpy work.

Both contracts are restated normatively (with their consequences for
snapshot restore and the parallel subsystem) in ``docs/architecture.md``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.core.arms import ArmState
from repro.core.bandit import BanditConfig
from repro.core.histogram import AdaptiveHistogram, gain_batch
from repro.core.sketches import ScoreSketch
from repro.errors import ConfigurationError, ExhaustedError
from repro.index.tree import ClusterNode, ClusterTree
from repro.utils.rng import RngFactory, SeedLike


class BanditNode:
    """One node of the bandit's mirror of the cluster tree."""

    __slots__ = ("node_id", "parent", "children", "arm", "histogram",
                 "remaining")

    def __init__(self, node_id: str, histogram: ScoreSketch,
                 parent: Optional["BanditNode"] = None) -> None:
        self.node_id = node_id
        self.parent = parent
        self.children: List["BanditNode"] = []
        self.arm: Optional[ArmState] = None
        self.histogram = histogram
        # Undrawn elements beneath this node, maintained incrementally by
        # note_drawn (leaves hook it into their arm's on_draw callback).
        self.remaining = 0

    @property
    def is_leaf(self) -> bool:
        """True iff this node carries a sampling arm."""
        return self.arm is not None

    def note_drawn(self, n: int) -> None:
        """Decrement ``remaining`` on this node and every ancestor."""
        node: Optional[BanditNode] = self
        while node is not None:
            node.remaining -= n
            node = node.parent

    def path_to_root(self) -> Iterator["BanditNode"]:
        """Yield this node, then each ancestor up to and including the root."""
        node: Optional[BanditNode] = self
        while node is not None:
            yield node
            node = node.parent

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else f"internal[{len(self.children)}]"
        return f"BanditNode({self.node_id!r}, {kind})"


class HierarchicalBanditPolicy:
    """Per-layer epsilon-greedy selection over the mirrored cluster tree.

    Parameters
    ----------
    tree:
        The prebuilt cluster index.
    config:
        Histogram / exploration settings (shared with the flat bandit).
    rng:
        Seed or generator; leaf arms get independent derived streams.
    enable_subtraction:
        If False, dropped children are *not* subtracted from ancestor
        histograms (the paper's "skip subtraction" ablation).
    """

    def __init__(self, tree: ClusterTree, config: BanditConfig | None = None,
                 rng: SeedLike = None, *, enable_subtraction: bool = True) -> None:
        self.config = config or BanditConfig()
        self.enable_subtraction = enable_subtraction
        factory = RngFactory(rng)
        self._rng = factory.named("policy")
        self.root = self._mirror(tree.root, parent=None, factory=factory)
        if self.root.is_leaf and self.root.arm is not None and not len(self.root.arm):
            raise ConfigurationError("index contains no elements")
        self.leaves_by_id: Dict[str, BanditNode] = {
            node.node_id: node for node in self._iter_leaves(self.root)
        }
        self.n_drops = 0
        self.flattened = False

    # -- construction ------------------------------------------------------------

    def _mirror(self, cluster: ClusterNode, parent: Optional[BanditNode],
                factory: RngFactory) -> BanditNode:
        node = BanditNode(cluster.node_id, self.config.new_sketch(), parent)
        if cluster.is_leaf:
            node.arm = ArmState(cluster.node_id, cluster.member_ids,
                                rng=factory.named(f"arm:{cluster.node_id}"))
            node.arm.on_draw = node.note_drawn
            node.remaining = node.arm.remaining
        else:
            node.children = [
                self._mirror(child, node, factory) for child in cluster.children
            ]
            node.remaining = sum(child.remaining for child in node.children)
        return node

    @staticmethod
    def _iter_leaves(node: BanditNode) -> Iterator[BanditNode]:
        if node.is_leaf:
            yield node
        else:
            for child in node.children:
                yield from HierarchicalBanditPolicy._iter_leaves(child)

    def recompute_remaining(self) -> None:
        """Re-derive every ``remaining`` counter from the arms.

        Only needed after out-of-band mutation of arm members (snapshot
        restore); normal draws maintain the counters incrementally.
        """

        def fill(node: BanditNode) -> int:
            if node.arm is not None:
                node.remaining = node.arm.remaining
            else:
                node.remaining = sum(fill(child) for child in node.children)
            return node.remaining

        fill(self.root)

    # -- state queries -------------------------------------------------------------

    def active_leaves(self) -> List[BanditNode]:
        """Leaves that still have elements to draw."""
        return [
            node for node in self.leaves_by_id.values()
            if node.arm is not None and not node.arm.is_empty
        ]

    @property
    def exhausted(self) -> bool:
        """True once every leaf arm has run dry (O(1) counter check)."""
        return self.root.remaining <= 0

    def remaining_ids(self) -> List[str]:
        """All undrawn element IDs (used when falling back to a scan)."""
        ids: List[str] = []
        for leaf in self.active_leaves():
            assert leaf.arm is not None
            ids.extend(leaf.arm.peek_members())
        return ids

    # -- selection --------------------------------------------------------------------

    def _greedy_child(self, node: BanditNode, threshold: float | None,
                      *, deterministic: bool) -> BanditNode:
        candidates = [child for child in node.children if child.remaining > 0]
        if not candidates:
            raise ExhaustedError(f"node {node.node_id!r} has no sampleable children")
        if not deterministic and self.config.visit_unvisited_first:
            # Optimistic initialization: sweep unseen subtrees before
            # trusting gain estimates (see BanditConfig docs).
            unvisited = [child for child in candidates
                         if child.histogram.is_empty]
            if unvisited:
                return unvisited[int(self._rng.integers(len(unvisited)))]
        gains = gain_batch(
            [child.histogram for child in candidates], threshold
        )
        best = gains.max()
        tied = [child for child, gain in zip(candidates, gains)
                if gain >= best - 1e-15]
        if deterministic or len(tied) == 1:
            return tied[0]
        return tied[int(self._rng.integers(len(tied)))]

    def _random_child(self, node: BanditNode) -> BanditNode:
        candidates = [child for child in node.children if child.remaining > 0]
        if not candidates:
            raise ExhaustedError(f"node {node.node_id!r} has no sampleable children")
        return candidates[int(self._rng.integers(len(candidates)))]

    def select_leaf(self, threshold: float | None, epsilon: float,
                    *, per_layer: bool = False) -> BanditNode:
        """Descend from the root to a leaf with epsilon-greedy choices.

        With ``per_layer=False`` (default) a single coin flip decides whether
        the *whole descent* explores (uniform random child per layer — the
        behaviour of the ExplorationOnly baseline) or exploits greedily; with
        ``per_layer=True`` each layer flips its own coin.
        """
        node = self.root
        explore_all = (not per_layer) and self._rng.random() < epsilon
        while not node.is_leaf:
            if explore_all or (per_layer and self._rng.random() < epsilon):
                node = self._random_child(node)
            else:
                node = self._greedy_child(node, threshold, deterministic=False)
        return node

    def greedy_leaf(self, threshold: float | None) -> BanditNode:
        """Leaf with the highest histogram gain estimate (deterministic ties).

        This is "the greedy arm" of the tree-fallback test (Section 3.2.3).
        """
        leaves = self.active_leaves()
        if not leaves:
            raise ExhaustedError("all leaves are exhausted")
        gains = gain_batch([leaf.histogram for leaf in leaves], threshold)
        return leaves[int(np.argmax(gains))]

    def greedy_descent_leaf(self, threshold: float | None) -> BanditNode:
        """Leaf reached by greedy-only descent (deterministic ties).

        This simulates "the hierarchical bandit navigating down the tree
        index, choosing the greedy child in each layer" for the fallback test.
        """
        node = self.root
        while not node.is_leaf:
            node = self._greedy_child(node, threshold, deterministic=True)
        return node

    # -- updates -------------------------------------------------------------------------

    def update(self, leaf: BanditNode, score: float,
               threshold: float | None, *, enable_rebinning: bool = True) -> None:
        """Fold one observed score into every histogram on the leaf's path."""
        self.update_batch(leaf, (float(score),), threshold,
                          enable_rebinning=enable_rebinning)

    def update_batch(self, leaf: BanditNode, scores: Sequence[float],
                     threshold: float | None, *,
                     enable_rebinning: bool = True) -> None:
        """Fold a batch of scores from one leaf into its root-to-leaf path.

        One path walk per batch: each node on the path applies at most one
        Fig. 3a re-bin check and then absorbs the whole batch through the
        sketch's vectorized ``add_batch``.  With a single score this is
        behaviorally identical to the scalar :meth:`update`.
        """
        if not len(scores):
            return
        if len(scores) > 1:
            # One conversion shared by every histogram on the path.
            scores = np.asarray(scores, dtype=float)
        for node in leaf.path_to_root():
            if enable_rebinning:
                node.histogram.maybe_extend_lowest(threshold)
            node.histogram.add_batch(scores)

    def handle_exhausted(self, leaf: BanditNode) -> None:
        """Drop an exhausted leaf (Section 3.2.4 empty-child handling).

        The leaf's histogram is subtracted from every ancestor (so a parent
        whose "good" child ran dry stops looking good), then the leaf is
        unlinked; ancestors left childless are removed recursively.  The
        ``remaining`` counters need no adjustment: an exhausted leaf already
        contributed zero along its path.
        """
        if leaf.arm is None or not leaf.arm.is_empty:
            return
        if leaf.node_id not in self.leaves_by_id:
            return  # already dropped
        if self.enable_subtraction:
            for ancestor in leaf.path_to_root():
                if ancestor is leaf:
                    continue
                ancestor.histogram.subtract(leaf.histogram)
        del self.leaves_by_id[leaf.node_id]
        self.n_drops += 1
        node = leaf
        while node.parent is not None:
            parent = node.parent
            parent.children = [c for c in parent.children if c is not node]
            if parent.children or parent.parent is None:
                break
            node = parent

    # -- tree fallback ----------------------------------------------------------------------

    def flatten(self) -> None:
        """Turn the index into a flat partition, preserving the clustering.

        After the tree-fallback fires, the root's children become the active
        leaves directly; the root histogram (aggregate of everything) is
        retained, and each leaf keeps its own sketch and remaining members.
        The root's ``remaining`` counter is re-derived from the surviving
        leaves (the discarded internal layers kept their own counts).
        """
        leaves = self.active_leaves()
        for leaf in leaves:
            leaf.parent = self.root
        self.root.children = leaves
        self.root.remaining = sum(leaf.remaining for leaf in leaves)
        self.flattened = True
