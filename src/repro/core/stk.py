"""The Sum-of-Top-k (STK) objective — Section 2.1 of the paper.

STK is the intrinsic solution-quality measure for opaque top-k queries:
``STK(S)`` is the sum of the (up to) ``k`` largest elements of the multiset
``S`` (Equation 1).  Theorem 4.1 proves STK is monotone and DR-submodular
over the multiset lattice; the predicates at the bottom of this module let
the property-based test suite check both properties directly.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError


def _check_k(k: int) -> int:
    if k <= 0:
        raise ConfigurationError(f"k must be a positive integer, got {k!r}")
    return k


def stk(values: Iterable[float], k: int) -> float:
    """Return the sum of the ``k`` largest elements of ``values`` (Eq. 1).

    If ``values`` has fewer than ``k`` elements the sum of all of them is
    returned; ``STK`` of an empty collection is 0.

    >>> stk([5, 1, 3, 2], k=2)
    8.0
    >>> stk([], k=3)
    0.0
    """
    _check_k(k)
    top = heapq.nlargest(k, values)
    return float(sum(top))


def kth_largest(values: Sequence[float], k: int) -> float | None:
    """Return ``(S)_(k)``, the k-th largest element, or ``None`` if |S| < k.

    This is the "kick-out" threshold of Section 2.2: a new score enters the
    running solution iff it exceeds this value.
    """
    _check_k(k)
    if len(values) < k:
        return None
    return float(heapq.nlargest(k, values)[-1])


def marginal_gain(x: float, threshold: float | None) -> float:
    """Marginal STK gain of adding score ``x`` given the current threshold.

    ``threshold`` is ``(S)_(k)`` of the running solution, or ``None`` while
    the solution still has fewer than ``k`` elements (in which case every
    non-negative score is pure gain).  Implements Equation 6:

    ``STK(S + x) - STK(S) = max(x - (S)_(k), 0)`` once |S| >= k.
    """
    if threshold is None:
        return float(x)
    return float(max(x - threshold, 0.0))


def stk_after_insert(current_stk: float, x: float, threshold: float | None) -> float:
    """Return ``STK(S + {x})`` given ``STK(S)`` and the current threshold."""
    return current_stk + marginal_gain(x, threshold)


def stk_curve(values: Sequence[float], k: int) -> np.ndarray:
    """Cumulative STK after each prefix of ``values`` is inserted in order.

    ``stk_curve(v, k)[t]`` equals ``stk(v[: t + 1], k)``; used to build the
    ScanBest / ScanWorst / UniformSample quality-versus-iterations curves in
    O(n log k) instead of O(n^2 log n).

    >>> list(stk_curve([1.0, 5.0, 3.0], k=2))
    [1.0, 6.0, 8.0]
    """
    _check_k(k)
    out = np.empty(len(values), dtype=float)
    heap: list[float] = []  # min-heap of the current top-k
    total = 0.0
    for i, value in enumerate(values):
        value = float(value)
        if len(heap) < k:
            heapq.heappush(heap, value)
            total += value
        elif value > heap[0]:
            total += value - heap[0]
            heapq.heapreplace(heap, value)
        out[i] = total
    return out


# ---------------------------------------------------------------------------
# Lattice predicates used by the Theorem 4.1 property tests.
# ---------------------------------------------------------------------------

def multiset_leq(smaller: Sequence[float], larger: Sequence[float]) -> bool:
    """Return True iff ``smaller <= larger`` in the multiset lattice order.

    ``X <= Y`` iff every element's multiplicity in X is at most its
    multiplicity in Y (Section 4.1 preliminaries).
    """
    remaining = list(larger)
    for item in smaller:
        try:
            remaining.remove(item)
        except ValueError:
            return False
    return True


def _tolerance(*collections: Sequence[float]) -> float:
    """Float-comparison slack scaled to the magnitudes involved.

    Sums of large scores accumulate rounding error proportional to their
    magnitude, so the lattice predicates compare with relative tolerance.
    """
    magnitude = 1.0
    for values in collections:
        for value in values:
            magnitude = max(magnitude, abs(float(value)))
    return 1e-9 * magnitude


def is_monotone_step(subset: Sequence[float], superset: Sequence[float], k: int) -> bool:
    """Check ``STK(subset) <= STK(superset)`` for a comparable pair (Eq. 4)."""
    return stk(subset, k) <= stk(superset, k) + _tolerance(subset, superset)


def is_dr_submodular_triple(
    subset: Sequence[float], superset: Sequence[float], x: float, k: int
) -> bool:
    """Check the diminishing-returns inequality of Equation 5 for one triple.

    For ``subset <= superset`` in the multiset lattice, adding ``x`` to the
    smaller multiset must gain at least as much STK as adding it to the
    larger one.
    """
    gain_small = stk(list(subset) + [x], k) - stk(subset, k)
    gain_large = stk(list(superset) + [x], k) - stk(superset, k)
    return gain_small >= gain_large - _tolerance(subset, superset, [x])
