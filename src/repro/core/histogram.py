"""Adaptive histogram sketches — Section 3.2.4 and Figure 3 of the paper.

Each bandit arm models its unknown score distribution with an
:class:`AdaptiveHistogram`.  The sketch stores bin borders and per-bin
counts, starts as an empty equi-width histogram over ``[0, alpha]``, and
supports the paper's three maintenance operations, all under the
*uniform value assumption* (mass is uniformly distributed within a bin):

* **Range extension** (Fig. 3b): when a sampled score exceeds the current
  maximum range, the range grows to ``[low, beta * score]`` with
  ``beta >= 1`` slightly overestimating the new maximum, and existing mass
  is redistributed onto the new equal-width grid.
* **Lowest-bin extension / re-binning** (Fig. 3a): once the running
  solution's threshold ``(S)_(k)`` passes the upper border of the second
  lowest bin, the two lowest bins are merged (they carry no useful
  distinction any more) and the widest high bin is split in two, shifting
  resolution toward the upper tail where it matters.
* **Subtraction** (Fig. 3c): when an exhausted child cluster is dropped
  from the tree, its histogram is subtracted from each ancestor's.  Bins
  that would go negative are clamped to zero, as the paper prescribes.

The sketch also evaluates the expected marginal STK gain ``E[Delta_{t,l}]``
of Equation 2 in closed form under the uniform value assumption, which is
what the epsilon-greedy bandit maximizes during exploitation.

Hot-path notes
--------------
The engine evaluates gains for every sibling candidate on every descent, so
``expected_marginal_gain`` memoizes its last ``(threshold, value)`` pair.
The cache is invalidated by every mutation (``add``/``add_batch``/
``extend_range``/``maybe_extend_lowest``/``subtract``/``merge``); a moved
threshold simply misses the cache key.  Mutate sketches only through those
methods — assigning ``edges``/``counts`` directly would leave a stale cache.
:func:`gain_batch` computes gains for many sketches in one vectorized pass
over stacked ``edges``/``counts`` matrices, filling the same per-sketch
cache, and the scalar path routes through the same kernel so batched and
scalar evaluations are bit-identical.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, SerializationError
from repro.utils.validation import check_positive, check_positive_int


def _overlap_redistribute_scalar(
    old_edges: np.ndarray, old_counts: np.ndarray, new_edges: np.ndarray
) -> np.ndarray:
    """Reference (pre-vectorization) implementation of the redistribution.

    Kept as the oracle for the property tests in
    ``tests/test_histogram_vectorized.py``; the production path is the
    vectorized :func:`_overlap_redistribute` below.
    """
    new_counts = np.zeros(len(new_edges) - 1, dtype=float)
    for i in range(len(old_counts)):
        count = old_counts[i]
        if count <= 0.0:
            continue
        lo, hi = old_edges[i], old_edges[i + 1]
        width = hi - lo
        if width <= 0.0:
            # Degenerate zero-width bin: treat as a point mass at ``lo``.
            j = int(np.clip(np.searchsorted(new_edges, lo, side="right") - 1,
                            0, len(new_counts) - 1))
            new_counts[j] += count
            continue
        first = int(np.clip(np.searchsorted(new_edges, lo, side="right") - 1,
                            0, len(new_counts) - 1))
        for j in range(first, len(new_counts)):
            seg_lo = max(lo, new_edges[j])
            seg_hi = min(hi, new_edges[j + 1])
            if seg_hi <= seg_lo:
                if new_edges[j] >= hi:
                    break
                continue
            new_counts[j] += count * (seg_hi - seg_lo) / width
    return new_counts


def _overlap_redistribute(
    old_edges: np.ndarray, old_counts: np.ndarray, new_edges: np.ndarray
) -> np.ndarray:
    """Redistribute ``old_counts`` onto ``new_edges`` by interval overlap.

    Under the uniform value assumption each old bin's mass is spread evenly
    across its interval, so the mass landing in a new bin is proportional to
    the length of the intersection.  Total mass is conserved whenever the new
    grid covers the old one.

    Vectorized as one (old x new) overlap matrix — no Python inner loops;
    degenerate zero-width old bins are routed as point masses at their left
    border, exactly like the scalar reference.
    """
    old_counts = np.asarray(old_counts, dtype=float)
    old_edges = np.asarray(old_edges, dtype=float)
    new_edges = np.asarray(new_edges, dtype=float)
    n_new = len(new_edges) - 1
    new_counts = np.zeros(n_new, dtype=float)
    positive = old_counts > 0.0
    if not positive.any():
        return new_counts
    lows = old_edges[:-1]
    highs = old_edges[1:]
    widths = highs - lows
    spread = positive & (widths > 0.0)
    if spread.any():
        seg_lo = np.maximum(lows[spread, None], new_edges[None, :-1])
        seg_hi = np.minimum(highs[spread, None], new_edges[None, 1:])
        overlap = np.maximum(seg_hi - seg_lo, 0.0)
        contrib = old_counts[spread, None] * overlap / widths[spread, None]
        new_counts += contrib.sum(axis=0)
    point = positive & (widths <= 0.0)
    if point.any():
        slots = np.clip(
            np.searchsorted(new_edges, lows[point], side="right") - 1,
            0, n_new - 1,
        )
        np.add.at(new_counts, slots, old_counts[point])
    return new_counts


def _gain_matrix(edges: np.ndarray, counts: np.ndarray,
                 threshold: Optional[float]) -> np.ndarray:
    """Row-wise closed-form ``E[Delta_{t,l}]`` for stacked histograms.

    ``edges`` has shape ``(m, B+1)`` and ``counts`` shape ``(m, B)``; one
    gain per row.  This is the single arithmetic path for gain evaluation:
    :meth:`AdaptiveHistogram.expected_marginal_gain` calls it with one row
    and :func:`gain_batch` with many, so both produce identical floats.
    """
    mass = counts.sum(axis=1)
    safe_mass = np.where(mass > 0.0, mass, 1.0)
    probs = counts / safe_mass[:, None]
    lows = edges[:, :-1]
    highs = edges[:, 1:]
    # Empty rows need no masking: probs are all zero there, so every term
    # (and the row sum) is already +/-0.0, which compares equal to 0.0.
    if threshold is None:
        return (probs * (0.5 * (lows + highs))).sum(axis=1)
    tau = float(threshold)
    widths = highs - lows
    below = tau <= lows
    inside = (~below) & (tau < highs)
    safe_width = np.where(widths > 0.0, widths, 1.0)
    below_term = probs * (0.5 * (lows + highs) - tau)
    inside_term = probs * (highs - tau) ** 2 / (2.0 * safe_width)
    gain = np.where(below, below_term, np.where(inside, inside_term, 0.0))
    return gain.sum(axis=1)


def gain_batch(sketches: Sequence[object],
               threshold: Optional[float]) -> np.ndarray:
    """Expected marginal gains for many sketches in one vectorized pass.

    When every sketch's gain cache is fresh for ``threshold`` the answer is
    a pure cache read.  Otherwise all adaptive histograms (of the common bin
    count) are re-evaluated together by a single :func:`_gain_matrix` call
    over stacked ``edges``/``counts`` matrices, refreshing every cache: the
    kernel's cost is dominated by fixed numpy-dispatch overhead, so one
    whole-sibling-set call is cheaper than bookkeeping a dirty subset.
    Heterogeneous sketches fall back to ``expected_marginal_gain`` (itself
    cached for adaptive histograms).
    """
    tau = None if threshold is None else float(threshold)
    m = len(sketches)
    gains = np.empty(m, dtype=float)
    all_fresh = True
    for i, sketch in enumerate(sketches):
        cached = getattr(sketch, "_gain_cache", None)
        if cached is not None and cached[0] == tau:
            gains[i] = cached[1]
        else:
            all_fresh = False
            break
    if all_fresh:
        return gains
    if not isinstance(sketches[0], AdaptiveHistogram):
        for i, sketch in enumerate(sketches):
            gains[i] = sketch.expected_marginal_gain(threshold)
        return gains
    try:
        n_edges = len(sketches[0].edges)
        edges = np.empty((m, n_edges), dtype=float)
        counts = np.empty((m, n_edges - 1), dtype=float)
        for i, sketch in enumerate(sketches):
            edges[i] = sketch.edges
            counts[i] = sketch.counts
    except (AttributeError, TypeError, ValueError):
        # Heterogeneous sketch set (custom factories / mixed bin counts):
        # fall back to per-sketch evaluation.
        for i, sketch in enumerate(sketches):
            gains[i] = sketch.expected_marginal_gain(threshold)
        return gains
    gains = _gain_matrix(edges, counts, tau)
    for sketch, value in zip(sketches, gains.tolist()):
        sketch._gain_cache = (tau, value)
    return gains


class AdaptiveHistogram:
    """Histogram sketch of one arm's score distribution.

    Parameters
    ----------
    n_bins:
        Number of buckets ``B`` (paper default: 8).
    initial_range:
        Initial maximum ``alpha``; the histogram starts equi-width over
        ``[0, alpha]`` (paper default: 0.1).
    beta:
        Range-extension overestimation factor in ``[1, 2]`` (default 1.1).
    """

    def __init__(self, n_bins: int = 8, initial_range: float = 0.1,
                 beta: float = 1.1) -> None:
        check_positive_int(n_bins, "n_bins")
        if n_bins < 2:
            raise ConfigurationError(f"n_bins must be >= 2, got {n_bins}")
        check_positive(initial_range, "initial_range")
        if not 1.0 <= beta <= 2.0:
            raise ConfigurationError(f"beta must lie in [1, 2], got {beta!r}")
        self.n_bins = int(n_bins)
        self.beta = float(beta)
        self.edges = np.linspace(0.0, float(initial_range), n_bins + 1)
        self.counts = np.zeros(n_bins, dtype=float)
        self.n_rebins = 0
        self.n_extensions = 0
        # Last (threshold, gain) pair; None whenever the sketch mutated.
        self._gain_cache: Optional[Tuple[Optional[float], float]] = None
        # Running total mass, so total_mass/is_empty checks on the hot path
        # are O(1) attribute reads; re-derived from counts after any
        # redistribution (extension, re-bin, subtract, merge).
        self._mass = 0.0

    # -- basic accessors ------------------------------------------------------

    @property
    def total_mass(self) -> float:
        """Total (possibly fractional, after maintenance) sample mass."""
        return self._mass

    @property
    def is_empty(self) -> bool:
        """True iff the sketch holds no mass."""
        return self._mass <= 0.0

    @property
    def max_range(self) -> float:
        """Current upper border of the highest bin."""
        return float(self.edges[-1])

    def copy(self) -> "AdaptiveHistogram":
        """Return an independent deep copy of this sketch."""
        clone = AdaptiveHistogram.__new__(AdaptiveHistogram)
        clone.n_bins = self.n_bins
        clone.beta = self.beta
        clone.edges = self.edges.copy()
        clone.counts = self.counts.copy()
        clone.n_rebins = self.n_rebins
        clone.n_extensions = self.n_extensions
        clone._gain_cache = self._gain_cache
        clone._mass = self._mass
        return clone

    # -- updates ---------------------------------------------------------------

    def add(self, value: float) -> None:
        """Record one observed score, auto-extending the range if needed."""
        value = float(value)
        if value < 0.0:
            raise ConfigurationError(
                f"scores must be non-negative (opaque top-k setting), got {value!r}"
            )
        if value > self.max_range:
            self.extend_range(self.beta * value)
        index = int(np.searchsorted(self.edges, value, side="right") - 1)
        index = min(max(index, 0), self.n_bins - 1)
        self.counts[index] += 1.0
        self._mass += 1.0
        self._gain_cache = None

    def add_many(self, values: Iterable[float]) -> None:
        """Record each score of ``values`` in order."""
        for value in values:
            self.add(value)

    def add_batch(self, values: Sequence[float]) -> None:
        """Record a batch of scores, equivalent to ``add`` in sequence.

        Values that fit the current range are binned with one
        ``searchsorted``/``bincount`` pass; range extensions replay the
        sequential semantics exactly (the range grows at the first value
        exceeding the current maximum, to ``beta`` times that value), so the
        result is identical to calling :meth:`add` element by element —
        extensions are geometric-rare, so almost all work is vectorized.
        """
        if not hasattr(values, "__len__"):
            values = np.fromiter(values, dtype=float)
        if len(values) == 1:
            # Degenerate batch: the scalar path is cheaper than array setup
            # and identical by definition (add_batch == sequential adds).
            self.add(float(values[0]))
            return
        arr = np.asarray(values, dtype=float)
        if arr.ndim != 1:
            arr = arr.reshape(-1)
        if arr.size == 0:
            return
        if arr.min() < 0.0:
            bad = float(arr[arr < 0.0][0])
            raise ConfigurationError(
                f"scores must be non-negative (opaque top-k setting), got {bad!r}"
            )
        start = 0
        while start < arr.size:
            # ``> max_range`` (not ``<=``-negation) so NaN counts as fitting,
            # exactly like the scalar add(): NaN never triggers an extension
            # and searchsorted clamps it into the top bin.
            over = arr[start:] > self.max_range
            if not over.any():
                stop = arr.size
            else:
                # First overflowing value triggers the next range extension.
                stop = start + int(np.argmax(over))
            if stop > start:
                chunk = arr[start:stop]
                indices = np.searchsorted(self.edges, chunk, side="right") - 1
                np.minimum(indices, self.n_bins - 1, out=indices)
                np.maximum(indices, 0, out=indices)
                self.counts += np.bincount(indices, minlength=self.n_bins)
                self._mass += float(chunk.size)
                start = stop
            if start < arr.size:
                self.extend_range(self.beta * float(arr[start]))
        self._gain_cache = None

    def extend_range(self, new_max: float) -> None:
        """Grow the covered range to ``[low, new_max]`` (Fig. 3b).

        The new grid is equal-width; existing mass is redistributed by
        interval overlap under the uniform value assumption.
        """
        if new_max <= self.max_range:
            return
        new_edges = np.linspace(float(self.edges[0]), float(new_max),
                                self.n_bins + 1)
        self.counts = _overlap_redistribute(self.edges, self.counts, new_edges)
        self.edges = new_edges
        self.n_extensions += 1
        self._mass = float(self.counts.sum())
        self._gain_cache = None

    def maybe_extend_lowest(self, threshold: float | None) -> bool:
        """Apply the Fig. 3a re-binning if ``threshold`` passed bin 2's border.

        When the running solution's ``(S)_(k)`` exceeds the upper border of
        the *second* lowest bin, the two lowest bins no longer carry useful
        distinction: they are merged, and the widest remaining bin above the
        merge point is split in half (splitting its mass evenly, per the
        uniform value assumption) so the bucket budget ``B`` is preserved and
        resolution shifts toward the tail.  Returns True iff a re-bin happened.
        """
        if threshold is None or self.n_bins < 3:
            return False
        if threshold <= self.edges[2]:
            return False
        # Merge bins 0 and 1 (concatenate beats np.delete/np.insert here).
        merged_edges = np.concatenate((self.edges[:1], self.edges[2:]))
        merged_counts = np.concatenate(
            ([self.counts[0] + self.counts[1]], self.counts[2:])
        )
        # Split the widest bin above the merged one to restore B bins.
        widths = merged_edges[2:] - merged_edges[1:-1]
        split = 1 + int(np.argmax(widths))
        mid = 0.5 * (merged_edges[split] + merged_edges[split + 1])
        new_edges = np.concatenate(
            (merged_edges[:split + 1], [mid], merged_edges[split + 1:])
        )
        half = merged_counts[split] / 2.0
        new_counts = np.concatenate(
            (merged_counts[:split], [half, half], merged_counts[split + 1:])
        )
        self.edges = new_edges
        self.counts = new_counts
        self.n_rebins += 1
        self._mass = float(self.counts.sum())
        self._gain_cache = None
        return True

    def subtract(self, other: "AdaptiveHistogram") -> None:
        """Remove ``other``'s mass from this sketch (Fig. 3c).

        The child's mass is projected onto this histogram's grid by interval
        overlap, then subtracted; any bin that would become negative is
        clamped to zero ("we always round up the histogram's bin counts to
        zero if they become negative").
        """
        if other.is_empty:
            return
        projected = _overlap_redistribute(other.edges, other.counts, self.edges)
        # Mass of the child falling beyond this sketch's range cannot be
        # located; it is dropped, which the clamp-at-zero rule tolerates.
        self.counts = np.maximum(self.counts - projected, 0.0)
        self._mass = float(self.counts.sum())
        self._gain_cache = None

    def merge(self, other: "AdaptiveHistogram") -> None:
        """Fold ``other``'s mass into this sketch (used when flattening)."""
        if other.is_empty:
            return
        if other.max_range > self.max_range:
            self.extend_range(other.max_range)
        self.counts += _overlap_redistribute(other.edges, other.counts, self.edges)
        self._mass = float(self.counts.sum())
        self._gain_cache = None

    # -- queries ---------------------------------------------------------------

    def expected_marginal_gain(self, threshold: float | None) -> float:
        """Closed-form ``E[Delta_{t,l}]`` of Equation 2 under the sketch.

        With ``X`` uniform on a bin ``[a, b)`` holding probability ``p``:

        * ``threshold <= a``  ->  ``p * ((a + b)/2 - threshold)``
        * ``threshold >= b``  ->  0
        * otherwise           ->  ``p * (b - threshold)^2 / (2 (b - a))``

        ``threshold=None`` (solution not yet full) means every score is pure
        gain, so the estimate is the sketch's mean.  An empty sketch scores 0.

        The result is memoized per ``(sketch state, threshold)``: mutations
        clear the cache, and a moved threshold misses the cache key, so the
        bandit's repeated sibling evaluations between observations are O(1).
        """
        tau = None if threshold is None else float(threshold)
        cached = self._gain_cache
        if cached is not None and cached[0] == tau:
            return cached[1]
        value = float(
            _gain_matrix(self.edges[None, :], self.counts[None, :], tau)[0]
        )
        self._gain_cache = (tau, value)
        return value

    def mean_estimate(self) -> float:
        """Mean of the sketched distribution under the uniform value assumption."""
        mass = self.total_mass
        if mass <= 0.0:
            return 0.0
        mids = 0.5 * (self.edges[:-1] + self.edges[1:])
        return float(np.dot(self.counts / mass, mids))

    def tail_mass(self, threshold: float) -> float:
        """Estimated probability that a sample exceeds ``threshold``."""
        mass = self.total_mass
        if mass <= 0.0:
            return 0.0
        lows = self.edges[:-1]
        highs = self.edges[1:]
        widths = np.where(highs - lows > 0.0, highs - lows, 1.0)
        frac_above = np.clip((highs - threshold) / widths, 0.0, 1.0)
        return float(np.dot(self.counts / mass, frac_above))

    def survival_curve(self) -> Tuple[Tuple[float, ...], Tuple[float, ...], str]:
        """Breakpoints of ``tau -> tail_mass(tau)`` for the bound layer.

        Under the uniform-in-bin assumption the tail mass is piecewise
        *linear* in the threshold with breakpoints exactly at the bin
        edges, so ``(edges, tail_mass at each edge, "linear")`` lets
        :class:`repro.core.convergence.TailSummary` reproduce
        :meth:`tail_mass` exactly by interpolation.
        """
        mass = self.total_mass
        if mass <= 0.0:
            return (), (), "linear"
        above = np.concatenate(
            (np.cumsum(self.counts[::-1])[::-1], [0.0])
        ) / mass
        return (
            tuple(float(edge) for edge in self.edges),
            tuple(float(value) for value in above),
            "linear",
        )

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Return a JSON-safe representation of this sketch."""
        return {
            "n_bins": self.n_bins,
            "beta": self.beta,
            "edges": [float(edge) for edge in self.edges],
            "counts": [float(count) for count in self.counts],
            "n_rebins": self.n_rebins,
            "n_extensions": self.n_extensions,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "AdaptiveHistogram":
        """Rebuild a sketch from :meth:`to_dict` output."""
        try:
            edges = np.asarray(payload["edges"], dtype=float)
            counts = np.asarray(payload["counts"], dtype=float)
            n_bins = int(payload["n_bins"])  # type: ignore[arg-type]
            beta = float(payload["beta"])  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"malformed histogram payload: {exc}") from exc
        if len(edges) != len(counts) + 1 or len(counts) != n_bins:
            raise SerializationError(
                "histogram payload has inconsistent edges/counts lengths"
            )
        sketch = cls.__new__(cls)
        sketch.n_bins = n_bins
        sketch.beta = beta
        sketch.edges = edges
        sketch.counts = counts
        sketch.n_rebins = int(payload.get("n_rebins", 0))  # type: ignore[arg-type]
        sketch.n_extensions = int(payload.get("n_extensions", 0))  # type: ignore[arg-type]
        sketch._gain_cache = None
        sketch._mass = float(counts.sum())
        return sketch

    def __repr__(self) -> str:
        return (
            f"AdaptiveHistogram(bins={self.n_bins}, range=[{self.edges[0]:.4g}, "
            f"{self.max_range:.4g}], mass={self.total_mass:.4g})"
        )
