"""Result and trace records returned by the query engine.

:class:`ResultBase` is the unified result protocol: every result type a
query can produce — the single-engine :class:`QueryResult` here, the
sharded :class:`~repro.parallel.engine.DistributedResult`, and the
streaming :class:`~repro.streaming.engine.StreamingResult` — exposes the
same minimal surface (``items``, ``ids``, ``scores``, ``summary()``,
``budget_spent``, ``displacement_bound``, ``to_json()``) so callers can
consume any execution mode uniformly.  Type-specific traces (checkpoints,
worker reports, progressive curves) remain on the concrete classes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import ClassVar, List, Optional, Tuple


class ResultBase(ABC):
    """Protocol shared by every result type (see module docstring).

    Concrete classes are dataclasses carrying at least ``k``, ``items``
    (``(element_id, score)`` rows, best first), and ``stk``; they
    implement ``summary()`` and ``budget_spent`` and may override
    ``displacement_bound`` (default: 1.0, i.e. no certificate) and
    ``_extra_json()`` (type-specific additions to :meth:`to_json`).
    """

    #: Registry-style tag identifying the concrete result type in
    #: ``to_json()`` payloads (``single`` / ``sharded`` / ``streaming``).
    kind: ClassVar[str] = "result"

    # Concrete dataclasses provide these as fields.
    k: int
    items: List[Tuple[str, float]]
    stk: float

    @property
    def ids(self) -> List[str]:
        """Element IDs of the answer, best first."""
        return [element_id for element_id, _score in self.items]

    @property
    def scores(self) -> List[float]:
        """Scores of the answer, descending."""
        return [score for _id, score in self.items]

    @property
    @abstractmethod
    def budget_spent(self) -> int:
        """Total opaque-UDF scoring calls this result consumed."""

    @property
    def displacement_bound(self) -> float:
        """Upper estimate of the probability that an unscored element
        would displace this answer (1.0 = no certificate, 0.0 = exact)."""
        return 1.0

    @abstractmethod
    def summary(self) -> str:
        """One-line human-readable report."""

    def to_json(self) -> dict:
        """JSON-safe dict: the shared protocol surface plus extras.

        The shared keys (``kind``, ``k``, ``items``, ``stk``,
        ``budget_spent``, ``displacement_bound``, ``summary``) are stable
        across all result types; ``_extra_json()`` adds the type-specific
        trace.
        """
        payload = {
            "kind": self.kind,
            "k": int(self.k),
            "items": [[element_id, float(score)]
                      for element_id, score in self.items],
            "stk": float(self.stk),
            "budget_spent": int(self.budget_spent),
            "displacement_bound": float(self.displacement_bound),
            "summary": self.summary(),
        }
        payload.update(self._extra_json())
        return payload

    def _extra_json(self) -> dict:
        """Type-specific additions to :meth:`to_json` (JSON-safe)."""
        return {}


@dataclass(frozen=True)
class Checkpoint:
    """Snapshot of the anytime solution after some number of scoring calls.

    Attributes
    ----------
    iteration:
        Number of scoring-function invocations so far (the paper's ``t``).
    virtual_time:
        Simulated seconds of scoring latency charged so far.
    overhead_time:
        Real measured seconds spent inside the algorithm itself.
    stk:
        Sum-of-Top-k of the running solution.
    threshold:
        Current kick-out threshold ``(S)_(k)`` (None while |S| < k).
    """

    iteration: int
    virtual_time: float
    overhead_time: float
    stk: float
    threshold: Optional[float]

    @property
    def total_time(self) -> float:
        """Virtual scoring time plus real algorithm overhead."""
        return self.virtual_time + self.overhead_time


@dataclass
class QueryResult(ResultBase):
    """Final answer plus execution trace of one top-k query.

    ``items`` holds (element_id, score) in descending score order — the rows
    the user would read.  ``checkpoints`` is the anytime quality trace used
    for every figure in the paper's evaluation.
    """

    kind: ClassVar[str] = "single"

    k: int
    items: List[Tuple[str, float]]
    stk: float
    n_scored: int
    n_batches: int
    n_explore: int
    n_exploit: int
    virtual_time: float
    overhead_time: float
    fallback_events: List[Tuple[int, str]] = field(default_factory=list)
    checkpoints: List[Checkpoint] = field(default_factory=list)
    #: 0.0 when the engine scored every candidate (the answer is exact);
    #: 1.0 otherwise — the single engine carries no sketch certificate.
    exhausted: bool = False

    @property
    def budget_spent(self) -> int:
        """Total scoring calls (alias of ``n_scored`` for the protocol)."""
        return self.n_scored

    @property
    def displacement_bound(self) -> float:
        """0.0 once every candidate was scored (exact), else 1.0."""
        return 0.0 if self.exhausted else 1.0

    @property
    def total_time(self) -> float:
        """Virtual scoring time plus real algorithm overhead."""
        return self.virtual_time + self.overhead_time

    def summary(self) -> str:
        """One-line human-readable summary."""
        fallbacks = ", ".join(kind for _t, kind in self.fallback_events) or "none"
        return (
            f"top-{self.k}: STK={self.stk:.4f} after {self.n_scored} scores "
            f"({self.n_explore} explore / {self.n_exploit} exploit batches), "
            f"time={self.total_time:.3f}s, fallbacks: {fallbacks}"
        )

    def _extra_json(self) -> dict:
        return {
            "n_batches": int(self.n_batches),
            "n_explore": int(self.n_explore),
            "n_exploit": int(self.n_exploit),
            "virtual_time": float(self.virtual_time),
            "overhead_time": float(self.overhead_time),
            "fallback_events": [[int(t), str(kind)]
                                for t, kind in self.fallback_events],
            "exhausted": bool(self.exhausted),
        }
