"""Result and trace records returned by the query engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class Checkpoint:
    """Snapshot of the anytime solution after some number of scoring calls.

    Attributes
    ----------
    iteration:
        Number of scoring-function invocations so far (the paper's ``t``).
    virtual_time:
        Simulated seconds of scoring latency charged so far.
    overhead_time:
        Real measured seconds spent inside the algorithm itself.
    stk:
        Sum-of-Top-k of the running solution.
    threshold:
        Current kick-out threshold ``(S)_(k)`` (None while |S| < k).
    """

    iteration: int
    virtual_time: float
    overhead_time: float
    stk: float
    threshold: Optional[float]

    @property
    def total_time(self) -> float:
        """Virtual scoring time plus real algorithm overhead."""
        return self.virtual_time + self.overhead_time


@dataclass
class QueryResult:
    """Final answer plus execution trace of one top-k query.

    ``items`` holds (element_id, score) in descending score order — the rows
    the user would read.  ``checkpoints`` is the anytime quality trace used
    for every figure in the paper's evaluation.
    """

    k: int
    items: List[Tuple[str, float]]
    stk: float
    n_scored: int
    n_batches: int
    n_explore: int
    n_exploit: int
    virtual_time: float
    overhead_time: float
    fallback_events: List[Tuple[int, str]] = field(default_factory=list)
    checkpoints: List[Checkpoint] = field(default_factory=list)

    @property
    def ids(self) -> List[str]:
        """Element IDs of the answer, best first."""
        return [element_id for element_id, _score in self.items]

    @property
    def scores(self) -> List[float]:
        """Scores of the answer, descending."""
        return [score for _id, score in self.items]

    @property
    def total_time(self) -> float:
        """Virtual scoring time plus real algorithm overhead."""
        return self.virtual_time + self.overhead_time

    def summary(self) -> str:
        """One-line human-readable summary."""
        fallbacks = ", ".join(kind for _t, kind in self.fallback_events) or "none"
        return (
            f"top-{self.k}: STK={self.stk:.4f} after {self.n_scored} scores "
            f"({self.n_explore} explore / {self.n_exploit} exploit batches), "
            f"time={self.total_time:.3f}s, fallbacks: {fallbacks}"
        )
