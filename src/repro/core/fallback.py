"""Fallback strategies — Section 3.2.3 of the paper.

Two failure modes of the index are monitored after a warmup period (30% of
the dataset, so the histogram sketches are reasonably accurate) and then
every ``F * n`` processed elements:

* **Tree fallback** — the tree is ineffective when the globally greedy leaf
  is *not* the leaf a greedy-only descent reaches (a good arm hides in the
  same subtree as bad arms).  Remedy: flatten the index, preserving the
  clustering.
* **Clustering fallback** — the clustering is ineffective when greedy
  exploitation yields a lower STK-versus-time slope than uniform sampling:

  ``slope_bandit  = max_l E[Delta_{t,l}] / (scoring latency + bandit latency)``
  ``slope_sample  = sum_l |D_l| E[Delta_{t,l}] / (sum_l |D_l| * scoring latency)``

  Remedy: shuffle all remaining elements and scan (uniform sampling, which
  suits the anytime query model better than a linear scan).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.core.hierarchical import HierarchicalBanditPolicy
from repro.core.histogram import gain_batch
from repro.utils.validation import check_fraction


class FallbackDecision(str, enum.Enum):
    """Outcome of one periodic fallback check."""

    NONE = "none"
    FLATTEN_TREE = "flatten_tree"
    UNIFORM_SCAN = "uniform_scan"


@dataclass
class FallbackConfig:
    """Fallback policy knobs (paper defaults).

    Attributes
    ----------
    enabled:
        Master switch (the paper's "no fallback" ablation sets this False).
    warmup_fraction:
        Fraction of the dataset processed before the first check (0.3).
    check_frequency:
        ``F``: re-check after every ``F * n`` further elements (0.01).
    enable_tree_fallback / enable_clustering_fallback:
        Fine-grained switches for the two conditions.
    """

    enabled: bool = True
    warmup_fraction: float = 0.3
    check_frequency: float = 0.01
    enable_tree_fallback: bool = True
    enable_clustering_fallback: bool = True

    def __post_init__(self) -> None:
        check_fraction(self.warmup_fraction, "warmup_fraction")
        check_fraction(self.check_frequency, "check_frequency",
                       inclusive_low=False)


class FallbackController:
    """Schedules and evaluates the two fallback conditions."""

    def __init__(self, config: FallbackConfig, n_total: int) -> None:
        self.config = config
        self.n_total = int(n_total)
        self._warmup = int(math.ceil(config.warmup_fraction * n_total))
        self._interval = max(1, int(round(config.check_frequency * n_total)))
        self._next_check = max(self._warmup, 1)
        self.n_checks = 0

    @property
    def next_check_at(self) -> int:
        """Element count at which the next check fires."""
        return self._next_check

    def should_check(self, n_processed: int) -> bool:
        """True iff a fallback check is due at ``n_processed`` elements."""
        if not self.config.enabled:
            return False
        if n_processed < self._next_check:
            return False
        self._next_check = n_processed + self._interval
        self.n_checks += 1
        return True

    def evaluate(self, policy: HierarchicalBanditPolicy,
                 threshold: float | None,
                 scoring_latency: float,
                 bandit_latency: float) -> FallbackDecision:
        """Evaluate both conditions; the tree condition is tested first.

        Latencies are per-element seconds, "measured dynamically" by the
        engine (ours: virtual scoring latency from the scorer's model, real
        measured bandit overhead).
        """
        if policy.exhausted:
            return FallbackDecision.NONE
        if (
            self.config.enable_tree_fallback
            and not policy.flattened
            and self.tree_condition(policy, threshold)
        ):
            return FallbackDecision.FLATTEN_TREE
        if self.config.enable_clustering_fallback and self.clustering_condition(
            policy, threshold, scoring_latency, bandit_latency
        ):
            return FallbackDecision.UNIFORM_SCAN
        return FallbackDecision.NONE

    @staticmethod
    def tree_condition(policy: HierarchicalBanditPolicy,
                       threshold: float | None) -> bool:
        """True iff greedy descent misses the globally greedy leaf."""
        greedy = policy.greedy_leaf(threshold)
        reached = policy.greedy_descent_leaf(threshold)
        return greedy is not reached

    @staticmethod
    def clustering_condition(policy: HierarchicalBanditPolicy,
                             threshold: float | None,
                             scoring_latency: float,
                             bandit_latency: float) -> bool:
        """True iff uniform sampling's estimated slope beats the bandit's."""
        leaves = policy.active_leaves()
        if not leaves:
            return False
        # One vectorized pass over all leaves (cache-served between
        # observations); the slope arithmetic below is unchanged.
        gains = [float(g) for g in gain_batch(
            [leaf.histogram for leaf in leaves], threshold
        )]
        sizes = [leaf.remaining for leaf in leaves]
        total_size = sum(sizes)
        if total_size == 0:
            return False
        scoring_latency = max(scoring_latency, 1e-12)
        slope_bandit = max(gains) / (scoring_latency + max(bandit_latency, 0.0))
        weighted_gain = sum(size * gain for size, gain in zip(sizes, gains))
        slope_sample = weighted_gain / (total_size * scoring_latency)
        return slope_sample > slope_bandit
