"""Theoretical variant of the bandit — Section 3.1 of the paper.

The analysis-friendly setting: the scoring domain is a finite set of
non-negative integers, each arm is a probability mass function over that
domain, and the agent draws scores directly.  The bandit keeps exact
per-outcome counters ``N_{l,x}`` and exploits via Equation 3:

``argmax_l  sum_x (N_{l,x} / N_l) * max(x - (S_{t-1})_(k), 0)``

This variant backs the regret-bound sanity benchmarks (Theorem 4.4): on
discrete domains its expected STK approaches ``(1 - e^{-1-1/2T}) OPT``.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.core.minmax_heap import TopKBuffer
from repro.core.policies import ExplorationSchedule, PolynomialDecay
from repro.errors import ConfigurationError, ExhaustedError
from repro.utils.rng import SeedLike, as_generator


class DiscreteArm:
    """A known-support, unknown-probability arm over non-negative integers.

    Parameters
    ----------
    arm_id:
        Stable identifier.
    support:
        The outcome values (non-negative integers).
    probabilities:
        Outcome probabilities (same length as ``support``; must sum to 1).
    """

    def __init__(self, arm_id: str, support: Sequence[int],
                 probabilities: Sequence[float]) -> None:
        if len(support) != len(probabilities) or not support:
            raise ConfigurationError("support/probabilities must align and be non-empty")
        support_arr = np.asarray(support, dtype=int)
        probs = np.asarray(probabilities, dtype=float)
        if (support_arr < 0).any():
            raise ConfigurationError("discrete domain must be non-negative integers")
        if (probs < 0).any() or not np.isclose(probs.sum(), 1.0, atol=1e-8):
            raise ConfigurationError("probabilities must be non-negative and sum to 1")
        self.arm_id = arm_id
        self.support = support_arr
        self.probabilities = probs / probs.sum()

    def sample(self, rng: np.random.Generator) -> int:
        """Draw one outcome i.i.d. from the arm's distribution."""
        return int(rng.choice(self.support, p=self.probabilities))

    def exact_marginal_gain(self, threshold: float | None) -> float:
        """Ground-truth ``E[Delta]`` for a known distribution (Eq. 2)."""
        if threshold is None:
            return float(np.dot(self.probabilities, self.support))
        excess = np.maximum(self.support - threshold, 0.0)
        return float(np.dot(self.probabilities, excess))

    def mean(self) -> float:
        """Expected outcome value."""
        return float(np.dot(self.probabilities, self.support))


class DiscreteTopKBandit:
    """Exact-counter epsilon-greedy bandit of Section 3.1.

    Maintains visit counts ``N_l`` and outcome counts ``N_{l,x}`` per arm and
    exploits using the empirical version of Equation 3.  Arms are sampled
    i.i.d. (with replacement), matching Definition 2.2.
    """

    def __init__(self, arms: Iterable[DiscreteArm], k: int,
                 exploration: ExplorationSchedule | None = None,
                 rng: SeedLike = None) -> None:
        self.arms: Dict[str, DiscreteArm] = {}
        for arm in arms:
            if arm.arm_id in self.arms:
                raise ConfigurationError(f"duplicate arm id {arm.arm_id!r}")
            self.arms[arm.arm_id] = arm
        if not self.arms:
            raise ConfigurationError("bandit requires at least one arm")
        self.exploration = exploration or PolynomialDecay()
        self._rng = as_generator(rng)
        self.buffer: TopKBuffer[str] = TopKBuffer(k)
        self.visits: Dict[str, int] = {arm_id: 0 for arm_id in self.arms}
        self.outcome_counts: Dict[str, Counter] = {
            arm_id: Counter() for arm_id in self.arms
        }
        self.t = 0
        self.n_explore = 0

    @property
    def stk(self) -> float:
        """Running Sum-of-Top-k."""
        return self.buffer.stk

    def empirical_gain(self, arm_id: str, threshold: float | None) -> float:
        """Empirical ``E[Delta_{t,l}]`` from the exact counters (Eq. 3)."""
        visits = self.visits[arm_id]
        if visits == 0:
            return 0.0
        counts = self.outcome_counts[arm_id]
        if threshold is None:
            return sum(count * outcome for outcome, count in counts.items()) / visits
        total = 0.0
        for outcome, count in counts.items():
            if outcome > threshold:
                total += count * (outcome - threshold)
        return total / visits

    def greedy_arm(self) -> str:
        """Empirically best arm under Equation 3, ties broken at random."""
        threshold = self.buffer.threshold
        gains = {
            arm_id: self.empirical_gain(arm_id, threshold) for arm_id in self.arms
        }
        best = max(gains.values())
        tied = [arm_id for arm_id, gain in gains.items() if gain >= best - 1e-15]
        return tied[int(self._rng.integers(len(tied)))]

    def step(self) -> float:
        """Run one iteration; return the realized marginal gain."""
        self.t += 1
        arm_ids = list(self.arms)
        if self._rng.random() < self.exploration.rate(self.t):
            self.n_explore += 1
            arm_id = arm_ids[int(self._rng.integers(len(arm_ids)))]
        else:
            arm_id = self.greedy_arm()
        outcome = self.arms[arm_id].sample(self._rng)
        self.visits[arm_id] += 1
        self.outcome_counts[arm_id][outcome] += 1
        return self.buffer.offer(float(outcome), arm_id)

    def run(self, budget: int) -> TopKBuffer[str]:
        """Run ``budget`` iterations and return the solution buffer."""
        for _ in range(budget):
            self.step()
        return self.buffer
