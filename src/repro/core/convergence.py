"""Confidence-bounded convergence for anytime top-k execution.

The streaming and sharded coordinators stop either when the budget runs
out or when a *stability heuristic* fires (``stable_slices``: no shard
moved the top-k for a while).  Stability is not a certificate — opaque
scores admit no distribution-free guarantees — but the shards already
maintain exactly the state needed for a *model-based* certificate: every
shard's root score sketch (:mod:`repro.core.histogram` /
:mod:`repro.core.sketches`) estimates the score distribution of its
still-active region, and the coordinator knows the global k-th score
``(S)_(k)`` and how much budget remains.

This module turns that state into an explicit displacement probability,
in the spirit of progressive/anytime query processing (report the
answer *with* its uncertainty):

* :class:`TailSummary` — a light, JSON-safe snapshot of one shard's
  unscored mass: how many elements are undrawn, the sketch's survival
  curve ``tau -> P(X > tau)``, and the shard's currently-held top
  scores (so the known answer rows are excluded from the tail).
* :class:`ConvergenceBound` — the coordinator-side accumulator.  At
  every merge it combines the global threshold with each shard's tail
  summary into two union bounds:

  - ``drive_bound`` — an upper estimate of the probability that the
    *remainder of the current budgeted drive* still changes the top-k.
    The remaining budget ``R`` is allocated adversarially across shards
    (most displacement-prone first, capped by each shard's undrawn
    count), and each allocated draw contributes its shard's excess tail
    mass above the threshold.  This is the quantity a ``CONFIDENCE p``
    stopping rule compares against ``1 - p``.
  - ``exhaustive_bound`` — the same union bound with the budget cap
    removed: an upper estimate of the probability that *any* unscored
    element anywhere would displace the current top-k, i.e. the distance
    to the exact full-table answer.  This is what a finished budgeted
    run reports next to its answer.

Both bounds are maintained as running minima — an earlier certificate
stays valid later, because the unscored set only shrinks and the
threshold only rises — so they are monotone non-increasing over a drive
(``drive_bound`` resets when a new drive begins with fresh budget;
``exhaustive_bound`` never resets).

Honesty note (normative statement in ``docs/streaming.md``): the tail
probabilities come from *sketches of observed scores*, so the result is
a principled estimate under the sketch model, not a distribution-free
guarantee.  Two biases act in the safe direction — the bandit samples
high-scoring clusters more than uniformly (observed tails dominate
unscored tails) and the histogram's uniform-in-bin evaluation
overestimates extreme tails — while exhausted-cluster subtraction can
act in the unsafe one.  ``benchmarks/bench_confidence.py`` validates
the net behaviour empirically.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, SerializationError

#: Interpolation modes for :meth:`TailSummary.survival_at`.
_KINDS = ("linear", "step")

#: Honesty floor for the union bounds: finite observations can never
#: certify displacement probability *exactly* zero while an unscored
#: element could still be drawn — a sketch only summarizes what was
#: seen, and a hidden tail (``tests/test_hidden_tail.py``) sits exactly
#: in the mass it never saw.  The floor is far below any usable
#: ``CONFIDENCE`` level, so it never changes a stopping decision; it
#: only keeps a reported bound of "0.0" reserved for genuine certainty
#: (everything scored, or no budget left in the drive).
_MIN_RESIDUAL = 1e-9


@dataclass(frozen=True)
class TailSummary:
    """One shard's unscored-mass summary, shipped inside a slice outcome.

    ``support``/``survival`` describe the sketch's survival function
    ``tau -> P(X > tau)`` at its breakpoints; ``kind`` selects how to
    evaluate between breakpoints (``linear`` for histograms, whose tail
    mass is piecewise linear under the uniform-in-bin assumption;
    ``step`` for empirical sketches).  ``mass`` is diagnostic metadata —
    the observation count backing the curve — recorded so bound decisions
    can be audited for evidence strength; no bound computation reads it.
    All fields are JSON-safe and picklable.
    """

    n_remaining: int
    support: Tuple[float, ...]
    survival: Tuple[float, ...]
    mass: float
    kind: str = "linear"

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"unknown tail kind {self.kind!r}; expected one of {_KINDS}"
            )
        if len(self.support) != len(self.survival):
            raise ConfigurationError(
                "support and survival must have equal length"
            )

    def survival_at(self, threshold: float) -> float:
        """Estimated ``P(X > threshold)`` under the sketch.

        An empty curve (sketch never observed anything) conservatively
        returns 1.0 while mass remains, 0.0 once nothing is undrawn.
        """
        if self.n_remaining <= 0:
            return 0.0
        if not self.support:
            return 1.0
        tau = float(threshold)
        if tau < self.support[0]:
            return 1.0
        if tau >= self.support[-1]:
            return float(self.survival[-1])
        hi = bisect.bisect_right(self.support, tau)
        lo = hi - 1
        if self.kind == "step":
            return float(self.survival[lo])
        x0, x1 = self.support[lo], self.support[hi]
        y0, y1 = self.survival[lo], self.survival[hi]
        if x1 <= x0:
            return float(min(y0, y1))
        frac = (tau - x0) / (x1 - x0)
        return float(y0 + frac * (y1 - y0))

    def displacement_rate(self, threshold: float) -> float:
        """Per-draw probability that a fresh draw beats ``threshold``.

        A fresh (unscored) element is treated as exchangeable with the
        shard's past draws, so this is just the sketch survival clamped
        to ``[0, 1]`` — deliberately *without* excluding the mass of the
        rows already held in buffers: those observations are evidence
        about the region's tail like any other.  The rate reaches zero
        only when the sketch genuinely shows no remaining mass above the
        threshold (exhausted clusters subtracted out, or the threshold
        passed the active region's range) — which is exactly the event
        that certifies convergence.
        """
        return min(1.0, max(0.0, self.survival_at(threshold)))

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation, for external persistence of bounds.

        Summaries cross process pipes as pickled dataclasses and are not
        part of the engine snapshot formats; this pair exists for callers
        that archive bound evidence next to traces or reports.
        """
        return {
            "n_remaining": self.n_remaining,
            "support": list(self.support),
            "survival": list(self.survival),
            "mass": self.mass,
            "kind": self.kind,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TailSummary":
        """Rebuild a summary from :meth:`to_dict` output."""
        try:
            return cls(
                n_remaining=int(payload["n_remaining"]),
                support=tuple(float(x) for x in payload["support"]),
                survival=tuple(float(x) for x in payload["survival"]),
                mass=float(payload["mass"]),
                kind=str(payload.get("kind", "linear")),
            )
        except (KeyError, TypeError, ValueError,
                ConfigurationError) as exc:
            raise SerializationError(
                f"malformed tail summary payload: {exc}"
            ) from exc


#: Mixture curves are evaluated on at most this many breakpoints; unions
#: of many leaves' bin edges beyond it are resampled onto a uniform grid.
_MAX_BREAKPOINTS = 513


def _leaf_mixture_curve(leaves) -> Optional[Tuple[Tuple[float, ...],
                                                  Tuple[float, ...]]]:
    """Undrawn-count-weighted mixture of per-leaf linear survival curves.

    ``leaves`` is ``[(n_undrawn, sketch), ...]``.  The mixture estimates
    ``P(fresh draw > tau)`` as ``sum_l w_l * P_l(X > tau)`` with weights
    proportional to each leaf's undrawn count — the per-cluster grain the
    paper's sketches already model.  Its decisive property over a single
    root curve: a leaf whose entire range sits below the threshold
    contributes *exactly* zero, with no cross-cluster bin smear, so the
    shard's tail genuinely drains as its top clusters drain.  Returns
    ``None`` when any sketch is non-linear or opaque (caller falls back
    to the root sketch).
    """
    curves = []
    total = 0
    for n_undrawn, sketch in leaves:
        if n_undrawn <= 0:
            continue
        curve = getattr(sketch, "survival_curve", None)
        if curve is None:
            return None
        support, survival, kind = curve()
        if support and kind != "linear":
            return None
        curves.append((n_undrawn, np.asarray(support, dtype=float),
                       np.asarray(survival, dtype=float)))
        total += n_undrawn
    if not curves or total <= 0:
        return None
    breakpoints = np.unique(np.concatenate(
        [support for _n, support, _s in curves if len(support)] or
        [np.zeros(1)]
    ))
    if len(breakpoints) > _MAX_BREAKPOINTS:
        breakpoints = np.linspace(breakpoints[0], breakpoints[-1],
                                  _MAX_BREAKPOINTS)
    mixture = np.zeros(len(breakpoints))
    for n_undrawn, support, survival in curves:
        weight = n_undrawn / total
        if len(support) == 0:
            # Never-sampled leaf: unknown tail, conservatively 1.
            mixture += weight
            continue
        component = np.interp(breakpoints, support, survival,
                              left=1.0, right=0.0)
        # np.interp clamps to survival[0] left of the support; restore
        # the conservative 1.0 below the sketch's lowest edge.
        component[breakpoints < support[0]] = 1.0
        mixture += weight * component
    return (tuple(float(x) for x in breakpoints),
            tuple(float(x) for x in mixture))


def tail_summary_from_engine(engine) -> TailSummary:
    """Summarize one shard engine's unscored mass for the coordinator.

    Prefers the per-leaf mixture curve (tight: no cross-cluster smear);
    falls back to the root sketch — which aggregates every observation on
    the shard minus exhausted-and-dropped clusters — for custom or
    non-linear sketch factories.  Sketches without a ``survival_curve``
    degrade to the conservative empty curve, i.e. a per-draw displacement
    rate of 1.  In scan-fallback mode the sketches (and the per-leaf
    undrawn counters) freeze, so the summary goes stale in the
    conservative direction — the bound can only be looser, never tighter,
    than the frozen evidence.
    """
    n_remaining = max(0, engine.n_total - engine.n_scored)
    root = engine.policy.root
    mass = float(getattr(root.histogram, "total_mass", 0.0))
    mixture = _leaf_mixture_curve(
        [(leaf.remaining, leaf.histogram)
         for leaf in _iter_leaves(root)]
    )
    if mixture is not None:
        support, survival = mixture
        return TailSummary(n_remaining=n_remaining, support=support,
                           survival=survival, mass=mass, kind="linear")
    curve = getattr(root.histogram, "survival_curve", None)
    if curve is not None:
        support, survival, kind = curve()
    else:
        support, survival, kind = (), (), "step"
    return TailSummary(
        n_remaining=n_remaining,
        support=tuple(support),
        survival=tuple(survival),
        mass=mass,
        kind=kind,
    )


def _iter_leaves(node):
    """Yield the arm-carrying leaves beneath ``node`` (bandit mirror)."""
    stack = [node]
    while stack:
        current = stack.pop()
        if current.arm is not None:
            yield current
        else:
            stack.extend(current.children)


@dataclass
class ConvergenceBound:
    """Coordinator-side displacement-probability accumulator.

    One instance lives for the whole run; :meth:`update` absorbs each
    arriving shard tail, :meth:`refresh` recomputes the two union bounds
    at the current threshold and folds them into the running minima.
    ``begin_drive`` resets the drive-scoped minimum (a fresh budget can
    legitimately raise the probability that the answer still changes);
    the exhaustive minimum survives drives and snapshots.
    """

    n_shards: int
    tails: List[Optional[TailSummary]] = field(default=None)  # type: ignore[assignment]
    drive_bound: float = 1.0
    exhaustive_bound: float = 1.0

    def __post_init__(self) -> None:
        if self.n_shards <= 0:
            raise ConfigurationError(
                f"n_shards must be positive, got {self.n_shards!r}"
            )
        if self.tails is None:
            self.tails = [None] * self.n_shards

    def begin_drive(self) -> None:
        """Reset the drive-scoped certificate for a new budgeted drive."""
        self.drive_bound = 1.0

    def update(self, worker_id: int, tail: Optional[TailSummary]) -> None:
        """Absorb one shard's latest tail summary (``None`` keeps the old)."""
        if tail is not None:
            self.tails[worker_id] = tail

    def _union_bound(self, threshold: float,
                     remaining_budget: Optional[int]) -> float:
        """Adversarial-allocation union bound at ``threshold``.

        Allocates up to ``remaining_budget`` future draws across shards,
        most displacement-prone first, each capped by the shard's undrawn
        count; ``None`` removes the budget cap (exhaustive semantics).
        A shard that never reported a tail is unbounded: result 1.0.
        """
        rates: List[Tuple[float, int]] = []
        for tail in self.tails:
            if tail is None:
                return 1.0
            if tail.n_remaining <= 0:
                continue
            rates.append((tail.displacement_rate(threshold),
                          tail.n_remaining))
        rates.sort(reverse=True)
        budget = (sum(n for _rate, n in rates)
                  if remaining_budget is None else max(0, remaining_budget))
        drawable = bool(rates) and budget > 0
        total = 0.0
        for rate, n_remaining in rates:
            if budget <= 0 or total >= 1.0:
                break
            take = min(budget, n_remaining)
            total += take * rate
            budget -= take
        if total <= 0.0 and drawable:
            # Some unscored element can still be drawn: zero is more
            # certainty than finite evidence supports (see _MIN_RESIDUAL).
            return _MIN_RESIDUAL
        return min(1.0, total)

    def refresh(self, threshold: Optional[float], buffer_full: bool,
                remaining_budget: int) -> float:
        """Recompute both bounds and return the current drive bound.

        With the buffer not yet full (no threshold exists) every unscored
        element trivially enters the answer: both bounds stay at 1.0.
        """
        if buffer_full and threshold is not None:
            self.drive_bound = min(
                self.drive_bound,
                self._union_bound(threshold, remaining_budget),
            )
            self.exhaustive_bound = min(
                self.exhaustive_bound,
                self._union_bound(threshold, None),
            )
        return self.drive_bound


def check_confidence(confidence: Optional[float]) -> Optional[float]:
    """Validate a ``CONFIDENCE`` level: a float strictly inside (0, 1)."""
    if confidence is None:
        return None
    confidence = float(confidence)
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(
            f"confidence must lie strictly inside (0, 1), got {confidence!r}"
        )
    return confidence
