"""Standing ``CONTINUOUS`` queries over live tables.

A query with the ``CONTINUOUS`` clause is a *subscription*, not a
dispatch: the answer is recomputed whenever committed writes may have
changed it, and a fresh
:class:`~repro.streaming.engine.ProgressiveResult` snapshot is emitted
only when the top-k actually moved.  :class:`ContinuousQuery` is the
driver: each cycle plans against the table's newest committed version
(pinning a snapshot, exactly like a one-shot query), executes to
convergence, and compares the ``(id, score)`` answer with the previous
emission.

Cost model: the cross-query memo makes re-emission cheap — elements
untouched by the intervening writes hit their memoized scores (the MVCC
stamps only invalidate rewritten ids), so a cycle's fresh UDF calls are
proportional to the write batch, not the table.  When a
:class:`~repro.service.budget.QueryGrant` is attached, each cycle is
metered against the tenant's budget and the grant is *re-armed*
(consumed calls refunded) after the cycle — a standing query holds a
per-cycle reservation, it does not drain the tenant forever.

The session refuses to ``execute()``/``stream()`` a ``CONTINUOUS``
query directly; drive it here, or submit it to the multi-tenant
:class:`~repro.service.service.QueryService`, which hosts one of these
per standing query with cancel/disconnect semantics.
"""

from __future__ import annotations

import threading
from dataclasses import replace
from typing import Iterator, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.obs.metrics import CONTINUOUS_EMITS
from repro.query.parser import parse
from repro.query.plan import QueryPlan
from repro.streaming.engine import ProgressiveResult

#: Default wait granularity of :meth:`ContinuousQuery.snapshots` —
#: cancellation is observed at this cadence while no write commits.
DEFAULT_POLL = 0.1


class ContinuousQuery:
    """One standing query: re-emit the top-k as committed writes land.

    Parameters
    ----------
    session:
        The :class:`~repro.session.OpaqueQuerySession` (or a fork) the
        query's table and UDF are registered on.
    query:
        Dialect text or a parsed :class:`~repro.query.plan.QueryPlan`;
        must carry the ``CONTINUOUS`` clause and reference a
        :class:`~repro.live.table.LiveTable`.
    gate:
        Optional :class:`~repro.service.budget.QueryGrant`-shaped budget
        gate, re-armed after every cycle (see the module docstring).
    poll:
        Seconds between cancellation checks while waiting for a commit.
    defaults:
        Caller-side clause defaults forwarded to every cycle's
        ``execute()`` (``workers=``, ``backend=``, ``use_cache=`` ...).
    """

    def __init__(self, session, query: Union[str, QueryPlan], *,
                 gate=None, poll: float = DEFAULT_POLL,
                 **defaults) -> None:
        logical = parse(query) if isinstance(query, str) else query
        if not logical.continuous:
            raise ConfigurationError(
                "ContinuousQuery needs a CONTINUOUS clause; one-shot "
                "queries go through session.execute()"
            )
        if logical.explain:
            raise ConfigurationError(
                "EXPLAIN queries return a plan and cannot stand"
            )
        live = session._live_table(logical.table)
        if live is None:
            raise ConfigurationError(
                f"table {logical.table!r} is not a LiveTable; CONTINUOUS "
                f"queries need a mutable table to watch"
            )
        self._session = session
        self._live = live
        self._table = logical.table
        # Each cycle is an ordinary one-shot dispatch of the same query.
        self._cycle = replace(logical, continuous=False)
        self._gate = gate
        self._poll = float(poll)
        self._defaults = dict(defaults)
        self._cancelled = threading.Event()
        self._version = -1        # last version a cycle executed against
        self._answer: Optional[Tuple] = None
        self._changed = False
        self.n_cycles = 0
        self.n_emits = 0

    # -- lifecycle -----------------------------------------------------------

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` was called."""
        return self._cancelled.is_set()

    def cancel(self) -> None:
        """Stop the subscription; waiters return at the next poll tick."""
        self._cancelled.set()

    # -- one cycle -----------------------------------------------------------

    def run_once(self) -> ProgressiveResult:
        """Execute one cycle against the current committed version.

        Always runs (no change detection); updates the standing state so
        a following :meth:`refresh` waits for *newer* commits.  The memo
        keeps unchanged elements warm, so the cycle's fresh UDF calls
        track the writes since the previous cycle, not the table size.
        """
        version = self._live.version
        result = self._session.execute(self._cycle, budget_gate=self._gate,
                                       **self._defaults)
        self._rearm()
        snapshot = self._wrap(result)
        answer = tuple(snapshot.top_k)
        self._changed = self._answer is None or answer != self._answer
        self._answer = answer
        self._version = max(self._version, version)
        self.n_cycles += 1
        return snapshot

    def refresh(self, timeout: Optional[float] = None,
                ) -> Optional[ProgressiveResult]:
        """Wait for a commit past the last cycle, recompute, emit on change.

        Returns the new snapshot when the answer changed (and on the
        very first call, which emits the initial answer), ``None`` when
        the wait timed out, the subscription was cancelled, or the
        commit did not change the top-k.
        """
        if self.cancelled:
            return None
        if self._answer is None:
            return self._emit(self.run_once())
        version = self._live.wait_for_commit(self._version, timeout=timeout)
        if self.cancelled or version <= self._version:
            return None
        snapshot = self.run_once()
        if self._changed:
            return self._emit(snapshot)
        return None

    def snapshots(self) -> Iterator[ProgressiveResult]:
        """The standing subscription: block until :meth:`cancel`.

        Yields the initial answer immediately, then one snapshot per
        answer-changing write batch; commits that leave the top-k intact
        emit nothing (their cycles still run, memo-warm).
        """
        while not self.cancelled:
            snapshot = self.refresh(timeout=self._poll)
            if snapshot is not None:
                yield snapshot

    # -- internals -----------------------------------------------------------

    def _emit(self, snapshot: ProgressiveResult) -> ProgressiveResult:
        self.n_emits += 1
        CONTINUOUS_EMITS.inc(table=self._table)
        return snapshot

    def _rearm(self) -> None:
        """Refund the cycle's consumed grant: standing queries hold a
        per-cycle reservation, not a forever-draining one."""
        gate = self._gate
        if gate is None:
            return
        consumed = getattr(gate, "consumed", 0)
        if consumed:
            gate.refund(consumed)

    def _wrap(self, result) -> ProgressiveResult:
        """Render any executor's final result as one anytime snapshot."""
        items = [(str(element_id), float(score))
                 for element_id, score in result.items]
        k = self._cycle.k
        return ProgressiveResult(
            top_k=items,
            budget_spent=int(result.budget_spent),
            threshold=items[-1][1] if len(items) >= k else None,
            converged=True,
            stk=float(result.stk),
            wall_time=float(getattr(result, "wall_time", 0.0)),
            n_merges=int(getattr(result, "n_merges", 0)),
            backend=str(getattr(result, "backend", "serial")),
            displacement_bound=float(result.displacement_bound),
            exhaustive_bound=float(getattr(result, "exhaustive_bound",
                                           result.displacement_bound)),
        )
