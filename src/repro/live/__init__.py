"""Live tables: versioned writes, incremental index maintenance, and
standing ``CONTINUOUS`` queries.

* :class:`~repro.live.table.LiveTable` — a mutable, versioned
  :class:`~repro.data.dataset.Dataset` with copy-on-write feature
  blocks; every write batch commits a monotone ``table_version`` and a
  replayable :class:`~repro.live.table.WriteDelta`.
* :class:`~repro.live.table.TableSnapshot` — the immutable view one
  query pins at plan time (snapshot isolation against racing writers).
* :class:`~repro.live.maintenance.IndexMaintainer` — keeps the cluster
  tree in step with the write log (route/split/prune incrementally,
  rebuild past the churn threshold) without mutating published trees.
* :class:`~repro.live.continuous.ContinuousQuery` — the standing-query
  driver behind the dialect's ``CONTINUOUS`` clause.

See ``docs/live.md`` for the tour and ``docs/architecture.md`` for the
invariants.
"""

from repro.live.continuous import ContinuousQuery
from repro.live.maintenance import IndexMaintainer, MaintenanceReport
from repro.live.table import LiveTable, TableSnapshot, WriteDelta

__all__ = [
    "ContinuousQuery",
    "IndexMaintainer",
    "LiveTable",
    "MaintenanceReport",
    "TableSnapshot",
    "WriteDelta",
]
