"""Incremental cluster-tree maintenance for live tables.

The index builder (:mod:`repro.index.builder`) freezes a tree at
``register_table``; this module keeps that tree in step with a
:class:`~repro.live.table.LiveTable`'s write log without re-running
k-means + HAC per write:

* **appends** are routed root-to-leaf by nearest running-mean centroid
  (per-node ``(sum, count)`` aggregates maintained here — the builder's
  internal nodes carry no centroid of their own);
* **overflowing leaves split** into two children via a deterministic
  farthest-pair 2-means (``index_splits_total`` counts them);
* **updates** re-route the element (remove with the old feature row,
  insert with the new one);
* **deletes** shrink leaves and prune emptied subtrees.

Every ``advance`` publishes a *new* :class:`~repro.index.tree.ClusterTree`
(nodes cloned, untouched member tuples shared) so engines that mirrored
the previous tree keep a consistent structure — published trees are
never mutated in place.  The report names every touched node so the
session can dirty exactly the affected histogram priors (the PR 1
gain-cache invalidation hooks fire inside the engines automatically
when a fresh tree is mirrored).

When cumulative churn since the last build exceeds
``rebuild_threshold`` of the table, ``advance`` falls back to a full
rebuild (the quality backstop: incremental routing matches the
builder's *assignment* rule, not its global re-clustering).  Either
way the maintained tree is a valid index over exactly the live ids —
the differential tests in ``tests/test_live.py`` prove unbudgeted
query answers are identical to a fresh rebuild's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.index.tree import ClusterNode, ClusterTree
from repro.live.table import TableSnapshot, WriteDelta
from repro.obs.metrics import INDEX_SPLITS_TOTAL

#: Advance reports retained in :attr:`IndexMaintainer.touched_log`.
MAX_TOUCHED_LOG = 128


@dataclass
class MaintenanceReport:
    """What one :meth:`IndexMaintainer.advance` call did."""

    version_from: int
    version_to: int
    routed: int = 0
    removed: int = 0
    splits: int = 0
    rebuilt: bool = False
    #: Node ids whose membership changed (all of them after a rebuild).
    touched_nodes: Tuple[str, ...] = ()


class IndexMaintainer:
    """Keeps one table's cluster tree in step with its write log.

    Parameters
    ----------
    tree:
        The freshly built tree covering ``snapshot``.
    snapshot:
        The table version the tree was built from.
    rebuild:
        Callback ``(TableSnapshot) -> ClusterTree`` used when churn
        crosses the threshold (the session closes over its index seed
        and sizing policy here).
    max_leaf_size:
        Split trigger; defaults to twice the initial mean leaf size.
    rebuild_threshold:
        Full-rebuild fallback once cumulative churn exceeds this
        fraction of the table size at the last build.
    """

    def __init__(self, tree: ClusterTree, snapshot: TableSnapshot,
                 rebuild: Callable[[TableSnapshot], ClusterTree],
                 *, max_leaf_size: Optional[int] = None,
                 rebuild_threshold: float = 0.5,
                 table: str = "live") -> None:
        self._tree = tree
        self._rebuild = rebuild
        self._rebuild_threshold = float(rebuild_threshold)
        self._table = str(table)
        self.version = int(snapshot.version)
        self.freshness = "built"
        self.n_splits = 0
        self.n_rebuilds = 0
        self._churn = 0
        self._size_at_build = max(1, tree.n_elements())
        if max_leaf_size is None:
            n_leaves = max(1, tree.n_leaves())
            max_leaf_size = max(8, 2 * ((tree.n_elements() + n_leaves - 1)
                                        // n_leaves))
        self.max_leaf_size = int(max_leaf_size)
        #: ``(version_to, touched node ids)`` per advance, newest last.
        #: The maintainer is shared across session forks but warm-start
        #: prior stores are fork-private, so each fork replays this log
        #: to dirty exactly its own stale node histograms.
        self.touched_log: List[Tuple[int, Tuple[str, ...]]] = []
        #: Lowest version the log still covers; a consumer synced below
        #: it has gaps and must drop all priors instead.
        self.log_floor = self.version
        self._sum: Dict[str, np.ndarray] = {}
        self._count: Dict[str, int] = {}
        self._leaf_of: Dict[str, str] = {}
        self._attach_aggregates(snapshot)

    @property
    def tree(self) -> ClusterTree:
        """The current (never-mutated-in-place) published tree."""
        return self._tree

    def stats(self) -> Dict[str, object]:
        return {"version": self.version, "freshness": self.freshness,
                "splits": self.n_splits, "rebuilds": self.n_rebuilds,
                "max_leaf_size": self.max_leaf_size,
                "leaves": self._tree.n_leaves(),
                "elements": self._tree.n_elements()}

    # -- the one mutation entry point ----------------------------------------

    def advance(self, deltas: Sequence[WriteDelta],
                snapshot: TableSnapshot) -> MaintenanceReport:
        """Fold committed deltas in; publish a new tree at ``snapshot``.

        ``snapshot`` must be the table state *after* the last delta —
        split feature lookups and the rebuild fallback both read it.
        """
        report = MaintenanceReport(version_from=self.version,
                                   version_to=snapshot.version)
        if not deltas:
            self.version = snapshot.version
            return report

        self._churn += sum(len(delta.ids) for delta in deltas)
        if self._churn > self._rebuild_threshold * self._size_at_build:
            self._full_rebuild(snapshot)
            report.rebuilt = True
            report.touched_nodes = tuple(
                node.node_id for node in self._tree.nodes())
            report.version_to = self.version
            self._log_touched(report)
            return report

        nodes, parent, root = self._clone()
        touched: Set[str] = set()
        splits_before = self.n_splits
        for delta in deltas:
            if delta.kind == "append":
                assert delta.rows is not None
                for element_id, row in zip(delta.ids, delta.rows):
                    self._insert(element_id, row, nodes, parent, root,
                                 touched, snapshot)
                    report.routed += 1
            elif delta.kind == "update":
                assert delta.rows is not None and delta.old_rows is not None
                for element_id, row, old in zip(delta.ids, delta.rows,
                                                delta.old_rows):
                    self._remove(element_id, old, nodes, parent, touched)
                    self._insert(element_id, row, nodes, parent, root,
                                 touched, snapshot)
                    report.routed += 1
            elif delta.kind == "delete":
                assert delta.old_rows is not None
                for element_id, old in zip(delta.ids, delta.old_rows):
                    self._remove(element_id, old, nodes, parent, touched)
                    report.removed += 1
            else:  # pragma: no cover - the table only emits these kinds
                raise ConfigurationError(f"unknown delta kind {delta.kind!r}")

        self._tree = ClusterTree(root)
        report.splits = self.n_splits - splits_before
        report.touched_nodes = tuple(sorted(touched))
        self.version = snapshot.version
        self.freshness = "incremental"
        self._log_touched(report)
        return report

    def _log_touched(self, report: MaintenanceReport) -> None:
        self.touched_log.append((report.version_to, report.touched_nodes))
        if len(self.touched_log) > MAX_TOUCHED_LOG:
            trimmed = len(self.touched_log) - MAX_TOUCHED_LOG
            self.log_floor = self.touched_log[trimmed - 1][0]
            del self.touched_log[:trimmed]

    # -- aggregates ----------------------------------------------------------

    def _attach_aggregates(self, snapshot: TableSnapshot) -> None:
        self._sum.clear()
        self._count.clear()
        self._leaf_of.clear()

        def fill(node: ClusterNode) -> Tuple[np.ndarray, int]:
            if node.is_leaf:
                members = list(node.member_ids)
                if members:
                    rows = snapshot.features_of(members)
                    total = rows.sum(axis=0)
                else:
                    total = np.zeros(snapshot.features().shape[1] or 1,
                                     dtype=float)
                for member in members:
                    self._leaf_of[member] = node.node_id
                self._sum[node.node_id] = total
                self._count[node.node_id] = len(members)
                return total, len(members)
            total, count = None, 0
            for child in node.children:
                child_sum, child_count = fill(child)
                total = child_sum.copy() if total is None else total + child_sum
                count += child_count
            assert total is not None
            self._sum[node.node_id] = total
            self._count[node.node_id] = count
            return total, count

        fill(self._tree.root)

    def _mean(self, node_id: str) -> Optional[np.ndarray]:
        count = self._count.get(node_id, 0)
        if not count:
            return None
        return self._sum[node_id] / count

    # -- COW clone -----------------------------------------------------------

    def _clone(self) -> Tuple[Dict[str, ClusterNode],
                              Dict[str, Optional[str]], ClusterNode]:
        """Shallow-clone every node (member tuples/centroids shared).

        The clone is freely mutable; the previously published tree —
        possibly mirrored by in-flight engines — is never touched.
        """
        nodes: Dict[str, ClusterNode] = {}
        parent: Dict[str, Optional[str]] = {}

        def copy(node: ClusterNode, up: Optional[str]) -> ClusterNode:
            clone = ClusterNode(node_id=node.node_id,
                                member_ids=node.member_ids,
                                centroid=node.centroid)
            clone.children = [copy(child, node.node_id)
                              for child in node.children]
            nodes[node.node_id] = clone
            parent[node.node_id] = up
            return clone

        root = copy(self._tree.root, None)
        return nodes, parent, root

    # -- incremental ops -----------------------------------------------------

    def _insert(self, element_id: str, row: np.ndarray,
                nodes: Dict[str, ClusterNode],
                parent: Dict[str, Optional[str]], root: ClusterNode,
                touched: Set[str], snapshot: TableSnapshot) -> None:
        node = root
        while not node.is_leaf:
            best, best_dist = None, np.inf
            for child in node.children:
                mean = self._mean(child.node_id)
                if mean is None:
                    continue
                dist = float(np.dot(row - mean, row - mean))
                if dist < best_dist:
                    best, best_dist = child, dist
            if best is None:
                best = node.children[0]
            node = best
        node.member_ids = node.member_ids + (element_id,)
        self._leaf_of[element_id] = node.node_id
        touched.add(node.node_id)
        self._bump(node.node_id, parent, row, +1, touched)
        if len(node.member_ids) > self.max_leaf_size:
            self._split(node, nodes, parent, touched, snapshot)

    def _remove(self, element_id: str, old_row: np.ndarray,
                nodes: Dict[str, ClusterNode],
                parent: Dict[str, Optional[str]],
                touched: Set[str]) -> None:
        leaf_id = self._leaf_of.pop(element_id, None)
        if leaf_id is None:
            raise ConfigurationError(
                f"element {element_id!r} is not indexed")
        leaf = nodes[leaf_id]
        leaf.member_ids = tuple(member for member in leaf.member_ids
                                if member != element_id)
        touched.add(leaf_id)
        self._bump(leaf_id, parent, old_row, -1, touched)
        if not leaf.member_ids:
            self._prune(leaf, nodes, parent, touched)

    def _bump(self, node_id: str, parent: Dict[str, Optional[str]],
              row: np.ndarray, sign: int, touched: Set[str]) -> None:
        at: Optional[str] = node_id
        while at is not None:
            self._sum[at] = self._sum[at] + sign * row
            self._count[at] += sign
            touched.add(at)
            at = parent.get(at)

    def _prune(self, node: ClusterNode, nodes: Dict[str, ClusterNode],
               parent: Dict[str, Optional[str]],
               touched: Set[str]) -> None:
        """Unlink an emptied leaf and any ancestors it leaves childless."""
        while True:
            up_id = parent.get(node.node_id)
            if up_id is None:  # the root may stay empty
                return
            up = nodes[up_id]
            up.children = [child for child in up.children
                           if child.node_id != node.node_id]
            touched.add(up_id)
            self._sum.pop(node.node_id, None)
            self._count.pop(node.node_id, None)
            nodes.pop(node.node_id, None)
            parent.pop(node.node_id, None)
            if up.children:
                return
            node = up

    def _split(self, leaf: ClusterNode, nodes: Dict[str, ClusterNode],
               parent: Dict[str, Optional[str]], touched: Set[str],
               snapshot: TableSnapshot) -> None:
        """Promote an overflowing leaf to an internal node with two
        children, assigned by deterministic farthest-pair 2-means."""
        members = list(leaf.member_ids)
        rows = snapshot.features_of(members)
        mean = rows.mean(axis=0)
        seed_a = int(np.argmax(((rows - mean) ** 2).sum(axis=1)))
        seed_b = int(np.argmax(((rows - rows[seed_a]) ** 2).sum(axis=1)))
        if seed_a == seed_b:  # all rows identical: balanced halving
            half = len(members) // 2
            mask = np.zeros(len(members), dtype=bool)
            mask[:half] = True
        else:
            dist_a = ((rows - rows[seed_a]) ** 2).sum(axis=1)
            dist_b = ((rows - rows[seed_b]) ** 2).sum(axis=1)
            mask = dist_a <= dist_b
            if mask.all() or not mask.any():
                half = len(members) // 2
                mask = np.zeros(len(members), dtype=bool)
                mask[:half] = True
        groups = ([m for m, keep in zip(members, mask) if keep],
                  [m for m, keep in zip(members, mask) if not keep])
        children = []
        for side, group in enumerate(groups):
            child_id = f"{leaf.node_id}.{side}"
            while child_id in nodes:  # re-split of a re-created id
                child_id += "x"
            group_rows = rows[mask] if side == 0 else rows[~mask]
            child = ClusterNode(node_id=child_id,
                                member_ids=tuple(group),
                                centroid=group_rows.mean(axis=0))
            nodes[child_id] = child
            parent[child_id] = leaf.node_id
            self._sum[child_id] = group_rows.sum(axis=0)
            self._count[child_id] = len(group)
            for member in group:
                self._leaf_of[member] = child_id
            touched.add(child_id)
            children.append(child)
        leaf.member_ids = ()
        leaf.centroid = None
        leaf.children = children
        touched.add(leaf.node_id)
        self.n_splits += 1
        INDEX_SPLITS_TOTAL.inc(table=self._table)

    # -- rebuild fallback ----------------------------------------------------

    def _full_rebuild(self, snapshot: TableSnapshot) -> None:
        self._tree = self._rebuild(snapshot)
        self._attach_aggregates(snapshot)
        self.version = snapshot.version
        self.freshness = "rebuilt"
        self.n_rebuilds += 1
        self._churn = 0
        self._size_at_build = max(1, self._tree.n_elements())
