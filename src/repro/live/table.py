"""Versioned mutable tables: append/update/delete with COW snapshots.

A :class:`LiveTable` is a :class:`~repro.data.dataset.Dataset` whose
contents change over time.  Every committed write batch — one
``append``/``update``/``delete`` call — advances a monotone
``table_version`` and is recorded as a :class:`WriteDelta` in the
table's write log, which downstream consumers (incremental index
maintenance, memo/prior/shard-cache invalidation, standing
``CONTINUOUS`` queries) replay to catch up from any older version.

Snapshot isolation is structural, not locked-in-time: feature rows live
in an append-only block — an ``update`` writes a *new* row and repoints
the element's locator, it never mutates the old row in place — so a
:class:`TableSnapshot` taken at version ``v`` keeps reading exactly the
rows that were current at ``v`` no matter how many writes commit while
a query over it is still in flight.  Writers pay a gather per snapshot
(amortized by per-version caching); readers pay nothing.

Writes are observable: each commit increments the process-wide
``writes_total{table, kind}`` counter and records a ``write[kind]``
span fragment (:attr:`LiveTable.spans`, stitchable into any
:class:`~repro.obs.spans.TraceContext` via ``attach``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import Dataset, InMemoryDataset
from repro.errors import ConfigurationError
from repro.obs.metrics import WRITES_TOTAL
from repro.obs.spans import Span

#: Write-span fragments retained per table (oldest dropped first).
MAX_WRITE_SPANS = 64


@dataclass(frozen=True)
class WriteDelta:
    """One committed write batch, as replayed by downstream consumers.

    ``rows`` are the new feature rows (``None`` for deletes);
    ``old_rows`` the rows the batch replaced (``None`` for appends) —
    incremental maintenance needs both to move centroid aggregates.
    """

    version: int
    kind: str  # "append" | "update" | "delete"
    ids: Tuple[str, ...]
    rows: Optional[np.ndarray] = None
    old_rows: Optional[np.ndarray] = None


class TableSnapshot(InMemoryDataset):
    """An immutable view of one :class:`LiveTable` version.

    A plain :class:`~repro.data.dataset.InMemoryDataset` (so every
    engine, shard builder, and shared-memory path consumes it
    unchanged) plus the ``version`` stamp queries pin at plan time.
    """

    def __init__(self, ids: Sequence[str], objects: Sequence[Any],
                 features: np.ndarray, version: int,
                 table: str = "") -> None:
        super().__init__(ids, objects, features)
        self.version = int(version)
        self.table = table


class LiveTable(Dataset):
    """A mutable, versioned dataset with copy-on-write feature blocks.

    Parameters
    ----------
    ids, objects, features:
        Optional initial contents (committed as version 0).
    dim:
        Feature dimensionality; required when starting empty, otherwise
        inferred from ``features``.
    name:
        Label used in metrics and span fragments.
    """

    def __init__(self, ids: Sequence[str] = (),
                 objects: Optional[Sequence[Any]] = None,
                 features: Optional[np.ndarray] = None,
                 *, dim: Optional[int] = None, name: str = "live") -> None:
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self.name = str(name)

        ids = [str(element_id) for element_id in ids]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("element ids must be unique")
        if objects is None:
            objects = list(ids)
        if len(objects) != len(ids):
            raise ConfigurationError(
                f"{len(ids)} ids for {len(objects)} objects")
        if features is None:
            if ids:
                raise ConfigurationError("initial rows need features")
            if dim is None:
                raise ConfigurationError(
                    "an empty LiveTable needs an explicit dim=")
            features = np.empty((0, int(dim)), dtype=float)
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features.reshape(-1, 1)
        if len(features) != len(ids):
            raise ConfigurationError(
                f"{len(ids)} ids for {len(features)} feature rows")
        if dim is not None and features.shape[1] != int(dim):
            raise ConfigurationError(
                f"features have dim {features.shape[1]}, expected {dim}")

        self._dim = int(features.shape[1])
        capacity = max(16, 2 * len(ids))
        self._block = np.empty((capacity, self._dim), dtype=float)
        self._block[:len(ids)] = features
        self._n_rows = len(ids)  # rows ever written into the block
        self._order: List[str] = list(ids)  # live ids, insertion order
        self._row_of: Dict[str, int] = {eid: row
                                        for row, eid in enumerate(ids)}
        self._objects: Dict[str, Any] = dict(zip(ids, objects))
        self._version = 0
        self._deltas: List[WriteDelta] = []
        self._snapshot_cache: Optional[TableSnapshot] = None
        self.spans: List[dict] = []
        self._write_counts = {"append": 0, "update": 0, "delete": 0}

    # -- write surface -------------------------------------------------------

    def append(self, ids: Sequence[str], objects: Optional[Sequence[Any]],
               features: np.ndarray) -> int:
        """Add new elements; returns the new ``table_version``."""
        started = time.perf_counter()
        ids = [str(element_id) for element_id in ids]
        if not ids:
            raise ConfigurationError("append needs at least one element")
        if len(set(ids)) != len(ids):
            raise ConfigurationError("appended ids must be unique")
        if objects is None:
            objects = list(ids)
        if len(objects) != len(ids):
            raise ConfigurationError(
                f"{len(ids)} ids for {len(objects)} objects")
        rows = self._coerce_rows(features, len(ids))
        with self._cond:
            for element_id in ids:
                if element_id in self._row_of:
                    raise ConfigurationError(
                        f"element id {element_id!r} already present")
            base = self._reserve(len(ids))
            self._block[base:base + len(ids)] = rows
            for offset, element_id in enumerate(ids):
                self._row_of[element_id] = base + offset
                self._order.append(element_id)
            self._objects.update(zip(ids, objects))
            return self._commit("append", ids, rows=rows, started=started)

    def update(self, ids: Sequence[str], features: np.ndarray,
               objects: Optional[Sequence[Any]] = None) -> int:
        """Replace existing elements' features (and optionally objects)."""
        started = time.perf_counter()
        ids = [str(element_id) for element_id in ids]
        if not ids:
            raise ConfigurationError("update needs at least one element")
        if len(set(ids)) != len(ids):
            raise ConfigurationError("updated ids must be unique")
        rows = self._coerce_rows(features, len(ids))
        if objects is not None and len(objects) != len(ids):
            raise ConfigurationError(
                f"{len(ids)} ids for {len(objects)} objects")
        with self._cond:
            self._require_known(ids)
            old_rows = self._block[[self._row_of[eid] for eid in ids]].copy()
            # COW: the old rows stay untouched for pinned snapshots; the
            # locator now points at freshly appended rows.
            base = self._reserve(len(ids))
            self._block[base:base + len(ids)] = rows
            for offset, element_id in enumerate(ids):
                self._row_of[element_id] = base + offset
            if objects is not None:
                self._objects.update(zip(ids, objects))
            return self._commit("update", ids, rows=rows, old_rows=old_rows,
                                started=started)

    def delete(self, ids: Sequence[str]) -> int:
        """Remove elements; returns the new ``table_version``."""
        started = time.perf_counter()
        ids = [str(element_id) for element_id in ids]
        if not ids:
            raise ConfigurationError("delete needs at least one element")
        if len(set(ids)) != len(ids):
            raise ConfigurationError("deleted ids must be unique")
        with self._cond:
            self._require_known(ids)
            old_rows = self._block[[self._row_of[eid] for eid in ids]].copy()
            doomed = set(ids)
            self._order = [eid for eid in self._order if eid not in doomed]
            for element_id in ids:
                del self._row_of[element_id]
                del self._objects[element_id]
            return self._commit("delete", ids, old_rows=old_rows,
                                started=started)

    # -- read surface --------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotone version of the latest committed write."""
        with self._lock:
            return self._version

    def snapshot(self) -> TableSnapshot:
        """Immutable view of the current version (cached per version)."""
        with self._lock:
            if self._snapshot_cache is None:
                rows = [self._row_of[eid] for eid in self._order]
                self._snapshot_cache = TableSnapshot(
                    list(self._order),
                    [self._objects[eid] for eid in self._order],
                    self._block[rows].copy(),
                    version=self._version,
                    table=self.name,
                )
            return self._snapshot_cache

    def deltas_since(self, version: int,
                     upto: Optional[int] = None) -> List[WriteDelta]:
        """Committed deltas with ``version < delta.version <= upto``."""
        with self._lock:
            return [delta for delta in self._deltas
                    if delta.version > version
                    and (upto is None or delta.version <= upto)]

    def wait_for_commit(self, after_version: int,
                        timeout: Optional[float] = None) -> int:
        """Block until a write past ``after_version`` commits.

        Returns the current version (which may still equal
        ``after_version`` if the timeout elapsed first) — standing
        continuous queries park here between emissions.
        """
        with self._cond:
            self._cond.wait_for(lambda: self._version > after_version,
                                timeout=timeout)
            return self._version

    def stats(self) -> Dict[str, Any]:
        """Version, live-row count, and per-kind write counters."""
        with self._lock:
            return {
                "name": self.name,
                "version": self._version,
                "rows": len(self._order),
                "rows_written": self._n_rows,
                "dim": self._dim,
                "writes": dict(self._write_counts),
            }

    # -- Dataset protocol (reads the *current* version) ----------------------

    def ids(self) -> List[str]:
        with self._lock:
            return list(self._order)

    def fetch(self, element_id: str) -> Any:
        with self._lock:
            try:
                return self._objects[element_id]
            except KeyError:
                raise ConfigurationError(
                    f"unknown element id {element_id!r}") from None

    def fetch_batch(self, element_ids: Sequence[str]) -> List[Any]:
        with self._lock:
            try:
                objects = self._objects
                return [objects[element_id] for element_id in element_ids]
            except KeyError as exc:
                raise ConfigurationError(
                    f"unknown element id {exc.args[0]!r}") from None

    def features(self) -> np.ndarray:
        return self.snapshot().features()

    def feature_of(self, element_id: str) -> np.ndarray:
        with self._lock:
            try:
                return self._block[self._row_of[element_id]].copy()
            except KeyError:
                raise ConfigurationError(
                    f"unknown element id {element_id!r}") from None

    def features_of(self, element_ids: Sequence[str]) -> np.ndarray:
        with self._lock:
            try:
                row_of = self._row_of
                rows = [row_of[element_id] for element_id in element_ids]
            except KeyError as exc:
                raise ConfigurationError(
                    f"unknown element id {exc.args[0]!r}") from None
            return self._block[rows].copy()

    def __len__(self) -> int:
        with self._lock:
            return len(self._order)

    # -- internals -----------------------------------------------------------

    def _coerce_rows(self, features: np.ndarray, n: int) -> np.ndarray:
        rows = np.asarray(features, dtype=float)
        if rows.ndim == 1:
            rows = rows.reshape(-1, 1) if self._dim == 1 else rows.reshape(1, -1)
        if rows.shape != (n, self._dim):
            raise ConfigurationError(
                f"expected a ({n}, {self._dim}) feature block, "
                f"got {rows.shape}")
        return rows.copy()

    def _require_known(self, ids: Sequence[str]) -> None:
        for element_id in ids:
            if element_id not in self._row_of:
                raise ConfigurationError(
                    f"unknown element id {element_id!r}")

    def _reserve(self, n: int) -> int:
        """Grow the append-only block so ``n`` more rows fit; return base."""
        base = self._n_rows
        needed = base + n
        if needed > len(self._block):
            capacity = max(needed, 2 * len(self._block))
            block = np.empty((capacity, self._dim), dtype=float)
            block[:base] = self._block[:base]
            self._block = block
        self._n_rows = needed
        return base

    def _commit(self, kind: str, ids: Sequence[str], *,
                rows: Optional[np.ndarray] = None,
                old_rows: Optional[np.ndarray] = None,
                started: float = 0.0) -> int:
        self._version += 1
        self._snapshot_cache = None
        self._deltas.append(WriteDelta(
            version=self._version, kind=kind, ids=tuple(ids),
            rows=rows, old_rows=old_rows))
        self._write_counts[kind] += 1
        WRITES_TOTAL.inc(table=self.name, kind=kind)
        wall = max(0.0, time.perf_counter() - started)
        self.spans.append(Span(
            f"write[{kind}]", wall=wall,
            attrs={"table": self.name, "version": self._version,
                   "n": len(ids)},
        ).to_dict())
        del self.spans[:-MAX_WRITE_SPANS]
        self._cond.notify_all()
        return self._version
