"""Experiment harness: ground-truth oracles, quality metrics, the uniform
multi-seed anytime runner, report formatting, and one configuration per
paper experiment (Figures 2 and 4-9).
"""

from repro.experiments.ground_truth import GroundTruth, compute_ground_truth
from repro.experiments.metrics import precision_at_k, time_to_fraction
from repro.experiments.runner import (
    RunCurve,
    ScoreOracle,
    average_curves,
    run_algorithm,
)
from repro.experiments.report import format_curve_table, format_rows
from repro.experiments.configs import (
    ImageNetConfig,
    SyntheticConfig,
    UsedCarsConfig,
    scale_factor,
)
from repro.experiments.export import (
    curves_to_json,
    curves_to_rows,
    result_to_dict,
    write_curves_csv,
    write_curves_json,
    write_result_json,
)
from repro.experiments.plotting import ascii_chart

__all__ = [
    "GroundTruth",
    "compute_ground_truth",
    "precision_at_k",
    "time_to_fraction",
    "RunCurve",
    "ScoreOracle",
    "run_algorithm",
    "average_curves",
    "format_curve_table",
    "format_rows",
    "SyntheticConfig",
    "UsedCarsConfig",
    "ImageNetConfig",
    "scale_factor",
    "curves_to_rows",
    "curves_to_json",
    "write_curves_csv",
    "write_curves_json",
    "result_to_dict",
    "write_result_json",
    "ascii_chart",
]
