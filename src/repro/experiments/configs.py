"""Per-experiment configurations mirroring Section 5.1 of the paper.

Paper-scale parameters are recorded verbatim; benchmark runs default to a
laptop-scale fraction controlled by the ``REPRO_SCALE`` environment
variable (1.0 = paper scale).  Scaling shrinks ``n`` while keeping the
cluster count, ``k``:``n`` ratio, and batch-size:cluster-size ratios
roughly proportional, which preserves the shape of every curve.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Tuple


def scale_factor(default: float = 0.1) -> float:
    """Read the global experiment scale from ``REPRO_SCALE`` (default 0.1)."""
    raw = os.environ.get("REPRO_SCALE", "")
    try:
        value = float(raw)
    except ValueError:
        return default
    if value <= 0.0:
        return default
    return min(value, 1.0)


@dataclass(frozen=True)
class SyntheticConfig:
    """Figure 4: synthetic normals, 20 clusters x 2,500, k=100, 25 runs."""

    paper_n_clusters: int = 20
    paper_per_cluster: int = 2500
    paper_k: int = 100
    paper_runs: int = 25
    mu_range: Tuple[float, float] = (0.0, 20.0)
    sigma_range: Tuple[float, float] = (0.0, 5.0)

    def scaled(self, scale: float | None = None) -> "ScaledExperiment":
        scale = scale_factor() if scale is None else scale
        per_cluster = max(50, int(self.paper_per_cluster * scale))
        n = self.paper_n_clusters * per_cluster
        return ScaledExperiment(
            n=n,
            n_clusters=self.paper_n_clusters,
            k=max(10, int(self.paper_k * scale)),
            runs=max(3, int(self.paper_runs * scale)),
            batch_size=1,
        )


@dataclass(frozen=True)
class UsedCarsConfig:
    """Figures 5-6: UsedCars, n=100k, L=500, k=250, 10 runs, 2 ms scoring."""

    paper_n: int = 100_000
    paper_n_clusters: int = 500
    paper_k: int = 250
    paper_runs: int = 10
    scoring_latency: float = 2e-3
    train_rows: int = 20_000

    def scaled(self, scale: float | None = None) -> "ScaledExperiment":
        scale = scale_factor() if scale is None else scale
        n = max(2_000, int(self.paper_n * scale))
        return ScaledExperiment(
            n=n,
            n_clusters=max(20, int(self.paper_n_clusters * scale)),
            k=max(25, int(self.paper_k * scale)),
            runs=max(3, int(self.paper_runs * scale * 3)),
            batch_size=1,
        )


@dataclass(frozen=True)
class ImageNetConfig:
    """Figures 7-9: images, n=320k, L=25, k=1000, batch 400, 10 runs."""

    paper_n: int = 320_000
    paper_n_clusters: int = 25
    paper_k: int = 1000
    paper_runs: int = 10
    paper_batch_size: int = 400
    n_classes: int = 10
    side: int = 16

    def scaled(self, scale: float | None = None) -> "ScaledExperiment":
        scale = scale_factor() if scale is None else scale
        n = max(3_000, int(self.paper_n * scale * 0.1))
        return ScaledExperiment(
            n=n,
            n_clusters=self.paper_n_clusters,
            k=max(30, int(self.paper_k * scale * 0.1)),
            runs=max(3, int(self.paper_runs * scale * 3)),
            batch_size=max(10, int(self.paper_batch_size * scale * 0.1)),
        )


@dataclass(frozen=True)
class ScaledExperiment:
    """Concrete laptop-scale parameters for one benchmark run."""

    n: int
    n_clusters: int
    k: int
    runs: int
    batch_size: int
