"""Uniform anytime runner for every algorithm.

One loop drives any :class:`~repro.baselines.base.SamplingAlgorithm`:
``next_batch -> score -> observe``, while the runner maintains its *own*
top-k buffer of everything scored (so quality metrics are computed
identically for every algorithm), charges scoring latency to a virtual
clock, and measures real per-iteration algorithm overhead.

Scores come from a :class:`ScoreOracle` — the precomputed ground truth —
rather than re-invoking the model for every algorithm and seed: scorers are
deterministic, so the replayed scores are bit-identical while experiments
stay laptop-scale.  Latency is still charged from the *real* scorer's
latency model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.base import SamplingAlgorithm
from repro.core.minmax_heap import TopKBuffer
from repro.errors import ConfigurationError, ExhaustedError
from repro.experiments.ground_truth import GroundTruth
from repro.experiments.metrics import precision_at_k
from repro.scoring.base import LatencyModel, ZeroLatency


class ScoreOracle:
    """Replays precomputed true scores by element ID."""

    def __init__(self, truth: GroundTruth,
                 latency: LatencyModel | None = None) -> None:
        self.truth = truth
        self.latency = latency or ZeroLatency()

    def scores_for(self, ids: Sequence[str]) -> np.ndarray:
        """True scores for ``ids`` (raises on unknown IDs)."""
        try:
            return np.asarray(
                [self.truth.score_of[element_id] for element_id in ids],
                dtype=float,
            )
        except KeyError as exc:
            raise ConfigurationError(f"unknown element id {exc}") from exc

    def batch_cost(self, batch_size: int) -> float:
        """Virtual scoring cost of one batch."""
        return self.latency.batch_cost(batch_size)


@dataclass
class RunCurve:
    """Anytime quality trace of one run (or a seed-average of runs).

    ``times`` are ``virtual scoring seconds + real overhead seconds``; the
    ``overheads`` series isolates the real algorithm cost for the Fig. 6b /
    Fig. 8c overhead plots.
    """

    name: str
    iterations: np.ndarray
    times: np.ndarray
    stks: np.ndarray
    precisions: np.ndarray
    overheads: np.ndarray
    final_stk: float = 0.0
    n_scored: int = 0
    setup_cost: float = 0.0
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def overhead_per_iteration(self) -> float:
        """Mean real algorithm seconds per scored element."""
        if self.n_scored == 0:
            return 0.0
        return float(self.overheads[-1]) / self.n_scored


def run_algorithm(algorithm: SamplingAlgorithm, oracle: ScoreOracle, k: int,
                  budget: int, checkpoints: Sequence[int],
                  truth: GroundTruth | None = None,
                  setup_cost: float = 0.0) -> RunCurve:
    """Drive one algorithm for up to ``budget`` scored elements.

    Parameters
    ----------
    algorithm:
        Any pull-interface strategy (engine adapter or baseline).
    oracle:
        Score replay + latency model.
    k:
        Result cardinality for the runner-side metrics buffer.
    budget:
        Maximum number of scored elements.
    checkpoints:
        Iteration counts at which to record (time, STK, precision).
    truth:
        Ground truth for Precision@K; omit to skip precision (zeros).
    setup_cost:
        Seconds of setup latency (index build, SortedScan precompute) added
        to every reported time point, for end-to-end latency figures.
    """
    checkpoints = sorted(set(int(c) for c in checkpoints if c > 0))
    buffer: TopKBuffer[str] = TopKBuffer(k)
    virtual_time = 0.0
    overhead_time = 0.0
    n_scored = 0
    rows_iter: List[int] = []
    rows_time: List[float] = []
    rows_stk: List[float] = []
    rows_precision: List[float] = []
    rows_overhead: List[float] = []
    next_cp = 0

    def record(point: int) -> None:
        rows_iter.append(point)
        rows_time.append(virtual_time + overhead_time + setup_cost)
        rows_stk.append(buffer.stk)
        rows_overhead.append(overhead_time)
        if truth is not None:
            rows_precision.append(precision_at_k(buffer.payloads(), truth, k))
        else:
            rows_precision.append(0.0)

    while n_scored < budget and not algorithm.exhausted:
        started = time.perf_counter()
        try:
            ids = algorithm.next_batch()
        except ExhaustedError:
            break
        overhead_time += time.perf_counter() - started
        if not ids:
            break
        scores = oracle.scores_for(ids)
        if algorithm.charges_scoring:
            virtual_time += oracle.batch_cost(len(ids))
        started = time.perf_counter()
        algorithm.observe(ids, scores)
        overhead_time += time.perf_counter() - started
        for element_id, score in zip(ids, scores):
            buffer.offer(float(score), element_id)
        n_scored += len(ids)
        while next_cp < len(checkpoints) and n_scored >= checkpoints[next_cp]:
            record(checkpoints[next_cp])
            next_cp += 1
    # Always record the final state so curves end at the true stopping point.
    if not rows_iter or rows_iter[-1] != n_scored:
        record(n_scored)
    return RunCurve(
        name=algorithm.name,
        iterations=np.asarray(rows_iter, dtype=int),
        times=np.asarray(rows_time, dtype=float),
        stks=np.asarray(rows_stk, dtype=float),
        precisions=np.asarray(rows_precision, dtype=float),
        overheads=np.asarray(rows_overhead, dtype=float),
        final_stk=buffer.stk,
        n_scored=n_scored,
        setup_cost=setup_cost,
    )


def average_curves(curves: Sequence[RunCurve]) -> RunCurve:
    """Average several runs of the same algorithm over matching checkpoints.

    Curves are aligned on the longest common prefix of checkpoint labels —
    batched runs can overshoot the budget by different amounts, so the final
    auto-recorded point may differ per seed and is dropped from the average
    (``final_stk``/``n_scored`` still average the true final states).  The
    paper averages 10-25 runs the same way.
    """
    if not curves:
        raise ConfigurationError("cannot average zero curves")
    min_len = min(len(curve.iterations) for curve in curves)
    while min_len > 0:
        reference = curves[0].iterations[:min_len]
        if all(np.array_equal(c.iterations[:min_len], reference)
               for c in curves):
            break
        min_len -= 1
    if min_len == 0:
        raise ConfigurationError(
            "curves share no common checkpoint prefix to average over"
        )
    iters = curves[0].iterations[:min_len]
    return RunCurve(
        name=curves[0].name,
        iterations=iters.copy(),
        times=np.mean([c.times[:min_len] for c in curves], axis=0),
        stks=np.mean([c.stks[:min_len] for c in curves], axis=0),
        precisions=np.mean([c.precisions[:min_len] for c in curves], axis=0),
        overheads=np.mean([c.overheads[:min_len] for c in curves], axis=0),
        final_stk=float(np.mean([c.final_stk for c in curves])),
        n_scored=int(np.mean([c.n_scored for c in curves])),
        setup_cost=float(np.mean([c.setup_cost for c in curves])),
    )


def checkpoint_grid(budget: int, n_points: int = 60) -> List[int]:
    """Evenly spaced checkpoint iteration counts across a budget."""
    if budget <= 0:
        raise ConfigurationError(f"budget must be positive, got {budget!r}")
    n_points = max(2, min(n_points, budget))
    return sorted(set(np.linspace(1, budget, n_points).astype(int).tolist()))
