"""Export experiment curves and results to CSV / JSON.

The benchmarks print ASCII tables; downstream users typically want the raw
series for their own plotting.  These helpers write one tidy CSV (long
format: algorithm, checkpoint index, iteration, time, stk, precision,
overhead) or a JSON document per experiment.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Sequence

from repro.core.result import QueryResult
from repro.errors import ConfigurationError
from repro.experiments.runner import RunCurve

_CSV_COLUMNS = (
    "algorithm",
    "checkpoint",
    "iteration",
    "time_seconds",
    "stk",
    "precision",
    "overhead_seconds",
)


def curves_to_rows(curves: Sequence[RunCurve]) -> List[Dict[str, object]]:
    """Flatten curves into long-format dict rows."""
    rows: List[Dict[str, object]] = []
    for curve in curves:
        for index in range(len(curve.iterations)):
            rows.append({
                "algorithm": curve.name,
                "checkpoint": index,
                "iteration": int(curve.iterations[index]),
                "time_seconds": float(curve.times[index]),
                "stk": float(curve.stks[index]),
                "precision": float(curve.precisions[index]),
                "overhead_seconds": float(curve.overheads[index]),
            })
    return rows


def write_curves_csv(curves: Sequence[RunCurve], path: str | Path) -> Path:
    """Write the curves as one long-format CSV; returns the path."""
    if not curves:
        raise ConfigurationError("nothing to export")
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=_CSV_COLUMNS)
        writer.writeheader()
        for row in curves_to_rows(curves):
            writer.writerow(row)
    return path


def curves_to_json(curves: Sequence[RunCurve], *, title: str = "",
                   extra: Dict[str, object] | None = None) -> str:
    """Serialize curves (plus optional metadata) to a JSON document."""
    document = {
        "title": title,
        "metadata": extra or {},
        "algorithms": [
            {
                "name": curve.name,
                "final_stk": curve.final_stk,
                "n_scored": curve.n_scored,
                "setup_cost": curve.setup_cost,
                "iterations": [int(v) for v in curve.iterations],
                "times": [float(v) for v in curve.times],
                "stks": [float(v) for v in curve.stks],
                "precisions": [float(v) for v in curve.precisions],
                "overheads": [float(v) for v in curve.overheads],
            }
            for curve in curves
        ],
    }
    return json.dumps(document, indent=2)


def write_curves_json(curves: Sequence[RunCurve], path: str | Path, *,
                      title: str = "",
                      extra: Dict[str, object] | None = None) -> Path:
    """Write :func:`curves_to_json` output to ``path``."""
    path = Path(path)
    path.write_text(curves_to_json(curves, title=title, extra=extra),
                    encoding="utf-8")
    return path


def result_to_dict(result: QueryResult) -> Dict[str, object]:
    """JSON-safe record of one query's answer and trace."""
    return {
        "k": result.k,
        "stk": result.stk,
        "items": [[element_id, float(score)]
                  for element_id, score in result.items],
        "n_scored": result.n_scored,
        "n_batches": result.n_batches,
        "n_explore": result.n_explore,
        "n_exploit": result.n_exploit,
        "virtual_time": result.virtual_time,
        "overhead_time": result.overhead_time,
        "fallback_events": [[int(t), kind]
                            for t, kind in result.fallback_events],
        "checkpoints": [
            {
                "iteration": cp.iteration,
                "virtual_time": cp.virtual_time,
                "overhead_time": cp.overhead_time,
                "stk": cp.stk,
                "threshold": cp.threshold,
            }
            for cp in result.checkpoints
        ],
    }


def write_result_json(result: QueryResult, path: str | Path) -> Path:
    """Persist one :class:`QueryResult` as JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(result_to_dict(result), indent=2),
                    encoding="utf-8")
    return path
