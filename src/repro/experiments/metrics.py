"""Quality metrics: Precision@K and time-to-quality summaries.

Precision@K is the paper's extrinsic metric; "Recall@K is identical to
Precision@K as the ground truth solution has k elements" (Section 5.1).
Ties at the k-th score are resolved generously: any selected element whose
true score matches or exceeds the k-th ground-truth score counts as
correct, so the metric does not depend on arbitrary tie ordering.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.experiments.ground_truth import GroundTruth

_TIE_EPS = 1e-12


def precision_at_k(selected_ids: Sequence[str], truth: GroundTruth,
                   k: int) -> float:
    """Fraction of the top-k answer that belongs to the true top-k."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k!r}")
    kth = truth.kth_score(k)
    hits = sum(
        1
        for element_id in list(selected_ids)[:k]
        if truth.score_of.get(element_id, -np.inf) >= kth - _TIE_EPS
    )
    return hits / k


def time_to_fraction(times: Sequence[float], stks: Sequence[float],
                     optimal_stk: float, fraction: float) -> Optional[float]:
    """First time at which the STK curve reaches ``fraction * optimal``.

    Returns None if the curve never gets there.  This is how the paper's
    "accelerates the time required to achieve nearly optimal scores" speedup
    claims are quantified.
    """
    target = fraction * optimal_stk
    for time_point, value in zip(times, stks):
        if value >= target:
            return float(time_point)
    return None


def auc_of_curve(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Trapezoidal area under a quality curve (normalized comparisons)."""
    if len(xs) < 2:
        return 0.0
    return float(np.trapezoid(np.asarray(ys, dtype=float),
                              np.asarray(xs, dtype=float)))


def ndcg_at_k(selected_ids: Sequence[str], truth: GroundTruth, k: int) -> float:
    """Normalized discounted cumulative gain of the returned ranking.

    Precision@K ignores the *order* of the answer; nDCG rewards putting the
    truly highest-scoring elements first, with true scores as relevance.
    The ideal ranking is the ground-truth top-k; an answer identical to it
    scores 1.0.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k!r}")
    discounts = 1.0 / np.log2(np.arange(2, k + 2))
    gains = np.asarray([
        truth.score_of.get(element_id, 0.0)
        for element_id in list(selected_ids)[:k]
    ])
    if len(gains) < k:
        gains = np.pad(gains, (0, k - len(gains)))
    dcg = float((gains * discounts).sum())
    ideal = np.sort(truth.scores)[::-1][:k]
    if len(ideal) < k:
        ideal = np.pad(ideal, (0, k - len(ideal)))
    idcg = float((ideal * discounts).sum())
    if idcg <= 0.0:
        return 1.0 if dcg <= 0.0 else 0.0
    return dcg / idcg


def rank_biased_overlap(ranking_a: Sequence[str], ranking_b: Sequence[str],
                        p: float = 0.9, depth: Optional[int] = None) -> float:
    """Rank-biased overlap (Webber et al. 2010) of two rankings.

    Top-weighted similarity in [0, 1]: 1.0 for identical rankings, with
    disagreements deeper in the lists discounted geometrically by ``p``.
    Useful for comparing two approximate answers directly, without ground
    truth.  This is the truncated (fixed-depth) RBO estimate.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must lie in (0, 1), got {p!r}")
    depth = depth or max(len(ranking_a), len(ranking_b))
    if depth == 0:
        return 1.0
    seen_a: set = set()
    seen_b: set = set()
    overlap = 0
    score = 0.0
    weight_sum = 0.0
    for d in range(1, depth + 1):
        if d <= len(ranking_a):
            item = ranking_a[d - 1]
            if item in seen_b:
                overlap += 1
            seen_a.add(item)
        if d <= len(ranking_b):
            item = ranking_b[d - 1]
            if item in seen_a and item not in seen_b:
                overlap += 1
            seen_b.add(item)
        # Self-overlap of identical prefixes counts items once each.
        agreement = overlap / d
        weight = p ** (d - 1)
        score += weight * agreement
        weight_sum += weight
    return score / weight_sum
