"""Exhaustive ground truth for evaluating approximate answers.

Extrinsic metrics (Precision@K) and the theoretical-limit baselines
(ScanBest, ScanWorst, SortedScan) need every element's true score.  The
harness computes them once per (dataset, scorer) pair — this corresponds to
the paper's exhaustive reference runs — and reuses them across algorithms
and seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

import numpy as np

from repro.core.stk import stk_curve
from repro.errors import ConfigurationError


@dataclass
class GroundTruth:
    """All true scores of a dataset under one scoring function."""

    ids: List[str]
    scores: np.ndarray

    def __post_init__(self) -> None:
        if len(self.ids) != len(self.scores):
            raise ConfigurationError("ids and scores must align")
        self.score_of: Dict[str, float] = {
            element_id: float(score)
            for element_id, score in zip(self.ids, self.scores)
        }
        self._order = np.argsort(self.scores)[::-1]

    def kth_score(self, k: int) -> float:
        """The k-th largest true score (ties included)."""
        k = min(k, len(self.ids))
        return float(self.scores[self._order[k - 1]])

    def topk_ids(self, k: int) -> Set[str]:
        """IDs of the exact top-k answer (arbitrary tie resolution)."""
        return {self.ids[row] for row in self._order[: min(k, len(self.ids))]}

    def optimal_stk(self, k: int) -> float:
        """STK of the exact answer — the quality ceiling of every figure."""
        top = self.scores[self._order[: min(k, len(self.ids))]]
        return float(top.sum())

    def best_case_curve(self, k: int) -> np.ndarray:
        """ScanBest's STK after each iteration (descending-score order)."""
        return stk_curve(self.scores[self._order], k)

    def worst_case_curve(self, k: int) -> np.ndarray:
        """ScanWorst's STK after each iteration (ascending-score order)."""
        return stk_curve(self.scores[self._order[::-1]], k)


def compute_ground_truth(dataset, scorer, batch_size: int = 1024) -> GroundTruth:
    """Score every element of ``dataset`` once (no latency accounting)."""
    ids = dataset.ids()
    scores = np.empty(len(ids), dtype=float)
    for start in range(0, len(ids), batch_size):
        chunk = ids[start : start + batch_size]
        objects = dataset.fetch_batch(chunk)
        scores[start : start + len(chunk)] = scorer.score_batch(objects)
    if (scores < 0).any():
        raise ConfigurationError("opaque scorers must return non-negative values")
    return GroundTruth(list(ids), scores)
