"""Terminal plotting: render quality curves as ASCII line charts.

The benchmarks print series tables; for a quick visual read of curve
*shape* (crossovers, plateaus, the gap between Ours and the baselines) a
monospace chart is often clearer.  No plotting dependency exists offline,
so this renders with plain characters.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.experiments.runner import RunCurve

_MARKERS = "o*x+#@%&"


def _interp(xs: np.ndarray, ys: np.ndarray, grid: np.ndarray) -> np.ndarray:
    """Step interpolation of a curve onto a shared x grid."""
    out = np.full(len(grid), np.nan)
    for i, x in enumerate(grid):
        mask = xs <= x
        if mask.any():
            out[i] = ys[mask][-1]
    return out


def ascii_chart(curves: Sequence[RunCurve], *, x_axis: str = "iterations",
                y_axis: str = "stk", width: int = 72, height: int = 16,
                normalize_by: Optional[float] = None,
                title: str = "") -> str:
    """Render several algorithms' curves into one ASCII chart.

    Each algorithm gets a marker character; the legend maps markers to
    names.  Y is optionally normalized (e.g. by the optimal STK).
    """
    if not curves:
        raise ConfigurationError("nothing to plot")
    if width < 16 or height < 4:
        raise ConfigurationError("chart too small to render")

    def x_of(curve: RunCurve) -> np.ndarray:
        return (curve.times if x_axis == "time"
                else curve.iterations.astype(float))

    def y_of(curve: RunCurve) -> np.ndarray:
        ys = curve.stks if y_axis == "stk" else curve.precisions
        return ys / normalize_by if normalize_by else ys

    x_max = max(float(x_of(c)[-1]) for c in curves)
    x_min = min(float(x_of(c)[0]) for c in curves)
    if x_max <= x_min:
        x_max = x_min + 1.0
    grid = np.linspace(x_min, x_max, width)
    series = [(c.name, _interp(x_of(c), y_of(c), grid)) for c in curves]
    y_values = np.concatenate([s for _n, s in series])
    y_values = y_values[np.isfinite(y_values)]
    y_lo = float(y_values.min()) if len(y_values) else 0.0
    y_hi = float(y_values.max()) if len(y_values) else 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0

    canvas = [[" "] * width for _ in range(height)]
    for index, (_name, values) in enumerate(series):
        marker = _MARKERS[index % len(_MARKERS)]
        for col, value in enumerate(values):
            if not np.isfinite(value):
                continue
            row = int(round((value - y_lo) / (y_hi - y_lo) * (height - 1)))
            row = height - 1 - min(max(row, 0), height - 1)
            if canvas[row][col] == " ":
                canvas[row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    label_hi = f"{y_hi:.3g}"
    label_lo = f"{y_lo:.3g}"
    pad = max(len(label_hi), len(label_lo))
    for row_index, row in enumerate(canvas):
        prefix = label_hi if row_index == 0 else (
            label_lo if row_index == height - 1 else ""
        )
        lines.append(f"{prefix:>{pad}} |" + "".join(row))
    lines.append(" " * pad + " +" + "-" * width)
    lines.append(f"{' ' * pad}  {x_min:.3g}{' ' * (width - 16)}{x_max:.3g}"
                 f"  ({x_axis})")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}"
        for i, (name, _v) in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)
