"""ASCII reporting of experiment curves and summary tables.

The benchmarks print the same *series* the paper plots — each figure becomes
a table with one row per algorithm sampled at shared x-positions — so the
shape of every result (who wins, by what factor, where crossovers fall) can
be read directly from the benchmark output.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.metrics import time_to_fraction
from repro.experiments.runner import RunCurve


def _sample_at(xs: np.ndarray, ys: np.ndarray, points: Sequence[float]
               ) -> List[float]:
    """Step-interpolate the curve at the requested x positions."""
    out: List[float] = []
    for point in points:
        mask = xs <= point
        out.append(float(ys[mask][-1]) if mask.any() else float("nan"))
    return out


def format_rows(headers: Sequence[str], rows: Sequence[Sequence[object]],
                title: str = "") -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [
        [f"{v:.4g}" if isinstance(v, float) else str(v) for v in row]
        for row in rows
    ]
    widths = [max(len(row[c]) for row in cells) for c in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(cell.ljust(w) for cell, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_curve_table(curves: Sequence[RunCurve], *, x_axis: str = "iterations",
                       y_axis: str = "stk", n_points: int = 8,
                       title: str = "", normalize_by: Optional[float] = None
                       ) -> str:
    """Tabulate several algorithms' curves at shared x positions.

    Parameters
    ----------
    curves:
        One averaged :class:`RunCurve` per algorithm.
    x_axis:
        ``"iterations"`` or ``"time"``.
    y_axis:
        ``"stk"`` or ``"precision"``.
    n_points:
        Number of sampled x positions.
    normalize_by:
        If given, y values are divided by it (e.g. the optimal STK, so the
        table reads as fraction-of-optimal).
    """
    if not curves:
        return "(no curves)"
    def x_of(curve: RunCurve) -> np.ndarray:
        return curve.times if x_axis == "time" else curve.iterations.astype(float)

    def y_of(curve: RunCurve) -> np.ndarray:
        ys = curve.stks if y_axis == "stk" else curve.precisions
        return ys / normalize_by if normalize_by else ys

    x_max = max(float(x_of(curve)[-1]) for curve in curves)
    points = np.linspace(x_max / n_points, x_max, n_points)
    unit = "s" if x_axis == "time" else ""
    headers = ["algorithm"] + [f"{p:.3g}{unit}" for p in points]
    rows = []
    for curve in curves:
        rows.append([curve.name] + _sample_at(x_of(curve), y_of(curve), points))
    label = f"{title}  [{y_axis} vs {x_axis}" + (
        ", fraction of optimal]" if normalize_by else "]"
    )
    return format_rows(headers, rows, title=label)


def format_speedup_table(curves: Sequence[RunCurve], optimal_stk: float,
                         fractions: Sequence[float] = (0.9, 0.95, 0.99),
                         baseline: str = "UniformSample",
                         title: str = "") -> str:
    """Time-to-quality table with speedups versus a reference algorithm."""
    base = next((c for c in curves if c.name == baseline), None)
    headers = ["algorithm"] + [
        f"t@{int(f * 100)}%" for f in fractions
    ] + [f"speedup@{int(f * 100)}%" for f in fractions]
    rows = []
    for curve in curves:
        t_points = [
            time_to_fraction(curve.times, curve.stks, optimal_stk, f)
            for f in fractions
        ]
        speedups: List[object] = []
        for fraction, t_point in zip(fractions, t_points):
            if base is None or t_point is None:
                speedups.append("-")
                continue
            base_t = time_to_fraction(base.times, base.stks, optimal_stk,
                                      fraction)
            speedups.append(
                f"{base_t / t_point:.2f}x" if base_t and t_point else "-"
            )
        rows.append(
            [curve.name]
            + [f"{t:.4g}" if t is not None else "never" for t in t_points]
            + speedups
        )
    return format_rows(headers, rows, title=title)
