"""Execution backends for the sharded engine: serial, thread, process.

A backend owns the worker placement and answers one question per round:
"given per-shard score caps and the latest broadcast threshold, run every
shard for one round and return their :class:`~repro.parallel.worker.RoundOutcome`
objects in worker order."  Everything else — budgeting, merging, threshold
broadcast, result assembly — lives in the coordinator
(:class:`~repro.parallel.engine.ShardedTopKEngine`), so all three backends
share the exact same protocol.

* :class:`SerialBackend` runs shards one after another on the calling
  thread.  It allocates the budget *live* (each shard's cap sees what the
  previous shards actually consumed), which makes it bit-identical to the
  original single-process round simulation; its clock is the virtual
  ``max(round costs)`` of the paper's analysis.
* :class:`ThreadBackend` runs every shard's round concurrently on a
  :class:`concurrent.futures.ThreadPoolExecutor`.  Useful when the UDF
  releases the GIL (I/O, numpy kernels, remote model calls).
* :class:`ProcessBackend` pins each shard to its own single-process
  :class:`concurrent.futures.ProcessPoolExecutor`.  The shard is built once
  per process from a picklable :class:`~repro.parallel.worker.ShardSpec`;
  rounds exchange only light outcome payloads, never indexes or histograms.

Concurrent backends pre-assign each round's caps (in worker order, from the
remaining budget) instead of allocating live; the split differs from serial
only in end-game rounds where a shard exhausts mid-round, which is why only
``serial`` promises bit-identical results.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Type

from repro.errors import ConfigurationError
from repro.parallel.worker import (
    RoundOutcome,
    ShardSpec,
    ShardWorker,
    process_init,
    process_run_round,
    process_snapshot,
)


def _pool_ready() -> bool:
    """No-op child task: resolving it proves the pool's worker bootstrapped."""
    return True


def _mp_context():
    """Start-method context for shard children.

    The platform default (fork on Linux) unless
    ``REPRO_PROCESS_START_METHOD`` names another method —
    ``benchmarks/bench_shm.py`` uses it to measure bootstrap under
    ``spawn``, where the initializer args really cross a pipe.
    """
    method = os.environ.get("REPRO_PROCESS_START_METHOD", "").strip()
    return multiprocessing.get_context(method or None)


def validate_process_specs(specs: List[ShardSpec]) -> None:
    """Reject specs a child process could not bootstrap from."""
    for spec in specs:
        if spec.features_ref is None and (
                spec.objects is None or spec.features is None):
            raise ConfigurationError(
                "process backend needs materialized shard specs "
                "(inline objects/features or a shared-memory features_ref)"
            )
        if spec.scorer is None:
            raise ConfigurationError(
                "process backend needs a picklable scorer on the spec"
            )


def start_process_pools(specs: List[ShardSpec]) -> List[ProcessPoolExecutor]:
    """One pinned single-process pool per shard, bootstrapped concurrently.

    ``ProcessPoolExecutor`` spawns its worker lazily on first submit, so a
    no-op warmup task is submitted to every pool before waiting on any of
    them: the children spawn and run their initializers (spec transfer or
    shm attach, index build) in parallel instead of serializing at
    first-round time.  On any failure every pool created so far is shut
    down before the error propagates, so a failed start never leaks child
    processes.  Shared by the round-based and streaming process backends.
    """
    validate_process_specs(specs)
    context = _mp_context()
    pools: List[ProcessPoolExecutor] = []
    try:
        for spec in specs:
            pools.append(ProcessPoolExecutor(
                max_workers=1, mp_context=context,
                initializer=process_init, initargs=(spec,),
            ))
        for future in [pool.submit(_pool_ready) for pool in pools]:
            future.result()
    except BaseException:
        for pool in pools:
            pool.shutdown(wait=False, cancel_futures=True)
        raise
    return pools


def _preassign_caps(per_worker: int, budget_remaining: int,
                    active: Sequence[bool]) -> List[int]:
    """Deal the round's budget to active shards, in worker order."""
    remaining = budget_remaining
    caps: List[int] = []
    for is_active in active:
        cap = min(per_worker, max(0, remaining)) if is_active else 0
        caps.append(cap)
        remaining -= cap
    return caps


class ShardBackend:
    """Common interface; subclasses define placement and concurrency."""

    name: str = "abstract"
    #: True when round costs are charged to the virtual clock (simulation);
    #: False when the coordinator should measure real wall-clock instead.
    virtual_clock: bool = True

    def start(self, specs: List[ShardSpec], dataset, scorer) -> None:
        """Materialize the shards (in-process or in child processes)."""
        raise NotImplementedError

    def run_round(self, per_worker: int, budget_remaining: int,
                  active: Sequence[bool],
                  threshold_floor: Optional[float]) -> List[RoundOutcome]:
        """Run one synchronized round; outcomes come back in worker order."""
        raise NotImplementedError

    def snapshots(self) -> List[dict]:
        """Collect every shard's engine snapshot (see core.snapshot)."""
        raise NotImplementedError

    def inline_workers(self) -> Optional[List[ShardWorker]]:
        """The live :class:`ShardWorker` list when it exists in-process.

        Backends whose shards live in the coordinator process (serial,
        thread) return them so the coordinator can harvest freshly built
        shard indexes into a :class:`~repro.parallel.cache.ShardIndexCache`;
        placement-remote backends (process) return ``None``.
        """
        return None

    def close(self) -> None:
        """Release any pools; idempotent."""


class SerialBackend(ShardBackend):
    """Deterministic one-thread execution — the simulation oracle."""

    name = "serial"
    virtual_clock = True

    def __init__(self) -> None:
        self.workers: List[ShardWorker] = []

    def start(self, specs: List[ShardSpec], dataset, scorer) -> None:
        self.workers = [ShardWorker(spec, dataset=dataset, scorer=scorer)
                        for spec in specs]

    def run_round(self, per_worker, budget_remaining, active,
                  threshold_floor) -> List[RoundOutcome]:
        outcomes: List[RoundOutcome] = []
        remaining = budget_remaining
        for worker in self.workers:
            # Live allocation: the cap sees what earlier shards consumed,
            # exactly like the single-process round loop.
            cap = min(per_worker, max(0, remaining))
            outcome = worker.run_round(cap, threshold_floor)
            remaining -= outcome.scored
            outcomes.append(outcome)
        return outcomes

    def snapshots(self) -> List[dict]:
        return [worker.snapshot() for worker in self.workers]

    def inline_workers(self) -> Optional[List[ShardWorker]]:
        return self.workers


class ThreadBackend(ShardBackend):
    """One thread per shard per round via ThreadPoolExecutor."""

    name = "thread"
    virtual_clock = False

    def __init__(self) -> None:
        self.workers: List[ShardWorker] = []
        self._pool: Optional[ThreadPoolExecutor] = None

    def start(self, specs: List[ShardSpec], dataset, scorer) -> None:
        self.workers = [ShardWorker(spec, dataset=dataset, scorer=scorer)
                        for spec in specs]
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, len(self.workers)),
            thread_name_prefix="repro-shard",
        )

    def run_round(self, per_worker, budget_remaining, active,
                  threshold_floor) -> List[RoundOutcome]:
        assert self._pool is not None, "start() must run first"
        caps = _preassign_caps(per_worker, budget_remaining, active)
        futures = [
            self._pool.submit(worker.run_round, cap, threshold_floor)
            for worker, cap in zip(self.workers, caps)
        ]
        return [future.result() for future in futures]

    def snapshots(self) -> List[dict]:
        return [worker.snapshot() for worker in self.workers]

    def inline_workers(self) -> Optional[List[ShardWorker]]:
        return self.workers

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessBackend(ShardBackend):
    """One dedicated child process per shard via ProcessPoolExecutor.

    Each shard gets its own ``max_workers=1`` pool so worker state can live
    in the child process for the whole query: the initializer builds the
    shard from its picklable spec once, and every subsequent round only
    ships ``(cap, threshold)`` down and a light outcome back.
    """

    name = "process"
    virtual_clock = False

    def __init__(self) -> None:
        self._pools: List[ProcessPoolExecutor] = []
        self._last: Dict[int, RoundOutcome] = {}

    def start(self, specs: List[ShardSpec], dataset, scorer) -> None:
        self._pools = start_process_pools(specs)

    def run_round(self, per_worker, budget_remaining, active,
                  threshold_floor) -> List[RoundOutcome]:
        caps = _preassign_caps(per_worker, budget_remaining, active)
        # Only shards with budget cross the pipe; an inactive or 0-cap
        # shard gets a synthesized idle outcome below (identical to what
        # its child would report for a zero-cap round: no scoring, same
        # running top-k and totals) without the IPC round-trip.
        futures = {
            worker: pool.submit(process_run_round, cap, threshold_floor)
            for worker, (pool, cap) in enumerate(zip(self._pools, caps))
            if cap > 0
        }
        outcomes: List[RoundOutcome] = []
        for worker, cap in enumerate(caps):
            if worker in futures:
                outcome = futures[worker].result()
                self._last[worker] = outcome
            else:
                outcome = self._idle_outcome(worker)
            outcomes.append(outcome)
        return outcomes

    def _idle_outcome(self, worker: int) -> RoundOutcome:
        last = self._last.get(worker)
        if last is not None:
            # Zero out per-round fields, including the memo write-back
            # payload: re-reporting last round's fresh scores would
            # double-count hits/misses in the coordinator's accounting.
            return replace(last, scored=0, cost=0.0, elapsed=0.0,
                           fresh_scores=[], memo_hits=0)
        # No round ran yet on this shard: an empty report (the merge and
        # the convergence bound both treat it as "nothing new").
        return RoundOutcome(
            worker_id=worker, scored=0, cost=0.0, elapsed=0.0,
            topk=[], exhausted=False, n_scored_total=0, local_stk=0.0,
        )

    def snapshots(self) -> List[dict]:
        return [pool.submit(process_snapshot).result()
                for pool in self._pools]

    def close(self) -> None:
        for pool in self._pools:
            pool.shutdown(wait=True)
        self._pools = []
        self._last = {}


BACKENDS: Dict[str, Type[ShardBackend]] = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}


_AVAILABILITY: Optional[Dict[str, Optional[str]]] = None


def _probe_process() -> Optional[str]:
    """``None`` when child processes work here, else the reason they don't.

    A real probe — spawn one child through the configured start method and
    round-trip a task — because sandboxes that forbid fork/spawn (or ship
    a broken ``multiprocessing``) are exactly where "process" must not be
    advertised.
    """
    try:
        from multiprocessing import shared_memory  # noqa: F401 (importable?)
    except ImportError as exc:
        return f"multiprocessing.shared_memory does not import: {exc}"
    try:
        with ProcessPoolExecutor(max_workers=1,
                                 mp_context=_mp_context()) as pool:
            if pool.submit(_pool_ready).result(timeout=60) is not True:
                return "child probe returned an unexpected result"
    except Exception as exc:
        return f"child process spawn failed: {type(exc).__name__}: {exc}"
    return None


def backend_availability(refresh: bool = False) -> Dict[str, Optional[str]]:
    """Per-backend usability: name -> ``None`` (usable) or a reason string.

    ``serial`` and ``thread`` run in the coordinator process and are
    always usable; ``process`` is probed once per process (see
    :func:`_probe_process`) and cached.  The CLI's ``info`` command prints
    the reasons; :func:`make_backend` refuses unavailable names.
    """
    global _AVAILABILITY
    if _AVAILABILITY is None or refresh:
        availability = {name: None for name in BACKENDS}
        availability[ProcessBackend.name] = _probe_process()
        _AVAILABILITY = availability
    return dict(_AVAILABILITY)


def available_backends() -> List[str]:
    """Names of the usable backends on this machine, serial first."""
    return [name for name, reason in backend_availability().items()
            if reason is None]


def make_backend(name: str) -> ShardBackend:
    """Instantiate a backend by name; raise with guidance on a typo."""
    try:
        backend_cls = BACKENDS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown parallel backend {name!r}; available: "
            f"{', '.join(available_backends())} "
            f"(this machine reports {os.cpu_count() or 1} CPU core(s))"
        ) from None
    reason = backend_availability().get(name)
    if reason is not None:
        raise ConfigurationError(
            f"parallel backend {name!r} is unavailable here: {reason}"
        )
    return backend_cls()
