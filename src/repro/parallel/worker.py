"""Shard-side execution: partitioning, per-shard state, and round running.

One *shard* owns a partition of the dataset, its own index over that
partition, and its own :class:`~repro.core.engine.TopKEngine` — exactly the
per-worker setup of the paper's Section 6 MapReduce sketch.  The coordinator
(:mod:`repro.parallel.engine`) never touches shard internals; it only asks a
shard to run one synchronization round and reads back a light
:class:`RoundOutcome`.

Everything a shard needs to bootstrap itself is captured in a *picklable*
:class:`ShardSpec`, so the same code path runs in-process (serial and thread
backends) and in a child process (process backend).  Determinism is
preserved across placements by shipping the coordinator's root RNG entropy
instead of live generator objects: a shard derives its streams with
``RngFactory(root_entropy).named(f"index:{w}")`` / ``named(f"engine:{w}")``,
which are byte-identical to the streams the single-process simulation draws
from its shared factory (named streams depend only on the root entropy and
the name — see :class:`~repro.utils.rng.RngFactory`).

Pause/resume uses the engine snapshot layer
(:func:`repro.core.snapshot.snapshot_engine` /
:func:`~repro.core.snapshot.restore_engine`): a shard's learned state
serializes to a JSON-safe dict that crosses process boundaries and sessions
alike.  See ``docs/architecture.md`` ("Shard/coordinator protocol") for the
full protocol walkthrough.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.convergence import TailSummary, tail_summary_from_engine
from repro.core.engine import EngineConfig, TopKEngine
from repro.core.snapshot import restore_engine, snapshot_engine
from repro.data.dataset import InMemoryDataset
from repro.errors import ConfigurationError
from repro.index.builder import IndexConfig, build_index
from repro.index.tree import ClusterTree
from repro.obs.spans import Span
from repro.parallel.shm import (
    SharedFeatureTable,
    SharedSliceRef,
    shm_default_enabled,
)
from repro.scoring.base import Scorer
from repro.utils.rng import RngFactory


def partition_ids(ids: Sequence[str], n_workers: int,
                  rng: np.random.Generator) -> List[List[str]]:
    """Shuffle ``ids`` with ``rng`` and deal them round-robin to workers.

    This is the exact partitioning of the original single-process
    simulation; the shuffle consumes ``rng``'s stream, so the caller must
    pass the factory's ``named("partition")`` generator to stay
    bit-compatible.
    """
    shuffled = list(ids)
    rng.shuffle(shuffled)
    return [shuffled[w::n_workers] for w in range(n_workers)]


def shard_features(dataset, member_ids: Sequence[str]) -> np.ndarray:
    """Stack the partition's cheap feature vectors for index construction.

    Prefers the dataset's vectorized ``features_of`` gather (bit-identical
    to the row-by-row stack, one numpy call instead of one per element);
    falls back to per-element ``feature_of``, and finally to a constant
    vector when the dataset exposes neither (the index then degenerates
    gracefully).
    """
    if hasattr(dataset, "features_of"):
        return np.asarray(dataset.features_of(member_ids), dtype=float)
    return np.stack([
        np.asarray(dataset.feature_of(element_id), dtype=float)
        if hasattr(dataset, "feature_of")
        else np.zeros(1)
        for element_id in member_ids
    ])


def shard_index_config(config: Optional[IndexConfig],
                       n_members: int) -> IndexConfig:
    """Clamp an index configuration to one partition's size."""
    if config is None:
        n_clusters = max(2, min(32, n_members // 50))
        config = IndexConfig(n_clusters=n_clusters)
    n_clusters = min(config.n_clusters, n_members)
    return IndexConfig(
        n_clusters=max(1, n_clusters),
        subsample=config.subsample,
        linkage=config.linkage,
        max_kmeans_iter=config.max_kmeans_iter,
        flat=config.flat,
    )


class ShardDataset(InMemoryDataset):
    """A picklable, self-contained view of one worker's partition.

    Process workers cannot reach back into the coordinator's dataset, so
    the spec materializes the partition's objects and features up front.
    """


@dataclass
class ShardSpec:
    """Everything needed to (re)build one shard anywhere — all picklable."""

    worker_id: int
    member_ids: List[str]
    k: int
    engine_config: EngineConfig
    index_config: Optional[IndexConfig]
    root_entropy: int
    scorer: Optional[Scorer] = None          # shipped to process workers
    objects: Optional[list] = None           # partition elements, id-aligned
    features: Optional[np.ndarray] = None    # partition features, id-aligned
    engine_snapshot: Optional[dict] = None   # resume payload
    resume_seed: Optional[int] = None
    prebuilt_index: Optional[ClusterTree] = None  # cache hit: skip the build
    #: Zero-copy alternative to the inline ``objects`` / ``features`` copy:
    #: a constant-size handle into a coordinator-owned shared-memory
    #: segment (:mod:`repro.parallel.shm`).  When set, ``member_ids`` is
    #: left empty and the child resolves ids, objects, features, and any
    #: cached index from the mapped segment, keeping the pickled spec O(1)
    #: in the partition size.
    features_ref: Optional[SharedSliceRef] = None
    #: Frozen cross-query score memo restricted to this shard's members
    #: (partitions are disjoint, so the restriction is complete).  The
    #: worker only *reads* it — fresh scores travel back through
    #: :attr:`RoundOutcome.fresh_scores` and the coordinator records them
    #: into the live :class:`~repro.memo.store.MemoStore` at merge time,
    #: keeping process children read-only.  ``None`` disables the memo.
    memo: Optional[dict] = None
    #: Warm-start histogram priors (``{node id -> histogram payload}``,
    #: see :mod:`repro.memo.priors`), applied to a *fresh* engine before
    #: its first draw; ignored on resume (the snapshot already carries
    #: richer learned state).  Opt-in and not bit-identical by design.
    priors: Optional[dict] = None
    #: When True the worker records one span fragment per round/slice and
    #: ships it back on :attr:`RoundOutcome.span` for the coordinator's
    #: :class:`~repro.obs.spans.TraceContext` to stitch.  Off by default:
    #: the round loop then never touches the tracing layer.
    trace: bool = False
    #: Live tables: the pinned :class:`~repro.live.table.TableSnapshot`
    #: version this shard's partition was cut from.  Echoed back on every
    #: :attr:`RoundOutcome.table_version` so the coordinator can assert
    #: no cross-version outcome ever merges.  0 for immutable datasets.
    table_version: int = 0


@dataclass
class RoundOutcome:
    """What a shard reports back after one synchronization round."""

    worker_id: int
    scored: int                  # elements scored this round
    cost: float                  # virtual scoring cost of this round (s)
    elapsed: float               # real wall-clock of this round (s)
    topk: List[Tuple[str, float]]
    exhausted: bool
    n_scored_total: int
    local_stk: float
    fallback_events: List[Tuple[int, str]] = field(default_factory=list)
    #: Unscored-mass summary for the coordinator's displacement bound
    #: (:mod:`repro.core.convergence`); ``None`` on restored stubs.
    tail: Optional[TailSummary] = None
    #: ``(element id, score)`` pairs this round actually paid a UDF call
    #: for (memo misses; everything when no memo rides the spec).  The
    #: coordinator records them into the cross-query memo at merge time.
    fresh_scores: List[Tuple[str, float]] = field(default_factory=list)
    #: Memo hits this round (scores served without a UDF call), for the
    #: coordinator's cache accounting.
    memo_hits: int = 0
    #: JSON-safe span fragment for this round/slice
    #: (:meth:`repro.obs.spans.Span.to_dict`), present only when the spec
    #: asked for tracing.  Rides the existing wire format, so process
    #: backends ship it through the same pickle as the answer rows.
    span: Optional[dict] = None
    #: The table version this outcome was scored against (echoed from
    #: :attr:`ShardSpec.table_version`); the coordinator refuses to merge
    #: an outcome from any other version than its own pinned snapshot.
    table_version: int = 0


def build_shard_specs(dataset, scorer: Scorer, *, n_workers: int, k: int,
                      engine_config: EngineConfig,
                      index_config: Optional[IndexConfig],
                      factory: RngFactory, root_entropy: int,
                      materialize: bool,
                      restore_payloads: Optional[List[dict]] = None,
                      resume_count: int = 0,
                      index_cache=None,
                      ids: Optional[Sequence[str]] = None,
                      shared_memory: Optional[bool] = None,
                      memo_snapshot: Optional[dict] = None,
                      priors: Optional[List[Optional[dict]]] = None,
                      trace: bool = False,
                      table_version: int = 0,
                      ) -> Tuple[List[List[str]], List[ShardSpec], bool,
                                 Optional[SharedFeatureTable]]:
    """Partition the dataset and assemble one :class:`ShardSpec` per worker.

    Shared by the round-based (:mod:`repro.parallel.engine`) and streaming
    (:mod:`repro.streaming.engine`) coordinators so both produce identical
    shards from identical inputs.  ``ids`` restricts execution to a
    candidate subset (the dialect's ``WHERE`` pushdown): only those
    elements are partitioned, indexed, and ever drawn.  When
    ``index_cache`` (a :class:`~repro.parallel.cache.ShardIndexCache`)
    holds an entry for this build's key — which includes the subset
    fingerprint — the cached partitions are reused and each spec carries
    its ``prebuilt_index``, skipping the per-shard k-means fits
    bit-identically (named RNG streams are independent per name).

    ``shared_memory`` selects the zero-copy bootstrap for materialized
    (process-bound) specs: ``None`` auto-enables when POSIX shared memory
    works here (:func:`repro.parallel.shm.shm_default_enabled`; opt out
    globally with ``REPRO_DISABLE_SHM=1``), ``True`` requires it,
    ``False`` forces the inline copy path.  On the shm path each spec
    ships a constant-size ``features_ref`` instead of inline ids /
    objects / features (and the cached index, on a cache hit, ships its
    float payload through the same segment); the packed per-shard feature
    blocks are exactly the arrays :func:`shard_features` produces, so
    child-side index builds — and therefore answers — are bit-identical
    to the copy path.  Packing failures fall back to the copy path unless
    ``shared_memory=True`` demanded it.

    Returns ``(partitions, specs, cache_hit, shm_table)``; ``shm_table``
    is the coordinator-owned :class:`~repro.parallel.shm.SharedFeatureTable`
    (``None`` on the copy path) whose ``close()`` the caller owes once the
    run is over.
    """
    from repro.parallel.cache import shard_cache_key, subset_fingerprint

    population = list(ids) if ids is not None else dataset.ids()
    cached = None
    if index_cache is not None:
        key = shard_cache_key(root_entropy, n_workers, index_config,
                              len(population),
                              subset=subset_fingerprint(ids),
                              table_version=table_version)
        cached = index_cache.get(key)
    if cached is not None:
        partitions, indexes = cached
        partitions = [list(p) for p in partitions]
    else:
        partitions = partition_ids(population, n_workers,
                                   factory.named("partition"))
        indexes = [None] * n_workers
    use_shm = materialize and (shm_default_enabled()
                               if shared_memory is None
                               else bool(shared_memory))
    table: Optional[SharedFeatureTable] = None
    refs: List[Optional[SharedSliceRef]] = [None] * n_workers
    if use_shm:
        try:
            table = SharedFeatureTable.create([
                {"member_ids": list(members),
                 "objects": dataset.fetch_batch(members),
                 "features": shard_features(dataset, members),
                 "tree": indexes[worker]}
                for worker, members in enumerate(partitions)
            ])
        except Exception as exc:
            if shared_memory:
                raise ConfigurationError(
                    f"shared_memory=True but the zero-copy bootstrap "
                    f"failed: {exc}"
                ) from exc
            table = None  # clean fallback to the inline copy path
        else:
            refs = [table.ref(worker) for worker in range(n_workers)]
    specs: List[ShardSpec] = []
    for worker, members in enumerate(partitions):
        snapshot = None
        resume_seed = None
        if restore_payloads is not None:
            snapshot = restore_payloads[worker]
            resume_seed = int(
                factory.named(f"resume:{worker}:{resume_count}")
                .integers(2**31)
            )
        ref = refs[worker]
        inline = materialize and ref is None
        shard_memo = None
        if memo_snapshot is not None:
            # Restrict to this shard's members so process specs stay small;
            # partitions are disjoint, so the restriction loses nothing.
            # An *empty* dict is meaningful (caching on, nothing stored
            # yet): the worker still collects fresh scores for write-back.
            shard_memo = {
                element_id: memo_snapshot[element_id]
                for element_id in members
                if element_id in memo_snapshot
            }
        specs.append(ShardSpec(
            worker_id=worker,
            member_ids=[] if ref is not None else list(members),
            k=k,
            engine_config=engine_config,
            index_config=index_config,
            root_entropy=root_entropy,
            scorer=scorer if materialize else None,
            objects=(dataset.fetch_batch(members) if inline else None),
            features=(shard_features(dataset, members) if inline else None),
            engine_snapshot=snapshot,
            resume_seed=resume_seed,
            prebuilt_index=None if ref is not None else indexes[worker],
            features_ref=ref,
            memo=shard_memo,
            priors=priors[worker] if priors is not None else None,
            trace=trace,
            table_version=int(table_version),
        ))
    return partitions, specs, cached is not None, table


def harvest_shard_indexes(index_cache, *, root_entropy: int,
                          index_config: Optional[IndexConfig],
                          n_elements: int,
                          partitions: List[List[str]],
                          workers: Optional[List["ShardWorker"]],
                          subset: str = "",
                          table_version: int = 0) -> None:
    """Store freshly built shard indexes from in-process workers.

    No-op when there is no cache, the entry already exists, or the backend
    keeps its workers out of reach (``process`` children own their
    indexes).  ``subset`` is the candidate-subset fingerprint of the build
    (see :func:`repro.parallel.cache.subset_fingerprint`).
    """
    from repro.parallel.cache import shard_cache_key

    if index_cache is None or workers is None or not partitions:
        return
    key = shard_cache_key(root_entropy, len(partitions), index_config,
                          n_elements, subset=subset,
                          table_version=table_version)
    index_cache.put(key, partitions, [worker.index for worker in workers])


class ShardWorker:
    """One shard: partition + local index + local engine + round loop."""

    def __init__(self, spec: ShardSpec, dataset=None,
                 scorer: Optional[Scorer] = None) -> None:
        self.spec = spec
        self.worker_id = spec.worker_id
        resolved = None
        if dataset is None and spec.features_ref is not None:
            # Zero-copy bootstrap: attach the coordinator's segment and
            # materialize this shard's ids / objects / cached index from
            # it; the feature block stays a read-only view into the
            # mapping (never copied into this process).
            resolved = spec.features_ref.resolve()
            self.member_ids = list(resolved.member_ids)
            self.dataset = ShardDataset(resolved.member_ids,
                                        resolved.objects, resolved.features)
        else:
            self.member_ids = list(spec.member_ids)
            self.dataset = dataset if dataset is not None else ShardDataset(
                spec.member_ids, spec.objects, spec.features
            )
        scorer = scorer if scorer is not None else spec.scorer
        if scorer is None:
            raise ValueError("shard needs a scorer (inline or via spec)")
        self.scorer = scorer
        factory = RngFactory(spec.root_entropy)
        prebuilt = spec.prebuilt_index
        if prebuilt is None and resolved is not None:
            prebuilt = resolved.index
        if prebuilt is not None:
            # Cache hit: the tree is a pure function of (root entropy,
            # worker id, partition, index config), and it is read-only at
            # query time (the bandit mirrors it into its own nodes), so
            # reuse is bit-identical to a rebuild.  Named RNG streams are
            # independent, so skipping the index:{w} draws never perturbs
            # the engine:{w} stream derived below.
            self.index: ClusterTree = prebuilt
        else:
            if resolved is not None:
                features = resolved.features
            elif spec.features is not None:
                features = np.asarray(spec.features, dtype=float)
            else:
                features = shard_features(self.dataset, self.member_ids)
            local_config = shard_index_config(spec.index_config,
                                              len(self.member_ids))
            self.index = build_index(
                features, self.member_ids, local_config,
                rng=factory.named(f"index:{self.worker_id}"),
            )
        engine_seed = int(
            factory.named(f"engine:{self.worker_id}").integers(2**31)
        )
        config = replace(spec.engine_config, k=spec.k, seed=engine_seed)
        hint = (self.scorer.batch_cost(config.batch_size)
                / max(1, config.batch_size))
        if spec.engine_snapshot is not None:
            self.engine = restore_engine(
                self.index, spec.engine_snapshot, config=replace(
                    config, seed=spec.resume_seed
                ),
                resume_seed=spec.resume_seed,
                scoring_latency_hint=hint,
            )
        else:
            self.engine = TopKEngine(self.index, config,
                                     scoring_latency_hint=hint)
            if spec.priors:
                # Warm start only fresh engines: a resume snapshot already
                # carries richer learned state than any harvested prior.
                from repro.memo.priors import apply_priors

                apply_priors(self.engine, spec.priors)
        self._memo = spec.memo
        self._trace = bool(spec.trace)
        self._slice_count = 0

    # -- round protocol ------------------------------------------------------

    def run_round(self, cap: int,
                  threshold_floor: Optional[float] = None) -> RoundOutcome:
        """Score up to ``cap`` elements, then report the running solution.

        ``threshold_floor`` is the coordinator's latest global k-th score;
        the local buffer still accepts everything (the merge stays lossless)
        but gain estimation targets only globally competitive scores.
        """
        engine = self.engine
        if threshold_floor is not None:
            engine.threshold_floor = threshold_floor
        scored = 0
        cost = 0.0
        fresh_scores: List[Tuple[str, float]] = []
        memo_hits = 0
        started = time.perf_counter()
        while scored < cap and not engine.exhausted:
            ids = engine.next_batch()
            if self._memo is None:
                scores = self.scorer.score_batch(self.dataset.fetch_batch(ids))
            else:
                # Memo hits skip only the real UDF call; draws, accounting,
                # and the full batch cost below are unchanged, so a warm
                # round is bit-identical to a cold one by construction.
                scores = [self._memo.get(element_id) for element_id in ids]
                misses = [position for position, value in enumerate(scores)
                          if value is None]
                if misses:
                    miss_ids = [ids[position] for position in misses]
                    fresh = np.asarray(
                        self.scorer.score_batch(
                            self.dataset.fetch_batch(miss_ids)
                        ),
                        dtype=float,
                    ).reshape(-1).tolist()
                    for position, value in zip(misses, fresh):
                        scores[position] = value
                    fresh_scores.extend(zip(miss_ids, fresh))
                memo_hits += len(ids) - len(misses)
            cost += self.scorer.batch_cost(len(ids))
            engine.observe(ids, scores)
            scored += len(ids)
        elapsed = time.perf_counter() - started
        span = None
        if self._trace:
            # One fragment per slice, built from the totals the loop
            # already accumulates — tracing adds nothing per batch.
            span = Span(
                f"shard[{self.worker_id}].slice[{self._slice_count}]",
                wall=elapsed,
                counters={"vclock": cost, "scored": scored,
                          "udf_calls": scored - memo_hits,
                          "memo_hits": memo_hits},
                attrs={"worker": self.worker_id,
                       "n_scored_total": engine.n_scored,
                       "threshold": engine.threshold},
            ).to_dict()
            self._slice_count += 1
        return RoundOutcome(
            worker_id=self.worker_id,
            scored=scored,
            cost=cost,
            elapsed=elapsed,
            topk=engine.topk_items(),
            exhausted=engine.exhausted,
            n_scored_total=engine.n_scored,
            local_stk=engine.stk,
            fallback_events=list(engine.fallback_events),
            # Per-slice, not per-element: one leaf walk + mixture build per
            # outcome (~0.4 ms on a 50-cluster shard).  In the scoring-
            # dominated regime the protocol targets, one slice of UDF calls
            # costs orders of magnitude more, and always-on tails are what
            # make every ProgressiveResult carry its bound.
            tail=tail_summary_from_engine(engine),
            fresh_scores=fresh_scores,
            memo_hits=memo_hits,
            span=span,
            table_version=self.spec.table_version,
        )

    def snapshot(self) -> dict:
        """JSON-safe learned state of this shard (see core.snapshot)."""
        return snapshot_engine(self.engine)


# ---------------------------------------------------------------------------
# Process-backend entry points.  A dedicated single-process pool hosts each
# shard; the initializer builds the ShardWorker once and round commands
# operate on the process-global instance, so only light RoundOutcome dicts
# cross the pipe every round (never the index or histograms).
# ---------------------------------------------------------------------------

_PROCESS_WORKER: Optional[ShardWorker] = None


def process_init(spec: ShardSpec) -> None:
    """Pool initializer: build this process's shard from its picklable spec."""
    global _PROCESS_WORKER
    _PROCESS_WORKER = ShardWorker(spec)


def process_run_round(cap: int,
                      threshold_floor: Optional[float]) -> RoundOutcome:
    """Run one round on the process-resident shard."""
    assert _PROCESS_WORKER is not None, "pool initializer did not run"
    return _PROCESS_WORKER.run_round(cap, threshold_floor)


def process_snapshot() -> dict:
    """Snapshot the process-resident shard's engine."""
    assert _PROCESS_WORKER is not None, "pool initializer did not run"
    return _PROCESS_WORKER.snapshot()
