"""Cross-run cache of per-shard partitions and partition indexes.

Sharded (round-based) and streaming runs over the same table rebuild
identical per-partition artefacts whenever they share the partitioning
inputs: partitions are dealt by
``RngFactory(root_entropy).named("partition")`` and each shard's index is
built from ``named(f"index:{w}")`` over the partition's features, so both
are pure functions of ``(root entropy, worker count, index config)`` for a
fixed immutable dataset.  :class:`ShardIndexCache` memoizes the
``(partitions, indexes)`` pair under exactly that key, letting a repeat
query skip the shuffle and every per-shard k-means fit — the ROADMAP's
"sharded runs rebuild per-partition indexes at start" open item.

Sharing rules
-------------
* One cache maps to one immutable dataset.  The session layer keeps one
  cache per registered table; library users who share a cache across
  engines must do the same.
* A cache hit is **bit-identical** to a rebuild: named RNG streams are
  independent per name, so skipping the ``partition`` / ``index:{w}``
  draws never perturbs the ``engine:{w}`` streams.
* Indexes are harvested only from backends whose workers live in the
  coordinator process (``serial``/``thread``); the ``process`` backend's
  indexes are born in child processes and are never reached into.  A warm
  cache still *serves* every backend via
  :attr:`~repro.parallel.worker.ShardSpec.prebuilt_index` (the tree is
  picklable, so it ships to children instead of being rebuilt there).
* Entries are LRU-bounded (default 8) because fresh-entropy runs
  (``seed=None``) can never hit and would otherwise grow the cache without
  bound.

The cluster tree is read-only at query time — the bandit mirrors it into
its own :class:`~repro.core.hierarchical.BanditNode` objects and arms copy
their member lists — so one cached index may back many concurrent engines.

The cache itself is **concurrency-safe**: one lock guards the LRU map
and the hit/miss counters, because the multi-tenant service
(:mod:`repro.service`) shares one cache per table across every in-flight
query's coordinator thread.  Without the lock, a ``get`` racing an
evicting ``put`` can ``KeyError`` inside ``move_to_end`` (the entry it
just saw evaporates mid-touch) — ``tests/test_service.py`` hammers
exactly that interleaving.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import List, Optional, Sequence, Tuple

from repro.index.builder import IndexConfig
from repro.index.tree import ClusterTree

#: (root_entropy, n_workers, index-config fingerprint, n_elements,
#:  candidate-subset fingerprint — "" when the whole table runs,
#:  table_version — 0 for immutable datasets)
CacheKey = Tuple[int, int, str, int, str, int]

#: (partitions, per-worker indexes), id-aligned with worker order.
CacheEntry = Tuple[List[List[str]], List[ClusterTree]]


def subset_fingerprint(ids: Optional[Sequence[str]]) -> str:
    """Stable fingerprint of a candidate-id subset (WHERE pushdown).

    ``""`` when there is no filter; otherwise a digest of the ordered id
    list, so two queries whose predicates select the same candidates (in
    the same table order) share cached partitions and indexes.  Each id
    is length-prefixed before hashing — ids are arbitrary user strings,
    so no join character could be collision-free.
    """
    if ids is None:
        return ""
    digest = hashlib.sha256()
    for element_id in ids:
        encoded = element_id.encode("utf-8")
        digest.update(len(encoded).to_bytes(4, "big"))
        digest.update(encoded)
    return digest.hexdigest()[:16]


def shard_cache_key(root_entropy: int, n_workers: int,
                    index_config: Optional[IndexConfig],
                    n_elements: int,
                    subset: str = "",
                    table_version: int = 0) -> CacheKey:
    """The full determinism fingerprint of one sharded index build.

    ``table_version`` keys live-table builds: a committed write changes
    the dataset, so partitions/indexes built at version ``v`` must never
    serve a query pinned at ``v+1`` (and vice versa).  Immutable
    datasets stay at 0.
    """
    return (int(root_entropy), int(n_workers), repr(index_config),
            int(n_elements), str(subset), int(table_version))


class ShardIndexCache:
    """LRU cache of ``(partitions, shard indexes)`` keyed by build inputs."""

    def __init__(self, maxsize: int = 8) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize!r}")
        self.maxsize = int(maxsize)
        self._entries: "OrderedDict[CacheKey, CacheEntry]" = OrderedDict()
        # Guards the LRU map and both counters: concurrent sessions (the
        # multi-tenant service) share one cache per table.
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: CacheKey) -> Optional[CacheEntry]:
        """Fetch (and LRU-touch) an entry; count the hit or miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: CacheKey, partitions: List[List[str]],
            indexes: List[ClusterTree]) -> None:
        """Store one build, evicting the least recently used beyond capacity."""
        if len(partitions) != len(indexes):
            raise ValueError(
                f"{len(partitions)} partitions for {len(indexes)} indexes"
            )
        entry = ([list(p) for p in partitions], list(indexes))
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def evict_stale(self, table_version: int) -> int:
        """Drop entries built against any *other* table version.

        Called by the session when it reconciles a live table's write
        log: stale-version partitions could only serve queries pinned to
        versions that no longer plan, so holding them just squeezes live
        entries out of the LRU.  Returns the number of entries dropped.
        """
        table_version = int(table_version)
        with self._lock:
            stale = [key for key in self._entries
                     if key[5] != table_version]
            for key in stale:
                del self._entries[key]
            return len(stale)
