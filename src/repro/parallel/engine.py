"""Sharded top-k coordinator — Section 6's MapReduce combination, for real.

:class:`ShardedTopKEngine` executes one opaque top-k query over ``W``
shards, each holding a partition of the dataset with its own index and
:class:`~repro.core.engine.TopKEngine`.  Execution proceeds in synchronized
rounds:

1. the coordinator deals the remaining budget into per-shard caps
   (``sync_interval`` scoring calls per shard per round);
2. every shard runs its bandit for its cap (placement decided by the
   backend: same thread, thread pool, or dedicated child processes);
3. the coordinator folds each shard's running top-k into the global
   :class:`~repro.core.minmax_heap.TopKBuffer` (the *merge*);
4. the global k-th score is broadcast back as each shard's kick-out floor
   (the *threshold broadcast*), so no shard wastes budget on elements that
   can no longer enter the merged answer.

The ``serial`` backend reproduces the original single-process round
simulation bit for bit (same RNG streams, same budget split, same merge
order, same virtual clock); ``thread`` and ``process`` run the same
protocol on real concurrency and measure real wall-clock.  See
``docs/architecture.md`` for the protocol invariants.

Two cross-cutting siblings: :mod:`repro.streaming` runs the same
shard/coordinator protocol *without* the round barrier (continuous
slices, merge on arrival, anytime progressive results), and
:mod:`repro.parallel.cache` shares per-shard partition indexes across
round and streaming runs on the same dataset.  Every
:class:`~repro.parallel.worker.RoundOutcome` also ships a sketch tail
summary, which the coordinator folds into a
:class:`~repro.core.convergence.ConvergenceBound` — the final
:class:`DistributedResult` reports ``displacement_bound``, an explicit
upper estimate of the probability that the budgeted answer differs from
the exact one (``docs/streaming.md``, "Confidence-bounded convergence").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import ClassVar, List, Optional, Sequence, Set, Tuple

from repro.core.convergence import ConvergenceBound
from repro.core.engine import EngineConfig, _fully_funded
from repro.core.minmax_heap import TopKBuffer
from repro.core.result import ResultBase
from repro.data.dataset import Dataset
from repro.errors import ConfigurationError, SerializationError
from repro.index.builder import IndexConfig
from repro.obs.metrics import (
    MEMO_HITS_TOTAL,
    ROUNDS_TOTAL,
    UDF_CALLS_TOTAL,
)
from repro.obs.spans import TraceContext
from repro.parallel.backends import ShardBackend, make_backend
from repro.parallel.cache import ShardIndexCache, subset_fingerprint
from repro.parallel.worker import (
    RoundOutcome,
    ShardSpec,
    build_shard_specs,
    harvest_shard_indexes,
)
from repro.scoring.base import Scorer
from repro.utils.rng import RngFactory

_SNAPSHOT_FORMAT = "repro-sharded-snapshot/1"


@dataclass(frozen=True)
class WorkerReport:
    """Final statistics of one shard."""

    worker_id: int
    n_elements: int
    n_scored: int
    virtual_time: float
    local_stk: float
    fallback_events: Tuple[Tuple[int, str], ...]


@dataclass
class DistributedResult(ResultBase):
    """Merged answer plus the (simulated or measured) execution trace."""

    kind: ClassVar[str] = "sharded"

    k: int
    items: List[Tuple[str, float]]
    stk: float
    wall_time: float
    total_scored: int
    n_rounds: int
    workers: List[WorkerReport]
    checkpoints: List[Tuple[float, float]] = field(default_factory=list)
    backend: str = "serial"
    #: Upper estimate of the probability that any *unscored* element
    #: would displace this answer — the distance to the exact full-table
    #: result, from the shards' sketch tails (:mod:`repro.core.convergence`).
    displacement_bound: float = 1.0

    @property
    def budget_spent(self) -> int:
        """Total scoring calls across all shards (protocol alias)."""
        return self.total_scored

    def _extra_json(self) -> dict:
        return {
            "wall_time": float(self.wall_time),
            "n_rounds": int(self.n_rounds),
            "backend": str(self.backend),
            "workers": [
                {"worker_id": int(report.worker_id),
                 "n_elements": int(report.n_elements),
                 "n_scored": int(report.n_scored),
                 "virtual_time": float(report.virtual_time),
                 "local_stk": float(report.local_stk)}
                for report in self.workers
            ],
        }

    def summary(self) -> str:
        """One-line report."""
        bound = ("" if self.displacement_bound >= 1.0
                 else f", displacement bound<={self.displacement_bound:.3g}")
        return (
            f"top-{self.k}: STK={self.stk:.4f} from {len(self.workers)} "
            f"workers, {self.total_scored} total scores in "
            f"{self.n_rounds} rounds, wall time {self.wall_time:.3f}s"
            f"{bound}"
        )


def merge_worker_topk(buffer: TopKBuffer, merged_ids: Set[str],
                      items: List[Tuple[str, float]]) -> None:
    """Fold one shard's running solution into the global top-k.

    ``merged_ids`` remembers every ID ever offered: scores are immutable, so
    an element seen twice (second sight can only come from re-reporting the
    same shard's buffer, or a pathological duplicate ID across shards) is
    offered exactly once, and an evicted element — below the global k-th
    score forever — is never re-admitted.
    """
    for element_id, score in items:
        if element_id not in merged_ids:
            merged_ids.add(element_id)
            buffer.offer(score, element_id)


class ShardedTopKEngine:
    """Coordinator for sharded top-k execution on a pluggable backend.

    Parameters
    ----------
    dataset / scorer / k:
        The query, exactly as for :class:`~repro.core.engine.TopKEngine`.
    n_workers:
        Number of shards.
    backend:
        ``"serial"`` (bit-identical simulation, virtual clock),
        ``"thread"`` or ``"process"`` (real concurrency, measured clock).
    index_config:
        Per-partition index configuration (cluster count is clamped per
        shard, minimum 1).
    engine_config:
        Per-shard engine settings (``k`` is forced to the query's k so the
        merge is lossless).
    sync_interval:
        Scoring calls per shard between coordinator merges.
    share_threshold:
        Broadcast the global k-th score back to shards after each merge.
    seed:
        Root seed; shards get independent derived streams regardless of the
        backend (the root entropy travels to child processes, not live
        generators).
    index_cache:
        Optional :class:`~repro.parallel.cache.ShardIndexCache` shared
        across runs on the same immutable dataset: a hit reuses the cached
        partitions and per-shard indexes bit-identically; a miss harvests
        them after the build (in-process backends only).
    shared_memory:
        Zero-copy shard bootstrap for the process backend
        (:mod:`repro.parallel.shm`): ``None`` (default) auto-enables when
        POSIX shared memory works here, ``True`` requires it, ``False``
        forces the inline copy path.  Ignored by ``serial``/``thread``
        (their shards live in this process).  Answers are bit-identical
        either way.
    memo:
        Optional :class:`~repro.memo.store.MemoView` over the cross-query
        score memo for this ``(table, udf)`` pair.  Each shard spec ships
        a frozen per-partition restriction; fresh scores travel back in
        :class:`~repro.parallel.worker.RoundOutcome` and are recorded here
        at merge time (process children stay read-only).  Memo hits skip
        the real UDF call but charge full batch cost, so warm answers are
        bit-identical to cold ones.
    priors:
        Optional per-worker warm-start priors (one
        ``{node id -> histogram payload}`` dict per shard, see
        :mod:`repro.memo.priors`), applied to fresh shard engines before
        their first draw.  Opt-in and deliberately not bit-identical.
    trace:
        Optional :class:`~repro.obs.spans.TraceContext`.  When given, the
        coordinator opens one ``round[i]`` span per synchronization round
        and stitches each shard's ``shard[j]`` fragment (shipped on
        :attr:`~repro.parallel.worker.RoundOutcome.span`) under it, with
        the post-merge threshold and displacement bound as attributes.
        ``None`` (the default) keeps the round loop untouched.
    gate:
        Optional :class:`~repro.service.budget.QueryGrant`-shaped budget
        gate (``acquire(n) -> int`` / ``refund(n)``).  Each round the
        coordinator draws the round's worst-case fresh-call count
        (``per_worker`` × active shards) before dispatch and refunds
        whatever the shards did not actually spend on real UDF calls
        (memo hits, early-exhausted shards).  Fully funded rounds leave
        the schedule untouched — bit-identity is preserved; a partial
        grant is refunded whole and the run stops at the round barrier.
    table_version:
        Version of the live-table snapshot this run executes against
        (0 for immutable datasets).  Keys the shard-index cache so
        partitions built at one version never serve another, stamps
        every :class:`~repro.parallel.worker.ShardSpec` and snapshot
        payload, and is asserted against each
        :class:`~repro.parallel.worker.RoundOutcome` at the merge.
    """

    def __init__(self, dataset: Dataset, scorer: Scorer, k: int,
                 n_workers: int = 4,
                 backend: str = "serial",
                 index_config: Optional[IndexConfig] = None,
                 engine_config: Optional[EngineConfig] = None,
                 sync_interval: int = 100,
                 share_threshold: bool = True,
                 seed=None,
                 index_cache: Optional[ShardIndexCache] = None,
                 ids: Optional[Sequence[str]] = None,
                 shared_memory: Optional[bool] = None,
                 memo=None,
                 priors: Optional[List[Optional[dict]]] = None,
                 trace: Optional[TraceContext] = None,
                 gate=None,
                 table_version: int = 0) -> None:
        if n_workers <= 0:
            raise ConfigurationError(
                f"n_workers must be positive, got {n_workers!r}"
            )
        if sync_interval <= 0:
            raise ConfigurationError(
                f"sync_interval must be positive, got {sync_interval!r}"
            )
        if k <= 0:
            raise ConfigurationError(f"k must be positive, got {k!r}")
        # ids restricts execution to a candidate subset (WHERE pushdown):
        # only those elements are partitioned, indexed, and drawn.
        self._ids: Optional[List[str]] = (
            list(ids) if ids is not None else None
        )
        self._population = (len(self._ids) if self._ids is not None
                            else len(dataset))
        if self._population < n_workers:
            raise ConfigurationError(
                f"{n_workers} workers for only {self._population} elements"
            )
        self.dataset = dataset
        self.scorer = scorer
        self.k = int(k)
        self.n_workers = int(n_workers)
        self.sync_interval = int(sync_interval)
        self.share_threshold = share_threshold
        self._factory = RngFactory(seed)
        self._root_entropy = self._factory._root.entropy
        self._index_config = index_config
        self._engine_config = engine_config or EngineConfig(k=k)
        self._index_cache = index_cache
        self._shared_memory = shared_memory
        self._shm_table = None
        self._memo = memo
        self._priors = priors
        self._trace = trace
        self._gate = gate
        self._table_version = int(table_version)
        self.backend: ShardBackend = make_backend(backend)
        # Coordinator state (persists across run() calls for resumption).
        self._started = False
        self._partitions: List[List[str]] = []
        self._buffer: TopKBuffer[str] = TopKBuffer(self.k)
        self._merged_ids: Set[str] = set()
        self.wall_time = 0.0
        self.total_scored = 0
        self.n_rounds = 0
        self.checkpoints: List[Tuple[float, float]] = []
        self._worker_times: List[float] = [0.0] * self.n_workers
        self._active: List[bool] = [True] * self.n_workers
        self._pending_floor: Optional[float] = None
        self._bound = ConvergenceBound(self.n_workers)
        self._last_outcomes: List[Optional[RoundOutcome]] = [None] * self.n_workers
        self._resume_count = 0
        self._restore_payloads: Optional[List[dict]] = None
        self._cache_hit = False

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "ShardedTopKEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def close(self) -> None:
        """Release backend resources (child processes, thread pools)."""
        self.backend.close()
        self._release_shm()

    def _release_shm(self) -> None:
        """Unlink the coordinator's shared-memory table, if any (idempotent)."""
        if self._shm_table is not None:
            self._shm_table.close()
            self._shm_table = None

    # -- setup ---------------------------------------------------------------

    def _build_specs(self) -> List[ShardSpec]:
        (self._partitions, specs, self._cache_hit,
         self._shm_table) = build_shard_specs(
            self.dataset, self.scorer,
            n_workers=self.n_workers, k=self.k,
            engine_config=self._engine_config,
            index_config=self._index_config,
            factory=self._factory, root_entropy=self._root_entropy,
            materialize=self.backend.name == "process",
            restore_payloads=self._restore_payloads,
            resume_count=self._resume_count,
            index_cache=self._index_cache,
            ids=self._ids,
            shared_memory=self._shared_memory,
            memo_snapshot=(self._memo.snapshot()
                           if self._memo is not None else None),
            priors=self._priors,
            trace=self._trace is not None,
            table_version=self._table_version,
        )
        return specs

    def start(self) -> None:
        """Bootstrap every shard eagerly (``run()`` otherwise does it lazily).

        Exposed so callers (and ``benchmarks/bench_shm.py``) can time the
        bootstrap — spec assembly plus backend start — separately from
        query execution.
        """
        self._ensure_started()

    def _ensure_started(self) -> None:
        if self._started:
            return
        specs = self._build_specs()
        try:
            self.backend.start(specs, self.dataset, self.scorer)
        except BaseException:
            # A failed start must leak neither pools (the backend cleans
            # its own partial state) nor the shared-memory segment.
            self.backend.close()
            self._release_shm()
            raise
        self._started = True
        if not self._cache_hit:
            harvest_shard_indexes(
                self._index_cache,
                root_entropy=self._root_entropy,
                index_config=self._index_config,
                n_elements=self._population,
                partitions=self._partitions,
                workers=self.backend.inline_workers(),
                subset=subset_fingerprint(self._ids),
                table_version=self._table_version,
            )

    # -- execution -----------------------------------------------------------

    def run(self, budget: Optional[int] = None) -> DistributedResult:
        """Execute until ``budget`` *total* scoring calls (default: all).

        The budget is cumulative across calls: after a partial run (or a
        snapshot/restore), calling ``run`` again with a larger budget
        continues from the merged state already reached.
        """
        self._ensure_started()
        total_budget = self._population if budget is None else min(
            budget, self._population
        )
        run_rounds = 0
        run_hits = 0
        run_fresh = 0
        while self.total_scored < total_budget and any(self._active):
            remaining = total_budget - self.total_scored
            per_worker = max(1, min(
                self.sync_interval,
                remaining // max(1, sum(self._active)),
            ))
            # Reserve the round's worst case from the service budget gate
            # before dispatch; the unspent remainder (memo hits, exhausted
            # shards) is refunded at the merge barrier below.
            reserved = 0
            if self._gate is not None:
                reserved = per_worker * sum(self._active)
                if not _fully_funded(self._gate, reserved):
                    break
            self.n_rounds += 1
            run_rounds += 1
            if self._trace is not None:
                self._trace.push(f"round[{self.n_rounds - 1}]",
                                 per_worker_cap=per_worker)
            round_started = time.perf_counter()
            outcomes = self.backend.run_round(
                per_worker, remaining, self._active, self._pending_floor,
            )
            round_elapsed = time.perf_counter() - round_started
            for outcome in outcomes:
                if outcome.table_version != self._table_version:
                    raise ConfigurationError(
                        f"shard {outcome.worker_id} reported table version "
                        f"{outcome.table_version}, coordinator pinned "
                        f"{self._table_version}"
                    )
                run_hits += outcome.memo_hits
                run_fresh += outcome.scored - outcome.memo_hits
                self.total_scored += outcome.scored
                self._worker_times[outcome.worker_id] += outcome.cost
                self._active[outcome.worker_id] = not outcome.exhausted
                self._last_outcomes[outcome.worker_id] = outcome
                if self._memo is not None:
                    # Coordinator-side write-back: shards only read their
                    # frozen memo slice; new scores land here at the round
                    # barrier, in worker order (deterministic).
                    if outcome.fresh_scores:
                        self._memo.record_pairs(outcome.fresh_scores)
                    self._memo.count(outcome.memo_hits,
                                     len(outcome.fresh_scores))
            if self._gate is not None:
                round_fresh = sum(o.scored - o.memo_hits for o in outcomes)
                if reserved > round_fresh:
                    self._gate.refund(reserved - round_fresh)
            if self.backend.virtual_clock:
                self.wall_time += max(o.cost for o in outcomes)
            else:
                self.wall_time += round_elapsed
            for outcome in outcomes:  # merge in worker order
                merge_worker_topk(self._buffer, self._merged_ids,
                                  outcome.topk)
            for outcome in outcomes:
                self._bound.update(outcome.worker_id, outcome.tail)
            self._bound.refresh(
                self._buffer.threshold,
                len(self._buffer) >= self.k,
                max(0, total_budget - self.total_scored),
            )
            self.checkpoints.append((self.wall_time, self._buffer.stk))
            if self.share_threshold and self._buffer.threshold is not None:
                self._pending_floor = self._buffer.threshold
            if self._trace is not None:
                for outcome in outcomes:
                    if outcome.span is not None:
                        self._trace.attach(
                            outcome.span,
                            rename=f"shard[{outcome.worker_id}]")
                self._trace.annotate(
                    threshold=self._buffer.threshold,
                    bound=self._bound.exhaustive_bound,
                    total_scored=self.total_scored)
                self._trace.pop()        # round[i]
        if run_rounds:
            ROUNDS_TOTAL.inc(run_rounds, backend=self.backend.name)
        if run_fresh:
            UDF_CALLS_TOTAL.inc(run_fresh, engine="sharded",
                                backend=self.backend.name)
        if run_hits:
            MEMO_HITS_TOTAL.inc(run_hits, engine="sharded",
                                backend=self.backend.name)
        return self.result()

    @property
    def displacement_bound(self) -> float:
        """Bound on displacement by any unscored element (1.0 = unknown)."""
        return self._bound.exhaustive_bound

    def result(self) -> DistributedResult:
        """Assemble the merged answer and trace reached so far."""
        workers = []
        for worker in range(self.n_workers):
            outcome = self._last_outcomes[worker]
            n_members = (len(self._partitions[worker])
                         if self._partitions else 0)
            workers.append(WorkerReport(
                worker_id=worker,
                n_elements=n_members,
                n_scored=outcome.n_scored_total if outcome else 0,
                virtual_time=self._worker_times[worker],
                local_stk=outcome.local_stk if outcome else 0.0,
                fallback_events=tuple(outcome.fallback_events)
                if outcome else (),
            ))
        items = [(element_id, score)
                 for score, element_id in self._buffer.items()]
        return DistributedResult(
            k=self.k,
            items=items,
            stk=self._buffer.stk,
            wall_time=self.wall_time,
            total_scored=self.total_scored,
            n_rounds=self.n_rounds,
            workers=workers,
            checkpoints=list(self.checkpoints),
            backend=self.backend.name,
            displacement_bound=self._bound.exhaustive_bound,
        )

    # -- pause / resume ------------------------------------------------------

    def snapshot(self) -> dict:
        """Capture the full sharded run: coordinator state + shard engines.

        Call between ``run()`` invocations (shards snapshot at round
        boundaries, where no batch is in flight).  The payload nests one
        :func:`repro.core.snapshot.snapshot_engine` dict per shard; like the
        single-engine snapshot, RNG state is *not* captured, so a resumed
        run is a valid sharded execution but not bit-identical to the
        uninterrupted one.
        """
        self._ensure_started()
        return {
            "format": _SNAPSHOT_FORMAT,
            "k": self.k,
            "n_workers": self.n_workers,
            "sync_interval": self.sync_interval,
            "share_threshold": self.share_threshold,
            "backend": self.backend.name,
            "root_entropy": self._root_entropy,
            "resume_count": self._resume_count,
            "table_version": self._table_version,
            "coordinator": {
                "buffer": [[score, element_id]
                           for score, element_id in self._buffer.items()],
                "merged_ids": sorted(self._merged_ids),
                "exhaustive_bound": self._bound.exhaustive_bound,
                "wall_time": self.wall_time,
                "total_scored": self.total_scored,
                "n_rounds": self.n_rounds,
                "checkpoints": [list(point) for point in self.checkpoints],
                "worker_times": list(self._worker_times),
                "active": list(self._active),
                "pending_floor": self._pending_floor,
                "worker_stats": [
                    [o.n_scored_total, o.local_stk,
                     [list(e) for e in o.fallback_events]]
                    if o else None
                    for o in self._last_outcomes
                ],
            },
            "workers": self.backend.snapshots(),
            # WHERE candidate subset; None when the whole table ran.
            "ids": self._ids,
            # Cross-query memo slice for this (table, udf) pair, so a
            # resumed run keeps its warm scores; None when caching is off.
            "memo": (self._memo.to_payload()
                     if self._memo is not None else None),
        }

    @classmethod
    def restore(cls, dataset: Dataset, scorer: Scorer, snapshot: dict,
                backend: Optional[str] = None,
                index_config: Optional[IndexConfig] = None,
                engine_config: Optional[EngineConfig] = None,
                index_cache: Optional[ShardIndexCache] = None,
                memo=None,
                table_version: int = 0,
                ) -> "ShardedTopKEngine":
        """Rebuild a sharded run from :meth:`snapshot` output.

        ``dataset`` must be the same immutable dataset, and
        ``index_config`` / ``engine_config`` must repeat whatever the
        original run used (shard indexes are rebuilt deterministically from
        the stored root entropy, and node IDs are verified during engine
        restore).  ``backend`` may differ — a run snapshotted under
        ``process`` can resume under ``serial`` and vice versa.

        ``memo`` optionally re-attaches a live
        :class:`~repro.memo.store.MemoView`; the snapshot's stored memo
        slice is merged into it (or, with no view supplied, revived into a
        standalone store) so the resumed run stays warm.

        ``table_version`` must repeat the live-table version the run was
        snapshotted against (0 for immutable datasets): a paused run
        holds per-shard engine state valid only for the rows it saw, so
        restoring it onto a table that has since committed writes is
        rejected rather than silently resumed against different data.
        """
        if snapshot.get("format") != _SNAPSHOT_FORMAT:
            raise SerializationError(
                f"unrecognized sharded snapshot format "
                f"{snapshot.get('format')!r}"
            )
        stored_version = int(snapshot.get("table_version", 0))
        if stored_version != int(table_version):
            raise ConfigurationError(
                f"snapshot was taken at table version {stored_version}, "
                f"cannot restore against version {int(table_version)}"
            )
        subset = snapshot.get("ids")
        engine = cls(
            dataset, scorer, k=int(snapshot["k"]),
            n_workers=int(snapshot["n_workers"]),
            backend=backend or snapshot["backend"],
            index_config=index_config,
            engine_config=engine_config,
            sync_interval=int(snapshot["sync_interval"]),
            share_threshold=bool(snapshot["share_threshold"]),
            seed=None,
            index_cache=index_cache,
            ids=None if subset is None else [str(i) for i in subset],
            table_version=stored_version,
        )
        # Re-anchor the RNG streams to the original run's root entropy so
        # partitions and shard indexes rebuild identically.
        engine._factory = RngFactory(snapshot["root_entropy"])
        engine._root_entropy = snapshot["root_entropy"]
        engine._resume_count = int(snapshot.get("resume_count", 0)) + 1
        engine._restore_payloads = list(snapshot["workers"])
        memo_payload = snapshot.get("memo")
        if memo is not None:
            if memo_payload is not None:
                memo.record_pairs(list(memo_payload["scores"].items()))
            engine._memo = memo
        elif memo_payload is not None:
            from repro.memo.store import MemoView

            engine._memo = MemoView.from_payload(memo_payload)
        state = snapshot["coordinator"]
        for score, element_id in state["buffer"]:
            engine._buffer.offer(float(score), element_id)
        engine._merged_ids = set(state["merged_ids"])
        engine.wall_time = float(state["wall_time"])
        engine.total_scored = int(state["total_scored"])
        engine.n_rounds = int(state["n_rounds"])
        engine.checkpoints = [tuple(point)
                              for point in state["checkpoints"]]
        engine._bound.exhaustive_bound = float(
            state.get("exhaustive_bound", 1.0)
        )
        engine._worker_times = [float(t) for t in state["worker_times"]]
        engine._active = [bool(flag) for flag in state["active"]]
        floor = state.get("pending_floor")
        engine._pending_floor = None if floor is None else float(floor)
        for worker, stats in enumerate(state.get("worker_stats", [])):
            if stats is not None:
                n_scored, local_stk, events = stats
                engine._last_outcomes[worker] = RoundOutcome(
                    worker_id=worker, scored=0, cost=0.0, elapsed=0.0,
                    topk=[], exhausted=not engine._active[worker],
                    n_scored_total=int(n_scored),
                    local_stk=float(local_stk),
                    fallback_events=[(int(t), str(kind))
                                     for t, kind in events],
                )
        return engine
