"""Zero-copy shard bootstrap: shared-memory feature tables for processes.

The paper's Section-6 MapReduce sketch assumes workers *map* the table.
The copy path of :func:`repro.parallel.worker.build_shard_specs` does the
opposite: it stacks each partition's objects and feature matrix into the
:class:`~repro.parallel.worker.ShardSpec`, so a process child's bootstrap
cost (spec pickling, transfer, re-materialization) and resident set grow
linearly with the table.  This module restores the map semantics on one
machine: the coordinator packs everything a shard needs into a single
:mod:`multiprocessing.shared_memory` segment and ships each child a
constant-size :class:`SharedSliceRef` instead of the data.

Segment layout (one segment per engine run, 64-byte aligned spans):

* per shard — the partition's **member ids** (a fixed-width numpy unicode
  array), its **feature block** (``(n_w, d)`` float64, C-contiguous, so
  the child maps it as a true zero-copy view), and its **objects blob**
  (the partition's elements, pickled once by the coordinator; children
  unpickle straight out of the mapping instead of receiving a per-child
  pipe transfer);
* optionally per shard — a cached
  :class:`~repro.index.tree.ClusterTree` (a shard-index-cache hit headed
  to a child): the tree *structure* rides in the ref as nested tuples of
  O(#leaves) size while its float payload (leaf centroids) and leaf
  membership (local row indices) live in the segment.

Lifecycle (the invariant: **no orphan segments survive, ever**):

* the coordinator owns the segment via :class:`SharedFeatureTable`;
  :meth:`SharedFeatureTable.close` is idempotent and unlinks;
* a :func:`weakref.finalize` on every table re-runs that cleanup when the
  table is garbage collected or the interpreter exits (``finalize``
  callbacks run at shutdown), and a module-level ``atexit`` sweep of all
  owned segment names is kept as a second net — so an engine that
  crashes before ``close()`` still unlinks;
* children attach by name through a per-process refcounted cache
  (:func:`attach_segment` / :func:`detach_segment`), and an ``atexit``
  hook closes whatever is still mapped.  Python < 3.13 registers
  *attachments* with :mod:`multiprocessing.resource_tracker` exactly like
  creations, but the tracker's per-name cache is a set shared by the
  whole process tree, so the child registrations are no-ops and the
  owner's ``unlink`` performs the single balanced unregister — children
  must *not* unregister themselves (that would poison the owner's entry
  and make its ``unlink`` warn);
* a child killed with SIGKILL leaks nothing: only the owner's name is
  linked in the filesystem namespace, and the owner (or, after a hard
  owner crash, the resource tracker) unlinks it.

``shm_probe()`` reports whether POSIX shared memory actually works here
(some sandboxes mount no ``/dev/shm``); the engines auto-enable the shm
path for process backends only when it does, and fall back to the copy
path — never fail — when packing is impossible.  Set
``REPRO_DISABLE_SHM=1`` to force the copy path globally.
"""

from __future__ import annotations

import atexit
import os
import pickle
import secrets
import weakref
from dataclasses import dataclass, replace
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.index.tree import ClusterNode, ClusterTree

#: Filesystem prefix of every segment this library creates — the leak
#: gate (``tools/check_shm_leaks.py``) and the tests key on it.
SEGMENT_PREFIX = "repro-shm-"

_ALIGNMENT = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


# ---------------------------------------------------------------------------
# Spans: constant-size descriptors of arrays/blobs inside the segment.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ArraySpan:
    """One numpy array inside the segment: offset + dtype + shape."""

    offset: int
    dtype: str
    shape: Tuple[int, ...]


@dataclass(frozen=True)
class BytesSpan:
    """One raw byte range inside the segment (a pickle blob)."""

    offset: int
    size: int


@dataclass(frozen=True)
class SharedTreeRef:
    """A cached cluster tree whose float payload lives in the segment.

    ``structure`` is the nested node skeleton —
    ``("node", node_id, (children...))`` internals and
    ``("leaf", node_id, member_start, member_count, centroid_row)``
    leaves — O(#nodes) small; ``members`` holds every leaf's element
    positions (indices into the shard's member-id array) concatenated in
    pre-order, and ``centroids`` the stacked leaf centroids.
    """

    structure: tuple
    members: ArraySpan
    centroids: Optional[ArraySpan]


@dataclass(frozen=True)
class SharedSliceRef:
    """Picklable, O(1)-wire-size handle to one shard's slice of the table.

    This is what a :class:`~repro.parallel.worker.ShardSpec` carries in
    ``features_ref`` instead of inline member ids / objects / features:
    a segment name plus constant-size spans.  Its pickled size does not
    depend on the partition size (pinned by ``tests/test_shm.py``).
    """

    segment: str
    ids: ArraySpan
    features: ArraySpan
    objects: BytesSpan
    tree: Optional[SharedTreeRef] = None

    def resolve(self) -> "ResolvedShard":
        """Attach the segment and materialize this shard's bootstrap data.

        The feature block comes back as a **read-only zero-copy view**
        into the mapping; member ids and objects are decoded into regular
        Python objects (the engine mutates neither).  The attachment is
        refcounted per process and released at interpreter exit.
        """
        segment = attach_segment(self.segment)
        buf = segment.buf
        ids_view = _as_array(buf, self.ids)
        member_ids = ids_view.tolist()
        features = _as_array(buf, self.features)
        features.flags.writeable = False
        start, stop = self.objects.offset, self.objects.offset + self.objects.size
        objects = pickle.loads(bytes(buf[start:stop]))
        index = (None if self.tree is None
                 else _decode_tree(self.tree, member_ids, buf))
        return ResolvedShard(segment=self.segment, member_ids=member_ids,
                             objects=objects, features=features, index=index)


@dataclass
class ResolvedShard:
    """Child-side view of one shard's slice (see :meth:`SharedSliceRef.resolve`)."""

    segment: str
    member_ids: List[str]
    objects: list
    features: np.ndarray
    index: Optional[ClusterTree] = None

    def close(self) -> None:
        """Release this resolution's hold on the segment attachment."""
        detach_segment(self.segment)


def _as_array(buf, span: ArraySpan) -> np.ndarray:
    return np.ndarray(span.shape, dtype=np.dtype(span.dtype), buffer=buf,
                      offset=span.offset)


# ---------------------------------------------------------------------------
# Child-side attachment cache (refcounted; atexit-drained).
# ---------------------------------------------------------------------------

_ATTACHED: Dict[str, List[Any]] = {}  # name -> [SharedMemory, refcount]


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach (or re-use this process's attachment of) a named segment."""
    entry = _ATTACHED.get(name)
    if entry is None:
        try:
            segment = shared_memory.SharedMemory(name=name, create=False)
        except FileNotFoundError:
            raise ConfigurationError(
                f"shared-memory segment {name!r} does not exist (was the "
                f"coordinator's SharedFeatureTable closed early?)"
            ) from None
        entry = _ATTACHED[name] = [segment, 0]
    entry[1] += 1
    return entry[0]


def detach_segment(name: str) -> None:
    """Drop one reference; the mapping closes when the count reaches zero."""
    entry = _ATTACHED.get(name)
    if entry is None:
        return
    entry[1] -= 1
    if entry[1] <= 0:
        _ATTACHED.pop(name, None)
        try:
            entry[0].close()
        except BufferError:
            # Live numpy views still reference the mapping; the OS unmaps
            # at process exit regardless, and the segment's lifetime is
            # the owner's concern — nothing leaks.
            pass


def _drain_attachments() -> None:  # pragma: no cover - exit path
    for name in list(_ATTACHED):
        entry = _ATTACHED.pop(name, None)
        if entry is None:
            continue
        try:
            entry[0].close()
        except Exception:
            pass


atexit.register(_drain_attachments)


# ---------------------------------------------------------------------------
# Owner-side packing.
# ---------------------------------------------------------------------------


class _SegmentLayout:
    """Two-pass packer: reserve aligned spans, then copy into the mapping."""

    def __init__(self) -> None:
        self._arrays: List[Tuple[int, np.ndarray]] = []
        self._blobs: List[Tuple[int, bytes]] = []
        self.size = 0

    def add_array(self, array: np.ndarray) -> ArraySpan:
        array = np.ascontiguousarray(array)
        offset = _aligned(self.size)
        self._arrays.append((offset, array))
        self.size = offset + array.nbytes
        return ArraySpan(offset=offset, dtype=str(array.dtype),
                         shape=tuple(array.shape))

    def add_bytes(self, blob: bytes) -> BytesSpan:
        offset = _aligned(self.size)
        self._blobs.append((offset, blob))
        self.size = offset + len(blob)
        return BytesSpan(offset=offset, size=len(blob))

    def write(self, buf) -> None:
        for offset, array in self._arrays:
            if array.nbytes == 0:
                continue
            target = np.ndarray(array.shape, dtype=array.dtype, buffer=buf,
                                offset=offset)
            target[...] = array
        for offset, blob in self._blobs:
            buf[offset:offset + len(blob)] = blob


def _pack_tree(tree: ClusterTree, member_ids: Sequence[str],
               layout: _SegmentLayout) -> SharedTreeRef:
    """Encode a cached shard index: structure inline, floats in the segment."""
    position = {element_id: row for row, element_id in enumerate(member_ids)}
    members: List[int] = []
    centroids: List[np.ndarray] = []

    def encode(node: ClusterNode) -> tuple:
        if node.is_leaf:
            start = len(members)
            members.extend(position[element_id]
                           for element_id in node.member_ids)
            centroid_row = -1
            if node.centroid is not None:
                centroid_row = len(centroids)
                centroids.append(np.asarray(node.centroid, dtype=float))
            return ("leaf", node.node_id, start, len(node.member_ids),
                    centroid_row)
        return ("node", node.node_id,
                tuple(encode(child) for child in node.children))

    structure = encode(tree.root)
    members_span = layout.add_array(np.asarray(members, dtype=np.int64))
    centroids_span = (layout.add_array(np.stack(centroids))
                      if centroids else None)
    return SharedTreeRef(structure=structure, members=members_span,
                         centroids=centroids_span)


def _decode_tree(ref: SharedTreeRef, member_ids: Sequence[str],
                 buf) -> ClusterTree:
    members = _as_array(buf, ref.members)
    centroids = (None if ref.centroids is None
                 else _as_array(buf, ref.centroids))

    def decode(struct: tuple) -> ClusterNode:
        if struct[0] == "leaf":
            _kind, node_id, start, count, centroid_row = struct
            rows = members[start:start + count]
            centroid = (np.array(centroids[centroid_row], dtype=float)
                        if centroid_row >= 0 and centroids is not None
                        else None)
            return ClusterNode(
                node_id=str(node_id),
                member_ids=tuple(member_ids[int(row)] for row in rows),
                centroid=centroid,
            )
        _kind, node_id, children = struct
        return ClusterNode(node_id=str(node_id),
                           children=[decode(child) for child in children])

    return ClusterTree(decode(ref.structure))


_OWNED_SEGMENTS: set = set()


def _cleanup_segment(segment: shared_memory.SharedMemory) -> None:
    """Owner-side teardown: close the mapping and unlink the name."""
    _OWNED_SEGMENTS.discard(segment.name)
    try:
        segment.close()
    except Exception:
        pass
    try:
        segment.unlink()
    except Exception:
        pass


def _sweep_owned() -> None:  # pragma: no cover - exit path
    for name in list(_OWNED_SEGMENTS):
        _OWNED_SEGMENTS.discard(name)
        try:
            stale = shared_memory.SharedMemory(name=name, create=False)
        except Exception:
            continue
        try:
            stale.close()
        except Exception:
            pass
        try:
            stale.unlink()
        except Exception:
            pass


atexit.register(_sweep_owned)


class SharedFeatureTable:
    """Coordinator-owned shared-memory segment holding every shard's slice.

    Build one with :meth:`create` (one segment per engine run), hand each
    shard its :meth:`ref`, and :meth:`close` when the run ends.  Closing
    is idempotent; a ``weakref.finalize`` re-runs it on garbage
    collection and at interpreter exit, so no code path — including an
    engine error mid-start — leaves the segment linked.
    """

    def __init__(self, segment: shared_memory.SharedMemory,
                 refs: List[SharedSliceRef]) -> None:
        self._segment = segment
        self.name = segment.name
        self._refs = refs
        _OWNED_SEGMENTS.add(segment.name)
        self._finalizer = weakref.finalize(self, _cleanup_segment, segment)

    # -- construction --------------------------------------------------------

    @classmethod
    def create(cls, shards: Sequence[dict]) -> "SharedFeatureTable":
        """Pack per-shard payloads into one fresh segment.

        Each entry of ``shards`` is a dict with ``member_ids`` (list of
        str), ``objects`` (the partition's elements, any picklable
        type), ``features`` (``(n_w, d)`` array) and optional ``tree``
        (a cached :class:`ClusterTree` for that shard).
        """
        layout = _SegmentLayout()
        partial_refs: List[SharedSliceRef] = []
        for shard in shards:
            # Width inference (``<U{max}``) happens in C inside asarray;
            # widths only need to be consistent within one shard's array.
            ids_array = np.asarray(list(shard["member_ids"]))
            if ids_array.dtype.kind != "U":
                ids_array = ids_array.astype(str)
            ids_span = layout.add_array(ids_array)
            features = np.asarray(shard["features"], dtype=float)
            if features.ndim == 1:
                features = features.reshape(-1, 1)
            features_span = layout.add_array(features)
            objects_span = layout.add_bytes(
                pickle.dumps(list(shard["objects"]),
                             protocol=pickle.HIGHEST_PROTOCOL)
            )
            tree = shard.get("tree")
            tree_ref = (None if tree is None
                        else _pack_tree(tree, shard["member_ids"], layout))
            partial_refs.append(SharedSliceRef(
                segment="", ids=ids_span, features=features_span,
                objects=objects_span, tree=tree_ref,
            ))
        segment = _create_segment(max(1, layout.size))
        try:
            layout.write(segment.buf)
        except BaseException:
            _cleanup_segment(segment)
            raise
        refs = [replace(ref, segment=segment.name) for ref in partial_refs]
        return cls(segment, refs)

    # -- access --------------------------------------------------------------

    def ref(self, worker_id: int) -> SharedSliceRef:
        """The picklable slice handle for one shard, in worker order."""
        return self._refs[worker_id]

    @property
    def nbytes(self) -> int:
        """Segment size in bytes."""
        return self._segment.size

    # -- lifecycle -----------------------------------------------------------

    @property
    def closed(self) -> bool:
        """True once the segment has been unlinked."""
        return not self._finalizer.alive

    def close(self) -> None:
        """Unlink the segment (idempotent; children's mappings survive)."""
        self._finalizer()

    def __enter__(self) -> "SharedFeatureTable":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else f"{self.nbytes} bytes"
        return (f"SharedFeatureTable(name={self.name!r}, "
                f"shards={len(self._refs)}, {state})")


def _create_segment(size: int) -> shared_memory.SharedMemory:
    """Create a fresh uniquely-named segment (retrying name collisions)."""
    last_error: Optional[Exception] = None
    for _attempt in range(8):
        name = SEGMENT_PREFIX + secrets.token_hex(8)
        try:
            return shared_memory.SharedMemory(name=name, create=True,
                                              size=size)
        except FileExistsError as exc:  # pragma: no cover - 2^64 space
            last_error = exc
    raise ConfigurationError(
        f"could not allocate a unique shared-memory segment: {last_error}"
    )


# ---------------------------------------------------------------------------
# Capability probe + policy.
# ---------------------------------------------------------------------------

_PROBE: Optional[Tuple[Optional[str]]] = None


def shm_probe(refresh: bool = False) -> Optional[str]:
    """``None`` when POSIX shared memory works here, else the reason.

    Probed once per process (create + map + unlink of a tiny segment)
    and cached; ``refresh=True`` re-probes.
    """
    global _PROBE
    if _PROBE is None or refresh:
        reason: Optional[str] = None
        try:
            segment = shared_memory.SharedMemory(create=True, size=16)
        except Exception as exc:
            reason = f"{type(exc).__name__}: {exc}"
        else:
            try:
                segment.close()
                segment.unlink()
            except Exception:
                pass
        _PROBE = (reason,)
    return _PROBE[0]


def shm_available() -> bool:
    """True when the zero-copy bootstrap path can run on this machine."""
    return shm_probe() is None


def shm_default_enabled() -> bool:
    """Auto-enable policy: shm works and ``REPRO_DISABLE_SHM`` is unset."""
    if os.environ.get("REPRO_DISABLE_SHM", "").strip().lower() in (
            "1", "true", "yes", "on"):
        return False
    return shm_available()


def process_private_rss_kb() -> int:
    """This process's private (unshared) resident set, in kilobytes.

    Reads ``/proc/self/smaps_rollup`` (``Private_Clean + Private_Dirty``)
    so pages of a mapped shared segment — resident but shared across
    shard children — are *not* charged; falls back to ``VmRSS`` and
    finally to 0 where ``/proc`` is unavailable.  Used by
    ``benchmarks/bench_shm.py`` to measure per-child bootstrap RSS.
    """
    try:
        text = open("/proc/self/smaps_rollup", encoding="ascii").read()
        private = 0
        for line in text.splitlines():
            if line.startswith(("Private_Clean:", "Private_Dirty:")):
                private += int(line.split()[1])
        return private
    except OSError:
        pass
    try:
        for line in open("/proc/self/status", encoding="ascii"):
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    except OSError:  # pragma: no cover - non-Linux
        pass
    return 0
