"""Real sharded execution of opaque top-k queries (paper Section 6).

The subsystem splits a query across ``W`` shards — per-shard index plus
bandit engine, periodic coordinator merge, k-th-score threshold broadcast —
and executes them on a pluggable backend:

* ``serial``  — deterministic single-thread round simulation (bit-identical
  to the original :mod:`repro.distributed` module, virtual clock);
* ``thread``  — one thread per shard per round (``concurrent.futures``);
* ``process`` — one pinned child process per shard, built once from a
  picklable :class:`~repro.parallel.worker.ShardSpec`.

Entry point: :class:`~repro.parallel.engine.ShardedTopKEngine`.  The
architecture and protocol invariants are documented in
``docs/architecture.md``.
"""

from repro.parallel.backends import (
    BACKENDS,
    ProcessBackend,
    SerialBackend,
    ShardBackend,
    ThreadBackend,
    available_backends,
    backend_availability,
    make_backend,
)
from repro.parallel.cache import ShardIndexCache, shard_cache_key
from repro.parallel.shm import (
    SharedFeatureTable,
    SharedSliceRef,
    shm_available,
    shm_probe,
)
from repro.parallel.engine import (
    DistributedResult,
    ShardedTopKEngine,
    WorkerReport,
    merge_worker_topk,
)
from repro.parallel.worker import (
    RoundOutcome,
    ShardDataset,
    ShardSpec,
    ShardWorker,
    build_shard_specs,
    partition_ids,
)

__all__ = [
    "BACKENDS",
    "DistributedResult",
    "ProcessBackend",
    "RoundOutcome",
    "SerialBackend",
    "ShardBackend",
    "ShardDataset",
    "ShardIndexCache",
    "ShardSpec",
    "ShardWorker",
    "ShardedTopKEngine",
    "SharedFeatureTable",
    "SharedSliceRef",
    "ThreadBackend",
    "WorkerReport",
    "available_backends",
    "backend_availability",
    "build_shard_specs",
    "make_backend",
    "merge_worker_topk",
    "partition_ids",
    "shard_cache_key",
    "shm_available",
    "shm_probe",
]
