"""Execution backends for the streaming engine: serial, thread, process.

A streaming backend answers a different question than the round-based
:mod:`repro.parallel.backends`: instead of "run every shard for one
synchronized round", the coordinator asks "run *this* shard for one small
budget slice" (:meth:`StreamBackend.submit`) and, independently, "hand me
whichever in-flight slice finishes next" (:meth:`StreamBackend.next_event`).
There is no barrier anywhere — each shard is resubmitted the moment its
previous slice is merged, so a slow shard never gates the others and the
coordinator merges outcomes strictly in arrival order.

The coordinator keeps **at most one slice in flight per shard** (it only
resubmits a shard after consuming that shard's previous outcome), which is
what makes the broadcast threshold's staleness bounded: a slice runs with
the floor captured at its submission, i.e. at most one slice older than
the global truth.  See ``docs/architecture.md`` ("Streaming execution").

* :class:`SerialStreamBackend` is the deterministic simulation: a slice is
  executed eagerly at submission (with exactly the floor it was submitted
  under) and its outcome is released in virtual-completion order — each
  worker carries its own virtual clock advanced by the slice's
  latency-model cost, and ties break by worker id.  This reproduces the
  arrival interleaving of a perfectly parallel execution, bit for bit,
  making streaming runs snapshot-testable.
* :class:`ThreadStreamBackend` runs slices on a thread pool (one thread
  per shard) and releases genuinely real arrivals.
* :class:`ProcessStreamBackend` reuses the pinned one-process-per-shard
  placement of the round engine (same ``process_init`` /
  ``process_run_round`` entry points, same picklable
  :class:`~repro.parallel.worker.ShardSpec` bootstrap), so shard state
  stays resident in its child for the whole run and only
  ``(cap, floor)`` / outcome payloads cross the pipe per slice.

The registry mirrors :data:`repro.parallel.backends.BACKENDS` name for
name — one backend vocabulary across both execution modes, introspected
(never hard-coded) by the CLI and the session dialect.
"""

from __future__ import annotations

import heapq
import os
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Type

from repro.errors import ConfigurationError
from repro.parallel.backends import (
    BACKENDS as _ROUND_BACKENDS,
    backend_availability,
    start_process_pools,
)
from repro.parallel.worker import (
    RoundOutcome,
    ShardSpec,
    ShardWorker,
    process_run_round,
    process_snapshot,
)


@dataclass(frozen=True)
class SliceEvent:
    """One completed slice, as released to the coordinator.

    ``virtual_completion`` is set only by the serial simulation backend
    (the worker's virtual clock at slice completion); real backends leave
    it ``None`` and the coordinator measures wall-clock itself.
    """

    outcome: RoundOutcome
    virtual_completion: Optional[float] = None


class StreamBackend:
    """Common interface; subclasses define placement and arrival order."""

    name: str = "abstract"
    #: True when slice costs drive a virtual clock (simulation); False when
    #: the coordinator should measure real wall-clock instead.
    virtual_clock: bool = True

    def start(self, specs: List[ShardSpec], dataset, scorer,
              worker_times: Optional[List[float]] = None) -> None:
        """Materialize the shards; ``worker_times`` seeds virtual clocks."""
        raise NotImplementedError

    def submit(self, worker_id: int, cap: int,
               threshold_floor: Optional[float]) -> None:
        """Schedule one budget slice on one shard (non-blocking intent)."""
        raise NotImplementedError

    def next_event(self) -> SliceEvent:
        """Block until the next in-flight slice completes; arrival order."""
        raise NotImplementedError

    def snapshots(self) -> List[dict]:
        """Collect every shard's engine snapshot (no slice may be in flight)."""
        raise NotImplementedError

    def inline_workers(self) -> Optional[List[ShardWorker]]:
        """In-process :class:`ShardWorker` list, for index harvesting."""
        return None

    def close(self) -> None:
        """Release any pools; idempotent."""


class SerialStreamBackend(StreamBackend):
    """Deterministic merge-on-arrival simulation — the streaming oracle.

    ``submit`` runs the slice immediately (shard state lives in-process
    and the floor is, by protocol, the one known at submission time) and
    parks the outcome on a heap keyed by ``(virtual completion, worker)``;
    ``next_event`` releases the earliest completion.  Because the
    coordinator holds one in-flight slice per shard, the heap never holds
    two entries for the same worker and the interleaving is a pure
    function of the seed and the latency model.
    """

    name = "serial"
    virtual_clock = True

    def __init__(self) -> None:
        self.workers: List[ShardWorker] = []
        self._clock: List[float] = []
        self._ready: List[Tuple[float, int, RoundOutcome]] = []

    def start(self, specs: List[ShardSpec], dataset, scorer,
              worker_times: Optional[List[float]] = None) -> None:
        self.workers = [ShardWorker(spec, dataset=dataset, scorer=scorer)
                        for spec in specs]
        self._clock = list(worker_times or [0.0] * len(self.workers))

    def submit(self, worker_id: int, cap: int,
               threshold_floor: Optional[float]) -> None:
        outcome = self.workers[worker_id].run_round(cap, threshold_floor)
        self._clock[worker_id] += outcome.cost
        heapq.heappush(self._ready,
                       (self._clock[worker_id], worker_id, outcome))

    def next_event(self) -> SliceEvent:
        if not self._ready:
            raise ConfigurationError("next_event() with no slice in flight")
        completion, _worker, outcome = heapq.heappop(self._ready)
        return SliceEvent(outcome, virtual_completion=completion)

    def snapshots(self) -> List[dict]:
        return [worker.snapshot() for worker in self.workers]

    def inline_workers(self) -> Optional[List[ShardWorker]]:
        return self.workers


class _FutureArrivals:
    """Shared future bookkeeping for the real (thread/process) backends."""

    def __init__(self) -> None:
        self._pending: Dict[Future, int] = {}

    def track(self, future: Future, worker_id: int) -> None:
        self._pending[future] = worker_id

    def next_outcome(self) -> RoundOutcome:
        if not self._pending:
            raise ConfigurationError("next_event() with no slice in flight")
        done, _running = wait(list(self._pending),
                              return_when=FIRST_COMPLETED)
        # Several slices may have completed while the coordinator was
        # merging; release the lowest worker id first so the consumption
        # order at least breaks ties stably.
        future = min(done, key=lambda f: self._pending[f])
        self._pending.pop(future)
        return future.result()

    def drained(self) -> bool:
        return not self._pending


class ThreadStreamBackend(StreamBackend):
    """One continuously refilled thread per shard via ThreadPoolExecutor."""

    name = "thread"
    virtual_clock = False

    def __init__(self) -> None:
        self.workers: List[ShardWorker] = []
        self._pool: Optional[ThreadPoolExecutor] = None
        self._arrivals = _FutureArrivals()

    def start(self, specs: List[ShardSpec], dataset, scorer,
              worker_times: Optional[List[float]] = None) -> None:
        self.workers = [ShardWorker(spec, dataset=dataset, scorer=scorer)
                        for spec in specs]
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, len(self.workers)),
            thread_name_prefix="repro-stream",
        )

    def submit(self, worker_id: int, cap: int,
               threshold_floor: Optional[float]) -> None:
        assert self._pool is not None, "start() must run first"
        future = self._pool.submit(self.workers[worker_id].run_round,
                                   cap, threshold_floor)
        self._arrivals.track(future, worker_id)

    def next_event(self) -> SliceEvent:
        return SliceEvent(self._arrivals.next_outcome())

    def snapshots(self) -> List[dict]:
        assert self._arrivals.drained(), "snapshot with slices in flight"
        return [worker.snapshot() for worker in self.workers]

    def inline_workers(self) -> Optional[List[ShardWorker]]:
        return self.workers

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessStreamBackend(StreamBackend):
    """One pinned child process per shard, slices streamed down the pipe."""

    name = "process"
    virtual_clock = False

    def __init__(self) -> None:
        self._pools: List[ProcessPoolExecutor] = []
        self._arrivals = _FutureArrivals()

    def start(self, specs: List[ShardSpec], dataset, scorer,
              worker_times: Optional[List[float]] = None) -> None:
        # Shares the round backend's concurrent pool bootstrap (warmed-up
        # children, shm-or-inline spec validation, no leaked pools on a
        # failed start).
        self._pools = start_process_pools(specs)

    def submit(self, worker_id: int, cap: int,
               threshold_floor: Optional[float]) -> None:
        future = self._pools[worker_id].submit(process_run_round,
                                               cap, threshold_floor)
        self._arrivals.track(future, worker_id)

    def next_event(self) -> SliceEvent:
        return SliceEvent(self._arrivals.next_outcome())

    def snapshots(self) -> List[dict]:
        assert self._arrivals.drained(), "snapshot with slices in flight"
        return [pool.submit(process_snapshot).result()
                for pool in self._pools]

    def close(self) -> None:
        for pool in self._pools:
            pool.shutdown(wait=True)
        self._pools = []


#: Same names, same order as the round engine's registry — one backend
#: vocabulary across execution modes (asserted by tests and introspected by
#: the CLI / session layer rather than ever hard-coded).
STREAM_BACKENDS: Dict[str, Type[StreamBackend]] = {
    SerialStreamBackend.name: SerialStreamBackend,
    ThreadStreamBackend.name: ThreadStreamBackend,
    ProcessStreamBackend.name: ProcessStreamBackend,
}

assert set(STREAM_BACKENDS) == set(_ROUND_BACKENDS), (
    "streaming backend registry diverged from repro.parallel.BACKENDS"
)


def available_backends() -> List[str]:
    """Names of the usable streaming backends, serial first.

    Availability mirrors the round registry's probe (same placements, same
    child-process requirements — see
    :func:`repro.parallel.backends.backend_availability`).
    """
    return [name for name, reason in backend_availability().items()
            if reason is None and name in STREAM_BACKENDS]


def make_stream_backend(name: str) -> StreamBackend:
    """Instantiate a streaming backend by name; raise with guidance."""
    try:
        backend_cls = STREAM_BACKENDS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown streaming backend {name!r}; available: "
            f"{', '.join(available_backends())} "
            f"(this machine reports {os.cpu_count() or 1} CPU core(s))"
        ) from None
    reason = backend_availability().get(name)
    if reason is not None:
        raise ConfigurationError(
            f"streaming backend {name!r} is unavailable here: {reason}"
        )
    return backend_cls()
