"""Barrier-free streaming top-k: merge on arrival, progressive results.

The round-based coordinator (:mod:`repro.parallel.engine`) synchronizes
every shard at a barrier each round, so the slowest shard gates the merge
and callers see nothing until the whole run returns.
:class:`StreamingTopKEngine` removes the barrier: shard workers run
continuously in small budget *slices*, the coordinator merges each
:class:`~repro.streaming.backends.SliceEvent` the moment it arrives into
the global :class:`~repro.core.minmax_heap.TopKBuffer`, and the k-th-score
threshold is re-broadcast asynchronously — a shard picks up the latest
floor at its next slice boundary, never mid-slice.

Protocol invariants (normative statement in ``docs/architecture.md``):

* **One slice in flight per shard.**  A shard is resubmitted only after
  its previous outcome is merged, so the floor a slice runs under is at
  most one slice stale, and the merge order is a total order of arrivals.
* **Budget reservation.**  A slice reserves its cap from the shared
  budget at submission and returns the unused part on arrival; after
  every merge the unreserved budget is re-offered to *all* idle active
  shards (dealt fairly when it cannot fund a full slice each), so a
  shard that exhausts mid-slice frees budget for the others and the
  engine never overshoots the requested budget even though shards stop
  at different times.
* **Monotone floor.**  The broadcast floor only rises (the global buffer
  threshold is monotone), so a stale floor is always a *lower bound* on
  the true one — shards may waste a little effort, never lose answers.
* **Lossless merge.**  Identical to the round engine:
  :func:`repro.parallel.engine.merge_worker_topk` offers every first
  sighting and never re-admits an evicted id.

The anytime surface is :meth:`StreamingTopKEngine.results_iter`, a
generator of :class:`ProgressiveResult` snapshots (top-k, budget spent,
threshold, convergence flag, displacement bounds) emitted as merges
land — the first snapshot arrives after the first slice, i.e.
time-to-first-result is one slice latency instead of one full run.
``converged`` turns true when the answer is provably final for the drive
(budget spent or every shard exhausted) or when an optional early-stop
rule fires: ``stable_slices=s`` stops once every still-active shard has
reported ``s`` consecutive slices without the top-k id set changing (a
heuristic), and ``confidence=p`` stops once the coordinator's
:class:`~repro.core.convergence.ConvergenceBound` — fed by the sketch
tail summaries every slice ships — certifies at level ``p`` that the
rest of the budget would not change the answer (the principled stop;
see ``docs/streaming.md``).

On the ``serial`` backend the whole pipeline is a deterministic
event-driven simulation (virtual clocks, arrival order =
``(completion, worker)``), so streaming runs are snapshot-testable; on
``thread`` / ``process`` the same protocol runs on real concurrency and
the clocks are measured — and with ``record=True`` the real arrival
order is logged to a :class:`~repro.replay.trace.ArrivalTrace` that
:mod:`repro.replay` re-executes bit-identically.  Shard bootstrap,
picklable :class:`~repro.parallel.worker.ShardSpec`, snapshot/resume,
and the shard-index cache are all shared with the round engine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (ClassVar, Dict, Iterator, List, Optional, Sequence,
                    Set, Tuple, Union)

from repro.core.convergence import ConvergenceBound, check_confidence
from repro.core.engine import EngineConfig, _fully_funded
from repro.core.minmax_heap import TopKBuffer
from repro.core.result import ResultBase
from repro.data.dataset import Dataset
from repro.errors import ConfigurationError, SerializationError
from repro.index.builder import IndexConfig
from repro.obs.metrics import (
    MEMO_HITS_TOTAL,
    SLICES_TOTAL,
    THRESHOLD_STALENESS,
    UDF_CALLS_TOTAL,
)
from repro.obs.spans import TraceContext
from repro.parallel.cache import ShardIndexCache, subset_fingerprint
from repro.parallel.engine import WorkerReport, merge_worker_topk
from repro.parallel.worker import (
    RoundOutcome,
    build_shard_specs,
    harvest_shard_indexes,
)
from repro.scoring.base import Scorer
from repro.streaming.backends import (
    SliceEvent,
    StreamBackend,
    make_stream_backend,
)
from repro.utils.rng import RngFactory

_SNAPSHOT_FORMAT = "repro-streaming-snapshot/1"


@dataclass(frozen=True)
class ProgressiveResult:
    """One anytime snapshot of a streaming run, yielded per merge window.

    ``top_k`` is the current merged answer (best first), ``budget_spent``
    the scoring calls consumed so far, ``threshold`` the global k-th score
    being broadcast (``None`` until the buffer fills), and ``converged``
    whether the answer is final for this drive (budget spent, every shard
    exhausted, or the early-stop stability rule fired).
    """

    top_k: List[Tuple[str, float]]
    budget_spent: int
    threshold: Optional[float]
    converged: bool
    stk: float
    wall_time: float
    n_merges: int
    backend: str
    #: Upper estimate of the probability that the *remainder of this
    #: drive's budget* still changes the top-k (what ``CONFIDENCE p``
    #: compares against ``1 - p``); monotone non-increasing per drive.
    displacement_bound: float = 1.0
    #: Same union bound without the budget cap: the estimated probability
    #: that *any* unscored element would displace the current answer —
    #: the distance to the exact full-table result.
    exhaustive_bound: float = 1.0

    @property
    def ids(self) -> List[str]:
        """Element IDs of the current answer, best first."""
        return [element_id for element_id, _score in self.top_k]

    def to_json(self) -> dict:
        """JSON-safe dict of this snapshot (the service's wire format).

        Everything a client needs to render anytime progress; consumed by
        :mod:`repro.service` when streaming snapshots over the line
        protocol.  ``json.dumps(snapshot.to_json())`` round-trips.
        """
        return {
            "top_k": [[str(element_id), float(score)]
                      for element_id, score in self.top_k],
            "budget_spent": int(self.budget_spent),
            "threshold": (None if self.threshold is None
                          else float(self.threshold)),
            "converged": bool(self.converged),
            "stk": float(self.stk),
            "wall_time": float(self.wall_time),
            "n_merges": int(self.n_merges),
            "backend": str(self.backend),
            "displacement_bound": float(self.displacement_bound),
            "exhaustive_bound": float(self.exhaustive_bound),
        }

    def summary(self) -> str:
        """One-line progress report."""
        threshold = ("-" if self.threshold is None
                     else f"{self.threshold:.4f}")
        bound = ("" if self.displacement_bound >= 1.0
                 else f" bound<={self.displacement_bound:.3g}")
        tail = " [converged]" if self.converged else ""
        return (f"t={self.wall_time:.3f}s scored={self.budget_spent} "
                f"stk={self.stk:.4f} threshold={threshold} "
                f"merges={self.n_merges}{bound}{tail}")


@dataclass
class StreamingResult(ResultBase):
    """Final answer of a streaming drive plus its anytime trace."""

    kind: ClassVar[str] = "streaming"

    k: int
    items: List[Tuple[str, float]]
    stk: float
    wall_time: float
    total_scored: int
    n_merges: int
    time_to_first_result: Optional[float]
    converged: bool
    workers: List[WorkerReport]
    #: (wall_time, budget_spent, stk) per merge — the anytime-quality curve.
    progressive: List[Tuple[float, int, float]] = field(default_factory=list)
    backend: str = "serial"
    #: Final drive-scoped / exhaustive displacement bounds (see
    #: :class:`ProgressiveResult` and :mod:`repro.core.convergence`).
    displacement_bound: float = 1.0
    exhaustive_bound: float = 1.0

    @property
    def budget_spent(self) -> int:
        """Total scoring calls across all shards (protocol alias)."""
        return self.total_scored

    def _extra_json(self) -> dict:
        return {
            "wall_time": float(self.wall_time),
            "n_merges": int(self.n_merges),
            "time_to_first_result": (
                None if self.time_to_first_result is None
                else float(self.time_to_first_result)
            ),
            "converged": bool(self.converged),
            "backend": str(self.backend),
            "exhaustive_bound": float(self.exhaustive_bound),
            "progressive": [[float(t), int(n), float(s)]
                            for t, n, s in self.progressive],
        }

    def summary(self) -> str:
        """One-line report (mirrors ``DistributedResult.summary``)."""
        ttfr = ("n/a" if self.time_to_first_result is None
                else f"{self.time_to_first_result:.3f}s")
        return (
            f"top-{self.k}: STK={self.stk:.4f} from {len(self.workers)} "
            f"workers, {self.total_scored} total scores in "
            f"{self.n_merges} merges, wall time {self.wall_time:.3f}s, "
            f"first result after {ttfr}"
        )


class StreamingTopKEngine:
    """Barrier-free coordinator: continuous shards, merge-on-arrival.

    Parameters
    ----------
    dataset / scorer / k:
        The query, exactly as for the round-based
        :class:`~repro.parallel.engine.ShardedTopKEngine`.
    n_workers:
        Number of shards (1 is valid: a single shard still streams
        progressive snapshots every slice).
    backend:
        ``"serial"`` (deterministic event-driven simulation, virtual
        clock), ``"thread"`` or ``"process"`` (real concurrency, measured
        clock) — same name vocabulary as :mod:`repro.parallel` — or a
        ready :class:`~repro.streaming.backends.StreamBackend` instance
        (how :mod:`repro.replay` injects its trace-driven backend).
    slice_budget:
        Scoring calls per shard per slice — the streaming analogue of the
        round engine's ``sync_interval``; smaller slices mean fresher
        thresholds and earlier first results at slightly more merge
        traffic.
    share_threshold:
        Re-broadcast the global k-th score after every merge (shards pick
        it up at their next slice boundary).
    stable_slices:
        Optional early-stop rule: stop once every still-active shard has
        reported this many consecutive slices while the top-k id set and
        the buffer's fill stayed unchanged.  ``None`` disables.
    confidence:
        Optional principled early stop (see :mod:`repro.core.convergence`
        and ``docs/streaming.md``): stop once the displacement bound —
        the estimated probability that the rest of the drive still
        changes the top-k — drops to ``1 - confidence`` or below.
        ``confidence=0.95`` stops when the answer is certified stable at
        the 95% level under the shards' sketch model.  ``None`` disables;
        composable with ``stable_slices`` (whichever fires first).
    record:
        Record every slice submission and merge arrival into a
        JSON-safe :class:`~repro.replay.trace.ArrivalTrace` (read it with
        :meth:`trace`), making real thread/process runs replayable
        bit for bit via :mod:`repro.replay`.
    seed / index_config / engine_config / index_cache / shared_memory:
        As for the round engine (shard streams derive from the root
        entropy; the cache shares partition indexes across runs;
        ``shared_memory`` selects the zero-copy process bootstrap of
        :mod:`repro.parallel.shm` — ``None`` auto-enables where POSIX
        shm works, answers bit-identical either way).
    memo / priors:
        As for the round engine: ``memo`` is a
        :class:`~repro.memo.store.MemoView` whose frozen per-shard slices
        ride the specs (fresh scores are recorded back at slice-merge
        time, process children stay read-only); ``priors`` is one
        warm-start payload per shard (:mod:`repro.memo.priors`), applied
        to fresh engines only.  Memo hits charge full batch cost, so the
        serial backend's arrival order — keyed on virtual completion — is
        unchanged and warm runs stay bit-identical.
    trace:
        Optional :class:`~repro.obs.spans.TraceContext` (distinct from
        ``record``'s replayable :class:`~repro.replay.trace.ArrivalTrace`).
        When given, each drive opens a ``drive[d]`` span and every
        arriving slice's ``shard[j].slice[s]`` fragment is stitched under
        it at merge time, annotated with its observed threshold
        staleness.  ``None`` (the default) keeps the event loop untouched.
    gate:
        Optional :class:`~repro.service.budget.QueryGrant`-shaped budget
        gate (``acquire(n) -> int`` / ``refund(n)``).  Each slice cap is
        drawn from it at submission and the slice's free portion (memo
        hits, early exhaustion) refunded at merge.  Fully funded slices
        leave submission order and caps untouched — bit-identity is
        preserved; a partial grant is refunded whole and the shard is
        simply not refilled, so the drive winds down at slice
        boundaries.  Cancellation surfaces at the next refill as
        :class:`~repro.errors.QueryCancelledError`.
    table_version:
        Version of the live-table snapshot this run executes against
        (0 for immutable datasets).  Keys the shard-index cache, stamps
        every spec and snapshot payload, and is asserted against each
        arriving :class:`~repro.parallel.worker.RoundOutcome`.
    """

    def __init__(self, dataset: Dataset, scorer: Scorer, k: int,
                 n_workers: int = 4,
                 backend: Union[str, StreamBackend] = "serial",
                 index_config: Optional[IndexConfig] = None,
                 engine_config: Optional[EngineConfig] = None,
                 slice_budget: int = 100,
                 share_threshold: bool = True,
                 stable_slices: Optional[int] = None,
                 confidence: Optional[float] = None,
                 record: bool = False,
                 seed=None,
                 index_cache: Optional[ShardIndexCache] = None,
                 ids: Optional[Sequence[str]] = None,
                 shared_memory: Optional[bool] = None,
                 memo=None,
                 priors: Optional[List[Optional[dict]]] = None,
                 trace: Optional[TraceContext] = None,
                 gate=None,
                 table_version: int = 0) -> None:
        if n_workers <= 0:
            raise ConfigurationError(
                f"n_workers must be positive, got {n_workers!r}"
            )
        if slice_budget <= 0:
            raise ConfigurationError(
                f"slice_budget must be positive, got {slice_budget!r}"
            )
        if k <= 0:
            raise ConfigurationError(f"k must be positive, got {k!r}")
        if stable_slices is not None and stable_slices <= 0:
            raise ConfigurationError(
                f"stable_slices must be positive, got {stable_slices!r}"
            )
        # ids restricts execution to a candidate subset (WHERE pushdown):
        # only those elements are partitioned, indexed, and drawn.
        self._ids: Optional[List[str]] = (
            list(ids) if ids is not None else None
        )
        self._population = (len(self._ids) if self._ids is not None
                            else len(dataset))
        if self._population < n_workers:
            raise ConfigurationError(
                f"{n_workers} workers for only {self._population} elements"
            )
        self.dataset = dataset
        self.scorer = scorer
        self.k = int(k)
        self.n_workers = int(n_workers)
        self.slice_budget = int(slice_budget)
        self.share_threshold = share_threshold
        self.stable_slices = stable_slices
        self.confidence = check_confidence(confidence)
        self._factory = RngFactory(seed)
        self._root_entropy = self._factory._root.entropy
        self._index_config = index_config
        self._engine_config = engine_config or EngineConfig(k=k)
        self._index_cache = index_cache
        self._shared_memory = shared_memory
        self._shm_table = None
        self._memo = memo
        self._priors = priors
        self._trace = trace
        self._gate = gate
        self._table_version = int(table_version)
        self._drive_count = 0
        self._submit_merges: Dict[int, int] = {}
        self.backend: StreamBackend = (
            backend if isinstance(backend, StreamBackend)
            else make_stream_backend(backend)
        )
        self._recorder = None
        if record:
            from repro.replay.trace import TraceRecorder

            self._recorder = TraceRecorder()
        # Coordinator state (persists across drives for resumption).
        self._started = False
        self._cache_hit = False
        self._partitions: List[List[str]] = []
        self._buffer: TopKBuffer[str] = TopKBuffer(self.k)
        self._merged_ids: Set[str] = set()
        self.wall_time = 0.0
        self.total_scored = 0
        self.n_merges = 0
        self.time_to_first_result: Optional[float] = None
        self.converged = False
        self.progressive: List[Tuple[float, int, float]] = []
        self._worker_times: List[float] = [0.0] * self.n_workers
        self._active: List[bool] = [True] * self.n_workers
        self._floor: Optional[float] = None
        self._last_outcomes: List[Optional[RoundOutcome]] = (
            [None] * self.n_workers
        )
        self._inflight: Dict[int, int] = {}   # worker -> reserved cap
        self._reserved = 0
        self._stable_count: List[int] = [0] * self.n_workers
        self._bound = ConvergenceBound(self.n_workers)
        self._resume_count = 0
        self._restore_payloads: Optional[List[dict]] = None
        # Real-clock bookkeeping for the current drive.
        self._drive_started: Optional[float] = None
        self._wall_base = 0.0
        self._last_total = 0

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "StreamingTopKEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def close(self) -> None:
        """Release backend resources (child processes, thread pools)."""
        self.backend.close()
        self._release_shm()

    def _release_shm(self) -> None:
        """Unlink the coordinator's shared-memory table, if any (idempotent)."""
        if self._shm_table is not None:
            self._shm_table.close()
            self._shm_table = None

    # -- setup ---------------------------------------------------------------

    def start(self) -> None:
        """Bootstrap every shard eagerly (drives otherwise do it lazily)."""
        self._ensure_started()

    def _ensure_started(self) -> None:
        if self._started:
            return
        (self._partitions, specs, self._cache_hit,
         self._shm_table) = build_shard_specs(
            self.dataset, self.scorer,
            n_workers=self.n_workers, k=self.k,
            engine_config=self._engine_config,
            index_config=self._index_config,
            factory=self._factory, root_entropy=self._root_entropy,
            materialize=self.backend.name == "process",
            restore_payloads=self._restore_payloads,
            resume_count=self._resume_count,
            index_cache=self._index_cache,
            ids=self._ids,
            shared_memory=self._shared_memory,
            memo_snapshot=(self._memo.snapshot()
                           if self._memo is not None else None),
            priors=self._priors,
            trace=self._trace is not None,
            table_version=self._table_version,
        )
        try:
            self.backend.start(specs, self.dataset, self.scorer,
                               worker_times=list(self._worker_times))
        except BaseException:
            # A failed start must leak neither pools nor the segment.
            self.backend.close()
            self._release_shm()
            raise
        self._started = True
        if not self._cache_hit:
            harvest_shard_indexes(
                self._index_cache,
                root_entropy=self._root_entropy,
                index_config=self._index_config,
                n_elements=self._population,
                partitions=self._partitions,
                workers=self.backend.inline_workers(),
                subset=subset_fingerprint(self._ids),
                table_version=self._table_version,
            )

    # -- execution -----------------------------------------------------------

    def _refill(self, total_budget: int) -> None:
        """Submit slices to every idle active shard the budget can cover.

        Called at drive start and after every merge, so budget freed by a
        shard that exhausted mid-slice is re-offered to *all* idle shards,
        not just the one that arrived.  When the unreserved budget cannot
        fund a full slice per idle shard, it is dealt fairly (each shard
        gets its share of what remains) instead of front-loading the
        lowest worker ids.
        """
        idle = [worker for worker in range(self.n_workers)
                if self._active[worker] and worker not in self._inflight]
        for position, worker in enumerate(idle):
            unreserved = total_budget - self.total_scored - self._reserved
            if unreserved <= 0:
                return
            cap = min(self.slice_budget,
                      max(1, unreserved // (len(idle) - position)),
                      unreserved)
            # The service budget gate funds whole slices or none: an
            # underfunded refill just leaves shards idle (the drive winds
            # down), never shrinks a cap — that would perturb the run.
            if self._gate is not None and not _fully_funded(self._gate, cap):
                return
            floor = self._floor if self.share_threshold else None
            if self._recorder is not None:
                self._recorder.submit(worker, cap, floor)
            self.backend.submit(worker, cap, floor)
            self._inflight[worker] = cap
            self._submit_merges[worker] = self.n_merges
            self._reserved += cap

    def _topk_signature(self) -> Tuple[int, frozenset]:
        return len(self._buffer), frozenset(self._buffer.payloads())

    def _absorb(self, event: SliceEvent) -> None:
        """Merge one arrived slice into the global state."""
        outcome = event.outcome
        worker = outcome.worker_id
        if outcome.table_version != self._table_version:
            raise ConfigurationError(
                f"shard {worker} reported table version "
                f"{outcome.table_version}, coordinator pinned "
                f"{self._table_version}"
            )
        cap = self._inflight.pop(worker)
        # Merges that landed while this slice was in flight — exactly how
        # stale the threshold floor it ran under had become by arrival.
        staleness = self.n_merges - self._submit_merges.pop(
            worker, self.n_merges)
        self._reserved -= cap
        self.total_scored += outcome.scored
        self._worker_times[worker] += outcome.cost
        self._active[worker] = not outcome.exhausted
        self._last_outcomes[worker] = outcome
        if self._memo is not None:
            # Coordinator-side write-back at the slice boundary: shards
            # read their frozen memo slice, fresh scores land here in
            # arrival order (process children stay read-only).
            if outcome.fresh_scores:
                self._memo.record_pairs(outcome.fresh_scores)
            self._memo.count(outcome.memo_hits, len(outcome.fresh_scores))
        before = self._topk_signature()
        merge_worker_topk(self._buffer, self._merged_ids, outcome.topk)
        self.n_merges += 1
        if self.backend.virtual_clock:
            self.wall_time = max(self.wall_time,
                                 event.virtual_completion or 0.0)
        else:
            assert self._drive_started is not None
            self.wall_time = self._wall_base + (
                time.perf_counter() - self._drive_started
            )
        if self.time_to_first_result is None:
            self.time_to_first_result = self.wall_time
        if self.share_threshold and self._buffer.threshold is not None:
            self._floor = self._buffer.threshold
        if self._topk_signature() == before:
            self._stable_count[worker] += 1
        else:
            self._stable_count = [0] * self.n_workers
        self._bound.update(worker, outcome.tail)
        self._bound.refresh(
            self._buffer.threshold,
            len(self._buffer) >= self.k,
            max(0, self._last_total - self.total_scored),
        )
        if self._recorder is not None:
            self._recorder.arrival(worker, outcome.scored, self.wall_time,
                                   cost=outcome.cost)
        self.progressive.append(
            (self.wall_time, self.total_scored, self._buffer.stk)
        )
        backend = self.backend.name
        SLICES_TOTAL.inc(backend=backend)
        THRESHOLD_STALENESS.observe(staleness, backend=backend)
        fresh = outcome.scored - outcome.memo_hits
        if self._gate is not None and cap > fresh:
            # The slice reserved its full cap at submission; give back
            # what never became a real UDF call (memo hits, exhaustion).
            self._gate.refund(cap - fresh)
        if fresh:
            UDF_CALLS_TOTAL.inc(fresh, engine="streaming", backend=backend)
        if outcome.memo_hits:
            MEMO_HITS_TOTAL.inc(outcome.memo_hits, engine="streaming",
                                backend=backend)
        if self._trace is not None and outcome.span is not None:
            span = self._trace.attach(outcome.span)
            span.attrs.update(
                staleness=staleness,
                threshold=self._buffer.threshold,
                bound=self._bound.exhaustive_bound,
            )

    def _is_stable(self) -> bool:
        """Early-stop rule: every active shard quiet for ``stable_slices``."""
        if self.stable_slices is None or len(self._buffer) < self.k:
            return False
        active = [w for w in range(self.n_workers) if self._active[w]]
        if not active:
            return True
        return all(self._stable_count[w] >= self.stable_slices
                   for w in active)

    def _is_confident(self) -> bool:
        """Principled early stop: displacement bound reached ``1 - p``."""
        return (self.confidence is not None
                and len(self._buffer) >= self.k
                and self._bound.drive_bound <= 1.0 - self.confidence)

    @property
    def displacement_bound(self) -> float:
        """Current drive-scoped displacement bound (1.0 = no certificate)."""
        return self._bound.drive_bound

    @property
    def exhaustive_bound(self) -> float:
        """Current bound on displacement by *any* unscored element."""
        return self._bound.exhaustive_bound

    def _is_finished(self, total_budget: int) -> bool:
        """Provably final for this drive: budget spent or shards exhausted."""
        return (self.total_scored >= total_budget
                or not any(self._active))

    def _progressive(self, converged: bool) -> ProgressiveResult:
        return ProgressiveResult(
            top_k=[(element_id, score)
                   for score, element_id in self._buffer.items()],
            budget_spent=self.total_scored,
            threshold=self._buffer.threshold,
            converged=converged,
            stk=self._buffer.stk,
            wall_time=self.wall_time,
            n_merges=self.n_merges,
            backend=self.backend.name,
            displacement_bound=self._bound.drive_bound,
            exhaustive_bound=self._bound.exhaustive_bound,
        )

    def _begin_drive(self) -> None:
        self._drive_started = time.perf_counter()
        self._wall_base = self.wall_time

    def results_iter(self, budget: Optional[int] = None,
                     every: Optional[int] = None,
                     ) -> Iterator[ProgressiveResult]:
        """Drive the pipeline, yielding anytime snapshots as merges land.

        ``budget`` is cumulative total scoring calls across drives (like
        the round engine's ``run``); ``every`` throttles snapshots to one
        per that many newly scored elements (default: one per slice, i.e.
        roughly every merge).  The final snapshot is always yielded and
        carries the drive's ``converged`` verdict.  Abandoning the
        generator mid-drive leaves slices in flight; they are drained on
        the next drive or :meth:`snapshot` call.
        """
        self._ensure_started()
        total = (self._population if budget is None
                 else min(budget, self._population))
        self._last_total = total
        step = self.slice_budget if every is None else max(1, int(every))
        self._bound.begin_drive()
        if self._recorder is not None:
            self._recorder.begin_drive(total, every)
        if self._trace is not None:
            drive_span = self._trace.push(f"drive[{self._drive_count}]",
                                          budget=total)
            self._drive_count += 1
        self._begin_drive()
        self._refill(total)
        last_yield = self.total_scored
        stopping = False
        while self._inflight:
            event = self.backend.next_event()
            self._absorb(event)
            if not stopping and (self._is_stable() or self._is_confident()):
                stopping = True  # early stop: drain, no resubmissions
            if not stopping:
                self._refill(total)
            if (self._inflight
                    and self.total_scored - last_yield >= step):
                yield self._progressive(converged=False)
                last_yield = self.total_scored
        self.converged = stopping or self._is_finished(total)
        if self._trace is not None:
            drive_span.attrs.update(
                threshold=self._buffer.threshold,
                bound=self._bound.exhaustive_bound,
                total_scored=self.total_scored,
                merges=self.n_merges,
            )
            self._trace.pop()        # drive[d]
        yield self._progressive(converged=self.converged)

    def run(self, budget: Optional[int] = None,
            every: Optional[int] = None) -> StreamingResult:
        """Drive to completion and return the final result with its trace."""
        for _snapshot in self.results_iter(budget, every=every):
            pass
        return self.result()

    def result(self) -> StreamingResult:
        """Assemble the merged answer and anytime trace reached so far."""
        workers = []
        for worker in range(self.n_workers):
            outcome = self._last_outcomes[worker]
            n_members = (len(self._partitions[worker])
                         if self._partitions else 0)
            workers.append(WorkerReport(
                worker_id=worker,
                n_elements=n_members,
                n_scored=outcome.n_scored_total if outcome else 0,
                virtual_time=self._worker_times[worker],
                local_stk=outcome.local_stk if outcome else 0.0,
                fallback_events=tuple(outcome.fallback_events)
                if outcome else (),
            ))
        items = [(element_id, score)
                 for score, element_id in self._buffer.items()]
        return StreamingResult(
            k=self.k,
            items=items,
            stk=self._buffer.stk,
            wall_time=self.wall_time,
            total_scored=self.total_scored,
            n_merges=self.n_merges,
            time_to_first_result=self.time_to_first_result,
            converged=self.converged,
            workers=workers,
            progressive=list(self.progressive),
            backend=self.backend.name,
            displacement_bound=self._bound.drive_bound,
            exhaustive_bound=self._bound.exhaustive_bound,
        )

    # -- recorded-arrival tracing -------------------------------------------

    def trace(self):
        """The recorded :class:`~repro.replay.trace.ArrivalTrace` so far.

        Requires the engine to have been constructed with ``record=True``;
        read it after (or during) a drive and replay it with
        :func:`repro.replay.replay_run`.
        """
        if self._recorder is None:
            raise ConfigurationError(
                "arrival tracing is off; construct the engine with "
                "record=True to record a replayable trace"
            )
        from repro.replay.trace import ArrivalTrace

        return ArrivalTrace(
            backend=self.backend.name,
            n_workers=self.n_workers,
            k=self.k,
            slice_budget=self.slice_budget,
            share_threshold=self.share_threshold,
            stable_slices=self.stable_slices,
            confidence=self.confidence,
            root_entropy=self._root_entropy,
            drives=[dict(drive) for drive in self._recorder.drives],
            events=[dict(event) for event in self._recorder.events],
        )

    # -- pause / resume ------------------------------------------------------

    def _drain(self) -> None:
        """Absorb any in-flight slices without resubmitting (quiesce)."""
        if not self._inflight:
            return
        if self._drive_started is None:
            self._begin_drive()
        while self._inflight:
            self._absorb(self.backend.next_event())

    def snapshot(self) -> dict:
        """Capture the full streaming run: coordinator + shard engines.

        In-flight slices are drained first (shards snapshot at slice
        boundaries, where no batch is pending).  The payload nests one
        :func:`repro.core.snapshot.snapshot_engine` dict per shard; RNG
        state is *not* captured, so a resumed run is a valid streaming
        execution but not bit-identical to the uninterrupted one.
        """
        self._ensure_started()
        self._drain()
        return {
            "format": _SNAPSHOT_FORMAT,
            "k": self.k,
            "n_workers": self.n_workers,
            "slice_budget": self.slice_budget,
            "share_threshold": self.share_threshold,
            "stable_slices": self.stable_slices,
            "confidence": self.confidence,
            "backend": self.backend.name,
            "root_entropy": self._root_entropy,
            "resume_count": self._resume_count,
            "table_version": self._table_version,
            "coordinator": {
                "exhaustive_bound": self._bound.exhaustive_bound,
                "buffer": [[score, element_id]
                           for score, element_id in self._buffer.items()],
                "merged_ids": sorted(self._merged_ids),
                "wall_time": self.wall_time,
                "total_scored": self.total_scored,
                "n_merges": self.n_merges,
                "time_to_first_result": self.time_to_first_result,
                "progressive": [list(point) for point in self.progressive],
                "worker_times": list(self._worker_times),
                "active": list(self._active),
                "pending_floor": self._floor,
                "worker_stats": [
                    [o.n_scored_total, o.local_stk,
                     [list(e) for e in o.fallback_events]]
                    if o else None
                    for o in self._last_outcomes
                ],
            },
            "workers": self.backend.snapshots(),
            # WHERE candidate subset; None when the whole table ran.
            "ids": self._ids,
            # Cross-query memo slice for this (table, udf) pair, so a
            # resumed run keeps its warm scores; None when caching is off.
            "memo": (self._memo.to_payload()
                     if self._memo is not None else None),
        }

    @classmethod
    def restore(cls, dataset: Dataset, scorer: Scorer, snapshot: dict,
                backend: Optional[str] = None,
                index_config: Optional[IndexConfig] = None,
                engine_config: Optional[EngineConfig] = None,
                index_cache: Optional[ShardIndexCache] = None,
                memo=None,
                table_version: int = 0,
                ) -> "StreamingTopKEngine":
        """Rebuild a streaming run from :meth:`snapshot` output.

        Same contract as the round engine's restore: the dataset must be
        the same immutable dataset, ``index_config`` / ``engine_config``
        must repeat the original run's, and ``backend`` may differ — a run
        paused under ``thread`` can resume under ``serial`` or ``process``
        and vice versa.  ``memo`` optionally re-attaches a live
        :class:`~repro.memo.store.MemoView`; the snapshot's stored memo
        slice is merged into it (or revived standalone) so the resumed
        run stays warm.

        ``table_version`` must repeat the live-table version the run was
        snapshotted against (0 for immutable datasets); a snapshot taken
        before a committed write is rejected rather than silently
        resumed against different rows.
        """
        if snapshot.get("format") != _SNAPSHOT_FORMAT:
            raise SerializationError(
                f"unrecognized streaming snapshot format "
                f"{snapshot.get('format')!r}"
            )
        stored_version = int(snapshot.get("table_version", 0))
        if stored_version != int(table_version):
            raise ConfigurationError(
                f"snapshot was taken at table version {stored_version}, "
                f"cannot restore against version {int(table_version)}"
            )
        stable = snapshot.get("stable_slices")
        confidence = snapshot.get("confidence")
        subset = snapshot.get("ids")
        engine = cls(
            dataset, scorer, k=int(snapshot["k"]),
            n_workers=int(snapshot["n_workers"]),
            backend=backend or snapshot["backend"],
            index_config=index_config,
            engine_config=engine_config,
            slice_budget=int(snapshot["slice_budget"]),
            share_threshold=bool(snapshot["share_threshold"]),
            stable_slices=None if stable is None else int(stable),
            confidence=None if confidence is None else float(confidence),
            seed=None,
            index_cache=index_cache,
            ids=None if subset is None else [str(i) for i in subset],
            table_version=stored_version,
        )
        # Re-anchor the RNG streams to the original run's root entropy so
        # partitions and shard indexes rebuild identically.
        engine._factory = RngFactory(snapshot["root_entropy"])
        engine._root_entropy = snapshot["root_entropy"]
        engine._resume_count = int(snapshot.get("resume_count", 0)) + 1
        engine._restore_payloads = list(snapshot["workers"])
        memo_payload = snapshot.get("memo")
        if memo is not None:
            if memo_payload is not None:
                memo.record_pairs(list(memo_payload["scores"].items()))
            engine._memo = memo
        elif memo_payload is not None:
            from repro.memo.store import MemoView

            engine._memo = MemoView.from_payload(memo_payload)
        state = snapshot["coordinator"]
        for score, element_id in state["buffer"]:
            engine._buffer.offer(float(score), element_id)
        engine._merged_ids = set(state["merged_ids"])
        engine.wall_time = float(state["wall_time"])
        engine.total_scored = int(state["total_scored"])
        engine.n_merges = int(state["n_merges"])
        ttfr = state.get("time_to_first_result")
        engine.time_to_first_result = None if ttfr is None else float(ttfr)
        engine.progressive = [tuple(point)
                              for point in state.get("progressive", [])]
        engine._worker_times = [float(t) for t in state["worker_times"]]
        engine._active = [bool(flag) for flag in state["active"]]
        # The exhaustive certificate survives the pause (it only ever
        # tightens); the drive-scoped bound resets with the next drive.
        engine._bound.exhaustive_bound = float(
            state.get("exhaustive_bound", 1.0)
        )
        floor = state.get("pending_floor")
        engine._floor = None if floor is None else float(floor)
        for worker, stats in enumerate(state.get("worker_stats", [])):
            if stats is not None:
                n_scored, local_stk, events = stats
                engine._last_outcomes[worker] = RoundOutcome(
                    worker_id=worker, scored=0, cost=0.0, elapsed=0.0,
                    topk=[], exhausted=not engine._active[worker],
                    n_scored_total=int(n_scored),
                    local_stk=float(local_stk),
                    fallback_events=[(int(t), str(kind))
                                     for t, kind in events],
                )
        return engine
