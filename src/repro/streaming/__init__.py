"""Barrier-free streaming execution of opaque top-k queries.

Where :mod:`repro.parallel` runs the paper's Section 6 shard/coordinator
protocol in synchronized rounds, this subsystem runs it as a *pipeline*:
shard workers execute continuously in small budget slices, an
event-driven coordinator merges each slice outcome the moment it arrives,
the k-th-score threshold is re-broadcast asynchronously (picked up at the
next slice boundary), and callers consume an **anytime results API** —
:meth:`~repro.streaming.engine.StreamingTopKEngine.results_iter` yields
:class:`~repro.streaming.engine.ProgressiveResult` snapshots from the
first slice onward, each carrying an explicit displacement bound.  Two
early stops: the ``stable_slices`` heuristic, and the principled
``confidence=p`` certificate built on
:mod:`repro.core.convergence`.

Backends mirror :mod:`repro.parallel` name for name (``serial`` is a
deterministic event-driven simulation; ``thread`` / ``process`` run real
concurrency on the same picklable :class:`~repro.parallel.worker.ShardSpec`
bootstrap), plus the trace-driven ``replay`` backend of
:mod:`repro.replay` for bit-identical re-execution of recorded real
runs.  Entry point:
:class:`~repro.streaming.engine.StreamingTopKEngine`.  The merge-on-arrival
protocol and its threshold-staleness invariants are documented in
``docs/architecture.md`` ("Streaming execution"); the user guide is
``docs/streaming.md``.
"""

from repro.streaming.backends import (
    STREAM_BACKENDS,
    ProcessStreamBackend,
    SerialStreamBackend,
    SliceEvent,
    StreamBackend,
    ThreadStreamBackend,
    available_backends,
    make_stream_backend,
)
from repro.streaming.engine import (
    ProgressiveResult,
    StreamingResult,
    StreamingTopKEngine,
)

__all__ = [
    "STREAM_BACKENDS",
    "ProcessStreamBackend",
    "ProgressiveResult",
    "SerialStreamBackend",
    "SliceEvent",
    "StreamBackend",
    "StreamingResult",
    "StreamingTopKEngine",
    "ThreadStreamBackend",
    "available_backends",
    "make_stream_backend",
]
