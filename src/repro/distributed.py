"""Distributed execution — the Section 6 MapReduce combination.

"Our method can be combined with MapReduce by running the indexing and
bandit algorithm on each worker, and periodically communicating the running
solution back to a coordinator."

This module is the stable entry point for that design.  The actual
machinery lives in :mod:`repro.parallel`: a backend-pluggable
:class:`~repro.parallel.engine.ShardedTopKEngine` that runs the same
shard/coordinator protocol either as a deterministic single-thread
simulation (``serial``) or on real concurrency (``thread`` / ``process``).
:class:`DistributedTopKExecutor` is the original simulation API, preserved
verbatim — it delegates to the ``serial`` backend, which reproduces the
historical synchronized-round simulation bit for bit:

* the dataset is partitioned across ``n_workers`` workers;
* each worker builds its *own* index over its partition and runs its own
  :class:`~repro.core.engine.TopKEngine`;
* execution proceeds in synchronized rounds of ``sync_interval`` scoring
  calls per worker; workers run in parallel, so the simulated wall clock
  advances by the *maximum* of the workers' round costs;
* after each round the coordinator merges every worker's running solution
  into the global top-k and (optionally) broadcasts the global k-th score
  back, raising each worker's kick-out floor so no worker wastes budget on
  elements that can no longer enter the merged answer.

For real cores, construct :class:`~repro.parallel.engine.ShardedTopKEngine`
directly with ``backend="thread"`` or ``backend="process"``.  Protocol
details: ``docs/architecture.md``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.engine import EngineConfig
from repro.data.dataset import Dataset
from repro.index.builder import IndexConfig
from repro.parallel.engine import (
    DistributedResult,
    ShardedTopKEngine,
    WorkerReport,
)
from repro.parallel.worker import partition_ids
from repro.scoring.base import Scorer
from repro.utils.rng import RngFactory

__all__ = [
    "DistributedResult",
    "DistributedTopKExecutor",
    "WorkerReport",
]


class DistributedTopKExecutor:
    """Coordinator for the simulated multi-worker bandit execution.

    A thin, API-stable wrapper over
    :class:`~repro.parallel.engine.ShardedTopKEngine` with the ``serial``
    backend (deterministic simulation, virtual wall clock).

    Parameters
    ----------
    dataset / scorer / k:
        The query, exactly as for :class:`TopKEngine`.
    n_workers:
        Number of simulated workers.
    index_config:
        Per-partition index configuration (cluster count is divided across
        workers, minimum 2 per worker).
    engine_config:
        Per-worker engine settings (``k`` is forced to the query's k so the
        merge is lossless).
    sync_interval:
        Scoring calls per worker between coordinator merges.
    share_threshold:
        Broadcast the global k-th score back to workers after each merge.
    seed:
        Root seed; workers get independent derived streams.
    """

    def __init__(self, dataset: Dataset, scorer: Scorer, k: int,
                 n_workers: int = 4,
                 index_config: Optional[IndexConfig] = None,
                 engine_config: Optional[EngineConfig] = None,
                 sync_interval: int = 100,
                 share_threshold: bool = True,
                 seed: Optional[int] = None) -> None:
        self.dataset = dataset
        self.scorer = scorer
        self.k = int(k)
        self.n_workers = int(n_workers)
        self.sync_interval = int(sync_interval)
        self.share_threshold = share_threshold
        self._seed = seed
        self._index_config = index_config
        self._engine_config = engine_config
        self._factory = RngFactory(seed)
        # Validation happens eagerly so bad configurations fail at
        # construction, exactly as before the refactor (the engine is
        # discarded; each run() builds a fresh one — see run()).
        self._make_engine()

    def _make_engine(self) -> ShardedTopKEngine:
        return ShardedTopKEngine(
            self.dataset, self.scorer, self.k,
            n_workers=self.n_workers,
            backend="serial",
            index_config=self._index_config,
            engine_config=self._engine_config,
            sync_interval=self.sync_interval,
            share_threshold=self.share_threshold,
            seed=self._seed,
        )

    def _partitions(self) -> List[List[str]]:
        """Round-robin partition of the dataset's IDs (deterministic)."""
        return partition_ids(self.dataset.ids(), self.n_workers,
                             self._factory.named("partition"))

    def run(self, budget: Optional[int] = None) -> DistributedResult:
        """Execute until ``budget`` total scoring calls (default: all).

        Every call is an independent fresh run, as before the refactor —
        cumulative continuation across calls is a
        :class:`~repro.parallel.engine.ShardedTopKEngine` feature, not an
        executor one.  The budget is split evenly across workers round by
        round; the simulated wall clock per round is the maximum worker
        cost, since workers proceed in parallel between synchronization
        barriers.
        """
        return self._make_engine().run(budget)
