"""Simulated distributed execution — the Section 6 MapReduce combination.

"Our method can be combined with MapReduce by running the indexing and
bandit algorithm on each worker, and periodically communicating the running
solution back to a coordinator."  The paper does not evaluate this (it
assumes a single machine); this module implements the design as a
deterministic simulation:

* the dataset is partitioned across ``n_workers`` workers;
* each worker builds its *own* index over its partition and runs its own
  :class:`~repro.core.engine.TopKEngine`;
* execution proceeds in synchronized rounds of ``sync_interval`` scoring
  calls per worker; workers run in parallel, so the simulated wall clock
  advances by the *maximum* of the workers' round costs;
* after each round the coordinator merges every worker's running solution
  into the global top-k and (optionally) broadcasts the global k-th score
  back, raising each worker's kick-out floor so no worker wastes budget on
  elements that can no longer enter the merged answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import EngineConfig, TopKEngine
from repro.core.minmax_heap import TopKBuffer
from repro.data.dataset import Dataset
from repro.errors import ConfigurationError
from repro.index.builder import IndexConfig, build_index
from repro.index.tree import ClusterTree
from repro.scoring.base import Scorer
from repro.utils.rng import RngFactory


@dataclass(frozen=True)
class WorkerReport:
    """Final statistics of one simulated worker."""

    worker_id: int
    n_elements: int
    n_scored: int
    virtual_time: float
    local_stk: float
    fallback_events: Tuple[Tuple[int, str], ...]


@dataclass
class DistributedResult:
    """Merged answer plus the simulated parallel execution trace."""

    k: int
    items: List[Tuple[str, float]]
    stk: float
    wall_time: float
    total_scored: int
    n_rounds: int
    workers: List[WorkerReport]
    checkpoints: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def ids(self) -> List[str]:
        """Element IDs of the merged answer, best first."""
        return [element_id for element_id, _score in self.items]

    def summary(self) -> str:
        """One-line report."""
        return (
            f"top-{self.k}: STK={self.stk:.4f} from {len(self.workers)} "
            f"workers, {self.total_scored} total scores in "
            f"{self.n_rounds} rounds, wall time {self.wall_time:.3f}s"
        )


class DistributedTopKExecutor:
    """Coordinator for the simulated multi-worker bandit execution.

    Parameters
    ----------
    dataset / scorer / k:
        The query, exactly as for :class:`TopKEngine`.
    n_workers:
        Number of simulated workers.
    index_config:
        Per-partition index configuration (cluster count is divided across
        workers, minimum 2 per worker).
    engine_config:
        Per-worker engine settings (``k`` is forced to the query's k so the
        merge is lossless).
    sync_interval:
        Scoring calls per worker between coordinator merges.
    share_threshold:
        Broadcast the global k-th score back to workers after each merge.
    seed:
        Root seed; workers get independent derived streams.
    """

    def __init__(self, dataset: Dataset, scorer: Scorer, k: int,
                 n_workers: int = 4,
                 index_config: Optional[IndexConfig] = None,
                 engine_config: Optional[EngineConfig] = None,
                 sync_interval: int = 100,
                 share_threshold: bool = True,
                 seed: Optional[int] = None) -> None:
        if n_workers <= 0:
            raise ConfigurationError(f"n_workers must be positive, got {n_workers!r}")
        if sync_interval <= 0:
            raise ConfigurationError(
                f"sync_interval must be positive, got {sync_interval!r}"
            )
        if k <= 0:
            raise ConfigurationError(f"k must be positive, got {k!r}")
        self.dataset = dataset
        self.scorer = scorer
        self.k = int(k)
        self.n_workers = int(n_workers)
        self.sync_interval = int(sync_interval)
        self.share_threshold = share_threshold
        self._factory = RngFactory(seed)
        self._index_config = index_config
        self._engine_config = engine_config or EngineConfig(k=k)
        if len(dataset) < n_workers:
            raise ConfigurationError(
                f"{n_workers} workers for only {len(dataset)} elements"
            )

    # -- setup -------------------------------------------------------------------

    def _partitions(self) -> List[List[str]]:
        """Round-robin partition of the dataset's IDs (deterministic)."""
        ids = self.dataset.ids()
        shuffled = list(ids)
        self._factory.named("partition").shuffle(shuffled)
        return [shuffled[w::self.n_workers] for w in range(self.n_workers)]

    def _worker_index(self, worker: int, member_ids: Sequence[str]) -> ClusterTree:
        features = np.stack([
            np.asarray(self.dataset.feature_of(element_id), dtype=float)
            if hasattr(self.dataset, "feature_of")
            else np.zeros(1)
            for element_id in member_ids
        ])
        config = self._index_config
        if config is None:
            n_clusters = max(2, min(32, len(member_ids) // 50))
            config = IndexConfig(n_clusters=n_clusters)
        n_clusters = min(config.n_clusters, len(member_ids))
        local = IndexConfig(
            n_clusters=max(1, n_clusters),
            subsample=config.subsample,
            linkage=config.linkage,
            max_kmeans_iter=config.max_kmeans_iter,
            flat=config.flat,
        )
        return build_index(features, list(member_ids), local,
                           rng=self._factory.named(f"index:{worker}"))

    def _worker_engine(self, worker: int, index: ClusterTree) -> TopKEngine:
        from dataclasses import replace

        config = replace(
            self._engine_config, k=self.k,
            seed=int(self._factory.named(f"engine:{worker}").integers(2**31)),
        )
        return TopKEngine(
            index, config,
            scoring_latency_hint=self.scorer.batch_cost(config.batch_size)
            / max(1, config.batch_size),
        )

    # -- execution -----------------------------------------------------------------

    def run(self, budget: Optional[int] = None) -> DistributedResult:
        """Execute until ``budget`` total scoring calls (default: all).

        The budget is split evenly across workers round by round; the
        simulated wall clock per round is the maximum worker cost, since
        workers proceed in parallel between synchronization barriers.
        """
        partitions = self._partitions()
        engines: List[TopKEngine] = []
        for worker, members in enumerate(partitions):
            index = self._worker_index(worker, members)
            engines.append(self._worker_engine(worker, index))

        total_budget = len(self.dataset) if budget is None else min(
            budget, len(self.dataset)
        )
        global_buffer: TopKBuffer[str] = TopKBuffer(self.k)
        merged_ids: set = set()
        wall_time = 0.0
        total_scored = 0
        n_rounds = 0
        checkpoints: List[Tuple[float, float]] = []
        worker_times = [0.0] * self.n_workers

        while total_scored < total_budget and any(
            not engine.exhausted for engine in engines
        ):
            n_rounds += 1
            round_costs = [0.0] * self.n_workers
            remaining = total_budget - total_scored
            per_worker = max(1, min(self.sync_interval,
                                    remaining // max(1, sum(
                                        not e.exhausted for e in engines
                                    ))))
            for worker, engine in enumerate(engines):
                scored_this_round = 0
                while (scored_this_round < per_worker
                       and not engine.exhausted
                       and total_scored < total_budget):
                    ids = engine.next_batch()
                    objects = self.dataset.fetch_batch(ids)
                    scores = self.scorer.score_batch(objects)
                    round_costs[worker] += self.scorer.batch_cost(len(ids))
                    engine.observe(ids, scores)
                    scored_this_round += len(ids)
                    total_scored += len(ids)
                worker_times[worker] += round_costs[worker]
            wall_time += max(round_costs)
            # Coordinator merge: fold every worker's running solution in.
            for engine in engines:
                for element_id, score in engine.topk_items():
                    if element_id not in merged_ids:
                        merged_ids.add(element_id)
                        global_buffer.offer(score, element_id)
            checkpoints.append((wall_time, global_buffer.stk))
            if self.share_threshold and global_buffer.threshold is not None:
                for engine in engines:
                    engine.threshold_floor = global_buffer.threshold

        workers = [
            WorkerReport(
                worker_id=worker,
                n_elements=len(partitions[worker]),
                n_scored=engine.n_scored,
                virtual_time=worker_times[worker],
                local_stk=engine.stk,
                fallback_events=tuple(engine.fallback_events),
            )
            for worker, engine in enumerate(engines)
        ]
        items = [(element_id, score)
                 for score, element_id in global_buffer.items()]
        return DistributedResult(
            k=self.k,
            items=items,
            stk=global_buffer.stk,
            wall_time=wall_time,
            total_scored=total_scored,
            n_rounds=n_rounds,
            workers=workers,
            checkpoints=checkpoints,
        )
