"""Recursive-descent parser for the session dialect — normative grammar.

This module is the single source of truth for the dialect grammar (the
user-facing tour lives in ``docs/dialect.md``; these examples run as
tier-1 doctests via ``check.sh``).  :func:`parse` turns one statement
into a :class:`~repro.query.plan.QueryPlan`; malformed input raises
:class:`~repro.errors.ConfigurationError` with the offending column and
a caret span — never an ``IndexError`` or ``AttributeError``.

Grammar
-------
One statement form; *optional clauses may appear in any order*, each at
most once; keywords are case-insensitive; an optional trailing ``;``::

    [EXPLAIN [ANALYZE]] SELECT TOP <k> FROM <table> ORDER BY <udf> [DESC]
        [WHERE <predicate>]
        [BUDGET <n> | BUDGET <p>%]
        [BATCH <b>]
        [SEED <s>]
        [WORKERS <w>] [BACKEND <name>]
        [STREAM] [EVERY <n>] [CONFIDENCE <p>] [CONTINUOUS]

    <predicate>  := <or>
    <or>         := <and> (OR <and>)*
    <and>        := <unary> (AND <unary>)*
    <unary>      := NOT <unary> | ( <or> ) | <comparison>
    <comparison> := FEATURE [ <i> ] <op> <number>
    <op>         := < | <= | > | >= | = | !=

Clause semantics, each with a runnable example:

``SELECT TOP <k>`` — answer cardinality; the engine maintains a
cardinality-constrained priority queue of the ``k`` best scores seen.

    >>> parse("SELECT TOP 10 FROM t ORDER BY f").k
    10

``FROM <table>`` / ``ORDER BY <udf>`` — names previously registered with
:meth:`~repro.session.OpaqueQuerySession.register_table` /
:meth:`~repro.session.OpaqueQuerySession.register_udf`.  The UDF is the
opaque scoring function; the session never inspects it.

    >>> plan = parse("SELECT TOP 5 FROM listings ORDER BY valuation")
    >>> (plan.table, plan.udf)
    ('listings', 'valuation')

``DESC`` — optional and purely documentary: top-k always means the *k
highest* scores, so descending order is the only supported direction and
``DESC`` makes it explicit.  (``ASC`` is not in the dialect.)

    >>> parse("SELECT TOP 5 FROM t ORDER BY f DESC").descending
    True

``WHERE <predicate>`` — pushdown filtering over the table's cheap
feature vectors: ``feature[<i>]`` compares column ``i`` of the feature
matrix against a number, composable with ``AND`` / ``OR`` / ``NOT`` and
parentheses.  The filter prunes index leaves *before* the bandit draws,
so filtered-out elements are never scored (filtered top-k).

    >>> plan = parse("SELECT TOP 5 FROM t ORDER BY f "
    ...              "WHERE feature[0] > 0.5 AND NOT feature[1] <= 2")
    >>> plan.where.canonical()
    'feature[0] > 0.5 AND NOT feature[1] <= 2'

``BUDGET <n>`` or ``BUDGET <p>%`` — the scoring budget: either an
absolute number of UDF calls or a percentage of the candidate set
(the table, or the rows surviving ``WHERE``), resolved at execution
time as ``max(k, p/100 * candidates)``.  Omitted: every candidate is
scored (exact answer).

    >>> parse("SELECT TOP 5 FROM t ORDER BY f BUDGET 500").budget
    500
    >>> parse("SELECT TOP 5 FROM t ORDER BY f BUDGET 10%").budget_fraction
    0.1

``BATCH <b>`` — score elements in batches of ``b`` (Section 3.2.5);
default 1.  Larger batches amortize per-call overhead and suit GPU-style
scorers.

    >>> parse("SELECT TOP 5 FROM t ORDER BY f BATCH 32").batch_size
    32

``SEED <s>`` — root seed for the engine's random streams; omitted means
fresh entropy (non-reproducible).

    >>> parse("SELECT TOP 5 FROM t ORDER BY f SEED 7").seed
    7

``WORKERS <w>`` — shard the query across ``w`` workers, each with its
own partition index and bandit engine, merged by a coordinator (see
:mod:`repro.parallel`).  ``WORKERS 1`` (or omitting the clause) runs the
ordinary single-engine path.

    >>> parse("SELECT TOP 5 FROM t ORDER BY f WORKERS 4").workers
    4

``BACKEND <name>`` — how the shards execute (requires ``WORKERS``):
``serial`` is the deterministic simulation, ``thread`` and ``process``
run on real concurrency.  Names come from the :mod:`repro.parallel`
registry.  Default: ``serial``.

    >>> parse("SELECT TOP 5 FROM t ORDER BY f WORKERS 4 "
    ...       "BACKEND process").backend
    'process'

``STREAM`` / ``EVERY <n>`` — execute barrier-free (see
:mod:`repro.streaming`): shard workers run continuously in small budget
slices, the coordinator merges outcomes on arrival, and progressive
snapshots are available from the first slice onward.  ``EVERY <n>``
(requires ``STREAM``) throttles snapshots to one per ``n`` scored
elements.

    >>> parse("SELECT TOP 5 FROM t ORDER BY f STREAM").stream
    True
    >>> parse("SELECT TOP 5 FROM t ORDER BY f WORKERS 4 "
    ...       "STREAM EVERY 200").every
    200

``CONFIDENCE <p>`` — principled early stop (requires ``STREAM``): stop
once the coordinator's displacement bound (see
:mod:`repro.core.convergence`) certifies at level ``p`` that the rest of
the budget would not change the top-k.  Accepts a decimal in (0, 1) or a
percentage.

    >>> parse("SELECT TOP 5 FROM t ORDER BY f "
    ...       "STREAM CONFIDENCE 0.95").confidence
    0.95
    >>> parse("SELECT TOP 5 FROM t ORDER BY f "
    ...       "STREAM EVERY 100 CONFIDENCE 95%").confidence
    0.95

``CONTINUOUS`` — mark the statement a *standing* query over a live
table (requires ``STREAM``): instead of terminating, it re-emits
progressive snapshots whenever committed writes change the answer.
Standing queries are driven by :class:`repro.live.ContinuousQuery` (or
a :class:`repro.service.QueryService`); ``execute``/``stream`` reject
them with that guidance.

    >>> parse("SELECT TOP 5 FROM t ORDER BY f STREAM CONTINUOUS").continuous
    True

``EXPLAIN <query>`` — do not execute; return the resolved execution plan
instead (:class:`~repro.query.plan.ExecutionPlan`).

    >>> parse("EXPLAIN SELECT TOP 5 FROM t ORDER BY f").explain
    True

``EXPLAIN ANALYZE <query>`` — *execute* the query under a span tracer
and return an :class:`~repro.obs.analyze.ExplainAnalyzeReport` pairing
the resolved plan with the measured span tree (wall clock, virtual
clock, UDF calls, memo hits per parse/plan/round/slice/shard span).

    >>> plan = parse("EXPLAIN ANALYZE SELECT TOP 5 FROM t ORDER BY f")
    >>> (plan.explain, plan.analyze)
    (True, True)

Optional clauses are order-insensitive — these parse identically:

    >>> parse("SELECT TOP 5 FROM t ORDER BY f SEED 3 BUDGET 100") == \\
    ...     parse("SELECT TOP 5 FROM t ORDER BY f BUDGET 100 SEED 3")
    True

Malformed queries raise :class:`~repro.errors.ConfigurationError` with
the offending column and a caret span:

    >>> parse("SELECT TOP 5 FROM t ORDER BY f EVERY 100")
    Traceback (most recent call last):
        ...
    repro.errors.ConfigurationError: unexpected token 'EVERY' at column 32: EVERY requires STREAM
        SELECT TOP 5 FROM t ORDER BY f EVERY 100
                                       ^^^^^
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.query.plan import (
    And,
    Comparison,
    Not,
    Or,
    Predicate,
    QueryPlan,
)
from repro.query.tokens import (
    END,
    NUMBER,
    OP,
    WORD,
    Token,
    span_error,
    token_error,
    tokenize,
)

#: Every reserved word of the dialect with a one-line description.  The
#: docs drift gate (``tools/check_docs.py --grammar``) verifies that the
#: clauses documented in ``docs/dialect.md`` and this table never diverge.
KEYWORDS: Dict[str, str] = {
    "EXPLAIN": "return the resolved execution plan instead of executing",
    "ANALYZE": "with EXPLAIN: execute and report the measured span tree",
    "SELECT": "statement head",
    "TOP": "answer cardinality k",
    "FROM": "registered table name",
    "ORDER": "with BY: the opaque UDF to maximize",
    "BY": "with ORDER: the opaque UDF to maximize",
    "DESC": "documentary; top-k always maximizes",
    "WHERE": "pushdown feature predicate (filtered top-k)",
    "BUDGET": "scoring budget, absolute or % of the candidate set",
    "BATCH": "batched scoring (paper Section 3.2.5)",
    "SEED": "root seed for reproducible random streams",
    "WORKERS": "shard the query across this many workers",
    "BACKEND": "shard placement (requires WORKERS)",
    "STREAM": "barrier-free execution with progressive snapshots",
    "EVERY": "snapshot granularity in scored elements (requires STREAM)",
    "CONFIDENCE": "certified early stop level (requires STREAM)",
    "CONTINUOUS": "standing query over a live table (requires STREAM)",
    "AND": "predicate conjunction",
    "OR": "predicate disjunction",
    "NOT": "predicate negation",
    "FEATURE": "feature[<i>]: column i of the table's feature matrix",
}

#: The optional clauses of the statement (each at most once, any order).
_CLAUSE_KEYWORDS = ("WHERE", "BUDGET", "BATCH", "SEED", "WORKERS",
                    "BACKEND", "STREAM", "EVERY", "CONFIDENCE",
                    "CONTINUOUS")

#: Maximum WHERE nesting (parens / NOT) — keeps the recursive-descent
#: predicate parser inside Python's stack, so malformed-input failures
#: stay ConfigurationError, never RecursionError.
_MAX_PREDICATE_DEPTH = 64


class _Parser:
    """One parse of one statement; all state lives on the instance."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.position = 0

    # -- token plumbing ------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != END:
            self.position += 1
        return token

    def at_keyword(self, keyword: str) -> bool:
        token = self.peek()
        return token.kind == WORD and token.upper == keyword

    def accept_keyword(self, keyword: str) -> Optional[Token]:
        if self.at_keyword(keyword):
            return self.advance()
        return None

    def expect_keyword(self, keyword: str, context: str) -> Token:
        token = self.peek()
        if not self.at_keyword(keyword):
            raise token_error(self.text, token, f"expected {context}")
        return self.advance()

    def accept_op(self, *ops: str) -> Optional[Token]:
        token = self.peek()
        if token.kind == OP and token.text in ops:
            return self.advance()
        return None

    def expect_op(self, op: str, context: str) -> Token:
        token = self.peek()
        if not (token.kind == OP and token.text == op):
            raise token_error(self.text, token, f"expected {context}")
        return self.advance()

    # -- terminals -----------------------------------------------------------

    def expect_identifier(self, what: str) -> str:
        token = self.peek()
        if token.kind != WORD:
            raise token_error(self.text, token, f"expected {what}")
        if token.upper in KEYWORDS:
            raise token_error(
                self.text, token,
                f"expected {what}, but {token.upper} is a reserved keyword"
            )
        self.advance()
        return token.text

    def expect_int(self, clause: str, *, positive: bool = True) -> int:
        token = self.peek()
        if token.kind != NUMBER or "." in token.text:
            raise token_error(self.text, token,
                              f"{clause} requires an integer")
        self.advance()
        value = int(token.text)
        if positive and value <= 0:
            raise span_error(self.text, token.start, token.end,
                             f"{clause} must be positive",
                             f"got {value}")
        if not positive and value < 0:
            raise span_error(self.text, token.start, token.end,
                             f"{clause} must be non-negative",
                             f"got {value}")
        return value

    def expect_number(self, clause: str) -> float:
        token = self.peek()
        if token.kind != NUMBER:
            raise token_error(self.text, token,
                              f"{clause} requires a number")
        self.advance()
        return float(token.text)

    # -- statement -----------------------------------------------------------

    def parse_statement(self) -> QueryPlan:
        explain = self.accept_keyword("EXPLAIN") is not None
        analyze = explain and self.accept_keyword("ANALYZE") is not None
        self.expect_keyword("SELECT", "SELECT")
        self.expect_keyword("TOP", "TOP <k>")
        k = self.expect_int("TOP")
        self.expect_keyword("FROM", "FROM <table>")
        table = self.expect_identifier("a table name")
        self.expect_keyword("ORDER", "ORDER BY <udf>")
        self.expect_keyword("BY", "BY after ORDER")
        udf = self.expect_identifier("a UDF name")
        self.accept_keyword("DESC")
        clauses = self.parse_clauses()
        if self.accept_op(";"):
            pass
        trailing = self.peek()
        if trailing.kind != END:
            raise token_error(
                self.text, trailing,
                "expected a clause keyword "
                f"({', '.join(_CLAUSE_KEYWORDS)}) or end of query"
            )
        return QueryPlan(
            k=k, table=table, udf=udf, explain=explain, analyze=analyze,
            **clauses
        )

    # -- optional clauses (order-insensitive) --------------------------------

    def parse_clauses(self) -> dict:
        seen: Dict[str, Token] = {}
        values: dict = {}
        while True:
            token = self.peek()
            if token.kind != WORD:
                break
            keyword = token.upper
            if keyword not in _CLAUSE_KEYWORDS:
                break
            if keyword in seen:
                raise span_error(
                    self.text, token.start, token.end,
                    f"duplicate {keyword} clause",
                    f"first appeared at column {seen[keyword].start + 1}",
                )
            seen[keyword] = token
            self.advance()
            handler = getattr(self, f"clause_{keyword.lower()}")
            handler(values)
        # Co-occurrence rules, reported at the dependent clause's span.
        for dependent, requirement in (("BACKEND", "WORKERS"),
                                       ("EVERY", "STREAM"),
                                       ("CONFIDENCE", "STREAM"),
                                       ("CONTINUOUS", "STREAM")):
            if dependent in seen and requirement not in seen:
                raise token_error(self.text, seen[dependent],
                                  f"{dependent} requires {requirement}")
        return values

    def clause_where(self, values: dict) -> None:
        values["where"] = self.parse_predicate()

    def clause_budget(self, values: dict) -> None:
        token = self.peek()
        amount = self.expect_number("BUDGET")
        if self.accept_op("%"):
            if not 0.0 < amount <= 100.0:
                raise span_error(
                    self.text, token.start, self.tokens[self.position - 1].end,
                    "BUDGET percentage must be in (0, 100]",
                    f"got {amount:g}%",
                )
            values["budget_fraction"] = amount / 100.0
        else:
            if amount <= 0 or amount != int(amount):
                raise span_error(
                    self.text, token.start, token.end,
                    "BUDGET must be a positive integer or a percentage",
                    f"got {token.text}",
                )
            values["budget"] = int(amount)

    def clause_batch(self, values: dict) -> None:
        values["batch_size"] = self.expect_int("BATCH")

    def clause_seed(self, values: dict) -> None:
        values["seed"] = self.expect_int("SEED", positive=False)

    def clause_workers(self, values: dict) -> None:
        values["workers"] = self.expect_int("WORKERS")

    def clause_backend(self, values: dict) -> None:
        from repro.parallel.backends import available_backends

        token = self.peek()
        name = self.expect_identifier("a backend name").lower()
        if name not in available_backends():
            raise span_error(
                self.text, token.start, token.end,
                f"unknown BACKEND {name!r}",
                f"available: {', '.join(available_backends())}",
            )
        values["backend"] = name

    def clause_stream(self, values: dict) -> None:
        values["stream"] = True

    def clause_every(self, values: dict) -> None:
        values["every"] = self.expect_int("EVERY")

    def clause_continuous(self, values: dict) -> None:
        values["continuous"] = True

    def clause_confidence(self, values: dict) -> None:
        token = self.peek()
        level = self.expect_number("CONFIDENCE")
        if self.accept_op("%"):
            if not 0.0 < level < 100.0:
                raise span_error(
                    self.text, token.start, self.tokens[self.position - 1].end,
                    "CONFIDENCE percentage must be in (0, 100)",
                    f"got {level:g}%",
                )
            level /= 100.0
        elif not 0.0 < level < 1.0:
            raise span_error(
                self.text, token.start, token.end,
                "CONFIDENCE must lie strictly inside (0, 1) "
                "(or be a percentage like 95%)",
                f"got {level:g}",
            )
        values["confidence"] = level

    # -- WHERE predicate grammar ---------------------------------------------

    def parse_predicate(self) -> Predicate:
        return self.parse_or(0)

    def parse_or(self, depth: int) -> Predicate:
        operands = [self.parse_and(depth)]
        while self.accept_keyword("OR"):
            operands.append(self.parse_and(depth))
        if len(operands) == 1:
            return operands[0]
        return Or(tuple(operands))

    def parse_and(self, depth: int) -> Predicate:
        operands = [self.parse_unary(depth)]
        while self.accept_keyword("AND"):
            operands.append(self.parse_unary(depth))
        if len(operands) == 1:
            return operands[0]
        return And(tuple(operands))

    def parse_unary(self, depth: int) -> Predicate:
        if depth >= _MAX_PREDICATE_DEPTH:
            token = self.peek()
            raise span_error(
                self.text, token.start, token.end,
                "WHERE predicate is nested too deeply",
                f"maximum {_MAX_PREDICATE_DEPTH} levels of NOT/parentheses",
            )
        if self.accept_keyword("NOT"):
            return Not(self.parse_unary(depth + 1))
        if self.accept_op("("):
            inner = self.parse_or(depth + 1)
            self.expect_op(")", "')' closing the predicate group")
            return inner
        return self.parse_comparison()

    def parse_comparison(self) -> Predicate:
        token = self.peek()
        if not self.at_keyword("FEATURE"):
            raise token_error(
                self.text, token,
                "a WHERE comparison starts with feature[<i>]"
            )
        self.advance()
        self.expect_op("[", "'[' after feature")
        index = self.expect_int("feature index", positive=False)
        self.expect_op("]", "']' closing the feature index")
        op_token = self.peek()
        op = self.accept_op("<", "<=", ">", ">=", "=", "==", "!=")
        if op is None:
            raise token_error(
                self.text, op_token,
                "expected a comparison operator (<, <=, >, >=, =, !=)"
            )
        value = self.expect_number("a comparison")
        spelling = "=" if op.text == "==" else op.text
        return Comparison(feature=index, op=spelling, value=value)


def parse(text: str) -> QueryPlan:
    """Parse one dialect statement into a logical :class:`QueryPlan`.

    Raises :class:`~repro.errors.ConfigurationError` (and only that) on
    malformed input, with the offending column and a caret span.
    """
    if not isinstance(text, str):
        raise ConfigurationError(
            f"query must be a string, got {type(text).__name__}"
        )
    return _Parser(text).parse_statement()
