"""Executor registry: pluggable execution strategies for resolved plans.

Mirrors the backend registries of :mod:`repro.parallel.backends` and
:mod:`repro.streaming.backends`: each executor registers itself under a
name (``single`` / ``sharded`` / ``streaming``), and
:meth:`repro.session.OpaqueQuerySession.execute` dispatches one resolved
:class:`~repro.query.plan.ExecutionPlan` through :func:`get_executor` —
no if/elif chain, and a new execution strategy is one registered class.

Executors are deliberately *thin*: all policy (clause merging, kwarg
validation, WHERE mask evaluation, budget resolution) happens at plan
time in the session, so an executor only instantiates its engine and
runs it.  They read the owning session's registries and caches through
its internal helpers — the session and this module are two halves of one
subsystem.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Dict, List, Type

from repro.core.engine import EngineConfig, TopKEngine
from repro.errors import ConfigurationError
from repro.query.plan import ExecutionPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.result import ResultBase
    from repro.session import OpaqueQuerySession
    from repro.streaming.engine import StreamingTopKEngine


class QueryExecutor(ABC):
    """One execution strategy for resolved plans."""

    #: Registry name; also the ``ExecutionPlan.mode`` it serves.
    name: str = ""

    @abstractmethod
    def execute(self, session: "OpaqueQuerySession",
                plan: ExecutionPlan) -> "ResultBase":
        """Run the plan to completion and return its result."""


EXECUTORS: Dict[str, Type[QueryExecutor]] = {}


def register_executor(cls: Type[QueryExecutor]) -> Type[QueryExecutor]:
    """Class decorator: add an executor to the registry under its name."""
    if not cls.name:
        raise ConfigurationError(
            f"executor {cls.__name__} must define a registry name"
        )
    EXECUTORS[cls.name] = cls
    return cls


def available_executors() -> List[str]:
    """Names of the registered executors, registration order."""
    return list(EXECUTORS)


def get_executor(name: str) -> QueryExecutor:
    """Instantiate an executor by registry name; raise with guidance."""
    try:
        return EXECUTORS[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown executor {name!r}; available: "
            f"{', '.join(available_executors())}"
        ) from None


@register_executor
class SingleExecutor(QueryExecutor):
    """One in-process engine over the table's task-independent index.

    A ``WHERE`` filter restricts the index to the candidate leaves
    (:meth:`~repro.index.tree.ClusterTree.restricted`) before the engine
    is built, so the bandit never draws — and the UDF never scores — a
    filtered-out element.
    """

    name = "single"

    def execute(self, session: "OpaqueQuerySession",
                plan: ExecutionPlan) -> "ResultBase":
        from repro.core.result import QueryResult

        if plan.n_candidates == 0:
            # WHERE filtered everything out: the empty answer is exact.
            return QueryResult(
                k=plan.k, items=[], stk=0.0, n_scored=0, n_batches=0,
                n_explore=0, n_exploit=0, virtual_time=0.0,
                overhead_time=0.0, exhausted=True,
            )
        dataset = session._tables[plan.table]
        scorer = session._udfs[plan.udf]
        index = session._index_for(plan.table)
        if plan.allowed_ids is not None:
            index = index.restricted(plan.allowed_ids)
        engine = TopKEngine(
            index,
            EngineConfig(k=plan.k, batch_size=plan.batch_size,
                         seed=plan.seed),
            scoring_latency_hint=scorer.batch_cost(plan.batch_size)
            / max(1, plan.batch_size),
        )
        return engine.run(dataset, scorer, budget=plan.budget)


@register_executor
class ShardedExecutor(QueryExecutor):
    """Round-based sharded execution (:mod:`repro.parallel`)."""

    name = "sharded"

    def execute(self, session: "OpaqueQuerySession",
                plan: ExecutionPlan) -> "ResultBase":
        from repro.parallel.engine import ShardedTopKEngine

        sharded = ShardedTopKEngine(
            session._tables[plan.table], session._udfs[plan.udf],
            k=plan.k,
            n_workers=plan.workers,
            backend=plan.backend,
            index_config=session._index_configs.get(
                plan.table, session._default_index_config
            ),
            engine_config=EngineConfig(k=plan.k,
                                       batch_size=plan.batch_size),
            sync_interval=session._sync_interval,
            seed=plan.seed,
            index_cache=session._shard_cache_for(plan.table),
            ids=plan.allowed_ids,
        )
        try:
            return sharded.run(plan.budget)
        finally:
            sharded.close()


@register_executor
class StreamingExecutor(QueryExecutor):
    """Barrier-free streaming execution (:mod:`repro.streaming`).

    Also builds the engine for :meth:`OpaqueQuerySession.stream`, which
    consumes ``results_iter`` live instead of running to completion.
    """

    name = "streaming"

    def engine(self, session: "OpaqueQuerySession",
               plan: ExecutionPlan) -> "StreamingTopKEngine":
        from repro.streaming.engine import StreamingTopKEngine

        return StreamingTopKEngine(
            session._tables[plan.table], session._udfs[plan.udf],
            k=plan.k,
            n_workers=plan.workers,
            backend=plan.backend,
            index_config=session._index_configs.get(
                plan.table, session._default_index_config
            ),
            engine_config=EngineConfig(k=plan.k,
                                       batch_size=plan.batch_size),
            slice_budget=session._sync_interval,
            confidence=plan.confidence,
            seed=plan.seed,
            index_cache=session._shard_cache_for(plan.table),
            ids=plan.allowed_ids,
        )

    def execute(self, session: "OpaqueQuerySession",
                plan: ExecutionPlan) -> "ResultBase":
        streaming = self.engine(session, plan)
        try:
            return streaming.run(plan.budget, every=plan.every)
        finally:
            streaming.close()
