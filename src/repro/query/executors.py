"""Executor registry: pluggable execution strategies for resolved plans.

Mirrors the backend registries of :mod:`repro.parallel.backends` and
:mod:`repro.streaming.backends`: each executor registers itself under a
name (``single`` / ``sharded`` / ``streaming``), and
:meth:`repro.session.OpaqueQuerySession.execute` dispatches one resolved
:class:`~repro.query.plan.ExecutionPlan` through :func:`get_executor` —
no if/elif chain, and a new execution strategy is one registered class.

Executors are deliberately *thin*: all policy (clause merging, kwarg
validation, WHERE mask evaluation, budget resolution) happens at plan
time in the session, so an executor only instantiates its engine and
runs it.  They read the owning session's registries and caches through
its internal helpers — the session and this module are two halves of one
subsystem.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Dict, List, Type

from repro.core.engine import EngineConfig, TopKEngine
from repro.errors import ConfigurationError
from repro.query.plan import ExecutionPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.result import ResultBase
    from repro.session import OpaqueQuerySession
    from repro.streaming.engine import StreamingTopKEngine


class QueryExecutor(ABC):
    """One execution strategy for resolved plans."""

    #: Registry name; also the ``ExecutionPlan.mode`` it serves.
    name: str = ""

    @abstractmethod
    def execute(self, session: "OpaqueQuerySession",
                plan: ExecutionPlan) -> "ResultBase":
        """Run the plan to completion and return its result."""


EXECUTORS: Dict[str, Type[QueryExecutor]] = {}


def _shard_priors(session: "OpaqueQuerySession", plan: ExecutionPlan,
                  root_entropy: int):
    """Stored warm-start payloads, one per shard — or ``None`` (cold)."""
    if not plan.warm_start or plan.fingerprint is None:
        return None
    from repro.memo.priors import shard_scope
    from repro.parallel.cache import subset_fingerprint

    store = session._prior_store_for(plan.table)
    subset = subset_fingerprint(plan.allowed_ids)
    priors = [
        store.get(plan.fingerprint,
                  shard_scope(worker, plan.workers, root_entropy, subset))
        for worker in range(plan.workers)
    ]
    return priors if any(p is not None for p in priors) else None


def _harvest_shard_priors(session: "OpaqueQuerySession",
                          plan: ExecutionPlan, engine) -> None:
    """Bank each in-process shard's learned histograms for warm starts.

    Process children are out of reach (their engines live in the pool),
    so the harvest covers serial/thread backends only — warm-start is
    best-effort by design.
    """
    if not plan.cache_enabled or plan.fingerprint is None:
        return
    workers = engine.backend.inline_workers()
    if not workers:
        return
    from repro.memo.priors import harvest_priors, shard_scope
    from repro.parallel.cache import subset_fingerprint

    store = session._prior_store_for(plan.table)
    subset = subset_fingerprint(plan.allowed_ids)
    for worker_id, worker in enumerate(workers):
        store.put(
            plan.fingerprint,
            shard_scope(worker_id, plan.workers, engine._root_entropy,
                        subset),
            harvest_priors(worker.engine),
        )


def register_executor(cls: Type[QueryExecutor]) -> Type[QueryExecutor]:
    """Class decorator: add an executor to the registry under its name."""
    if not cls.name:
        raise ConfigurationError(
            f"executor {cls.__name__} must define a registry name"
        )
    EXECUTORS[cls.name] = cls
    return cls


def available_executors() -> List[str]:
    """Names of the registered executors, registration order."""
    return list(EXECUTORS)


def get_executor(name: str) -> QueryExecutor:
    """Instantiate an executor by registry name; raise with guidance."""
    try:
        return EXECUTORS[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown executor {name!r}; available: "
            f"{', '.join(available_executors())}"
        ) from None


@register_executor
class SingleExecutor(QueryExecutor):
    """One in-process engine over the table's task-independent index.

    A ``WHERE`` filter restricts the index to the candidate leaves
    (:meth:`~repro.index.tree.ClusterTree.restricted`) before the engine
    is built, so the bandit never draws — and the UDF never scores — a
    filtered-out element.
    """

    name = "single"

    def execute(self, session: "OpaqueQuerySession",
                plan: ExecutionPlan) -> "ResultBase":
        from repro.core.result import QueryResult

        if plan.n_candidates == 0:
            # WHERE filtered everything out: the empty answer is exact.
            return QueryResult(
                k=plan.k, items=[], stk=0.0, n_scored=0, n_batches=0,
                n_explore=0, n_exploit=0, virtual_time=0.0,
                overhead_time=0.0, exhausted=True,
            )
        # Live-table plans pin an immutable snapshot at plan time; the
        # index request carries the pinned version so a write racing the
        # dispatch serves a one-off tree over exactly those rows.
        dataset = (plan.dataset if plan.dataset is not None
                   else session._tables[plan.table])
        scorer = session._udfs[plan.udf]
        index = session._index_for(plan.table, version=plan.table_version,
                                   dataset=plan.dataset)
        if plan.allowed_ids is not None:
            index = index.restricted(plan.allowed_ids)
        engine = TopKEngine(
            index,
            EngineConfig(k=plan.k, batch_size=plan.batch_size,
                         seed=plan.seed),
            scoring_latency_hint=scorer.batch_cost(plan.batch_size)
            / max(1, plan.batch_size),
        )
        memo = session._memo_view_for(plan)
        if plan.warm_start and plan.fingerprint is not None:
            from repro.memo.priors import apply_priors, single_scope
            from repro.parallel.cache import subset_fingerprint

            priors = session._prior_store_for(plan.table).get(
                plan.fingerprint,
                single_scope(subset_fingerprint(plan.allowed_ids)),
            )
            if priors:
                apply_priors(engine, priors)
        tracer = plan.trace
        if tracer is not None:
            tracer.push(f"execute[{self.name}]")
        try:
            result = engine.run(dataset, scorer, budget=plan.budget,
                                memo=memo, trace=tracer, gate=plan.gate)
        finally:
            if tracer is not None:
                tracer.pop()
        if plan.cache_enabled and plan.fingerprint is not None:
            from repro.memo.priors import harvest_priors, single_scope
            from repro.parallel.cache import subset_fingerprint

            session._prior_store_for(plan.table).put(
                plan.fingerprint,
                single_scope(subset_fingerprint(plan.allowed_ids)),
                harvest_priors(engine),
            )
        return result


@register_executor
class ShardedExecutor(QueryExecutor):
    """Round-based sharded execution (:mod:`repro.parallel`)."""

    name = "sharded"

    def execute(self, session: "OpaqueQuerySession",
                plan: ExecutionPlan) -> "ResultBase":
        from repro.parallel.engine import ShardedTopKEngine

        dataset = (plan.dataset if plan.dataset is not None
                   else session._tables[plan.table])
        sharded = ShardedTopKEngine(
            dataset, session._udfs[plan.udf],
            k=plan.k,
            n_workers=plan.workers,
            backend=plan.backend,
            index_config=session._index_configs.get(
                plan.table, session._default_index_config
            ),
            engine_config=EngineConfig(k=plan.k,
                                       batch_size=plan.batch_size),
            sync_interval=session._sync_interval,
            seed=plan.seed,
            index_cache=session._shard_cache_for(plan.table),
            ids=plan.allowed_ids,
            memo=session._memo_view_for(plan),
            trace=plan.trace,
            gate=plan.gate,
            table_version=plan.table_version,
        )
        # Priors are scoped by root entropy, which the engine only settles
        # at construction; shard specs are built lazily at first run, so
        # attaching them here still reaches every fresh shard engine.
        sharded._priors = _shard_priors(session, plan,
                                        sharded._root_entropy)
        tracer = plan.trace
        if tracer is not None:
            tracer.push(f"execute[{self.name}]", workers=plan.workers,
                        backend=plan.backend)
        try:
            return sharded.run(plan.budget)
        finally:
            if tracer is not None:
                tracer.pop()
            _harvest_shard_priors(session, plan, sharded)
            sharded.close()


@register_executor
class StreamingExecutor(QueryExecutor):
    """Barrier-free streaming execution (:mod:`repro.streaming`).

    Also builds the engine for :meth:`OpaqueQuerySession.stream`, which
    consumes ``results_iter`` live instead of running to completion.
    """

    name = "streaming"

    def engine(self, session: "OpaqueQuerySession",
               plan: ExecutionPlan) -> "StreamingTopKEngine":
        from repro.streaming.engine import StreamingTopKEngine

        dataset = (plan.dataset if plan.dataset is not None
                   else session._tables[plan.table])
        streaming = StreamingTopKEngine(
            dataset, session._udfs[plan.udf],
            k=plan.k,
            n_workers=plan.workers,
            backend=plan.backend,
            index_config=session._index_configs.get(
                plan.table, session._default_index_config
            ),
            engine_config=EngineConfig(k=plan.k,
                                       batch_size=plan.batch_size),
            slice_budget=session._sync_interval,
            confidence=plan.confidence,
            seed=plan.seed,
            index_cache=session._shard_cache_for(plan.table),
            ids=plan.allowed_ids,
            memo=session._memo_view_for(plan),
            trace=plan.trace,
            gate=plan.gate,
            table_version=plan.table_version,
        )
        # Same lazy-spec trick as the sharded executor: the prior scope
        # needs the root entropy the constructor just settled.
        streaming._priors = _shard_priors(session, plan,
                                          streaming._root_entropy)
        return streaming

    def execute(self, session: "OpaqueQuerySession",
                plan: ExecutionPlan) -> "ResultBase":
        streaming = self.engine(session, plan)
        tracer = plan.trace
        if tracer is not None:
            tracer.push(f"execute[{self.name}]", workers=plan.workers,
                        backend=plan.backend)
        try:
            return streaming.run(plan.budget, every=plan.every)
        finally:
            if tracer is not None:
                tracer.pop()
            _harvest_shard_priors(session, plan, streaming)
            streaming.close()
