"""Tokenizer for the session dialect — words, numbers, operators, spans.

The parser (:mod:`repro.query.parser`) consumes a flat list of
:class:`Token` objects.  Every token remembers its character span in the
original query text, so parse errors can point at the exact offending
column and render a caret line under the source::

    unexpected token 'CONFIDENCE' at column 32: CONFIDENCE requires STREAM
        SELECT TOP 5 FROM t ORDER BY f CONFIDENCE 0.9
                                       ^^^^^^^^^^

Tokens are deliberately dumb: keywords are recognized by the *parser*
(against :data:`repro.query.parser.KEYWORDS`), not here, so identifiers
and keywords are both plain ``word`` tokens and the tokenizer never needs
updating when the dialect grows a clause.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigurationError

#: Token kinds: ``word`` (keyword or identifier), ``number`` (int or
#: decimal literal), ``op`` (operator / punctuation), ``end`` (sentinel).
WORD = "word"
NUMBER = "number"
OP = "op"
END = "end"

_TOKEN_RE = re.compile(
    r"""
    (?P<space>\s+)
    | (?P<word>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<number>-?(?:\d+(?:\.\d+)?|\.\d+))
    | (?P<op><=|>=|!=|==|[<>=%(){}\[\];,*])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its half-open character span."""

    kind: str
    text: str
    start: int
    end: int

    @property
    def upper(self) -> str:
        """Uppercased text — how keywords are matched (case-insensitive)."""
        return self.text.upper()

    def describe(self) -> str:
        """Human-readable form for error messages."""
        if self.kind == END:
            return "end of query"
        return f"{self.text!r}"


def tokenize(text: str) -> List[Token]:
    """Split ``text`` into tokens; raise on any unrecognized character.

    The returned list always ends with one ``end`` sentinel token whose
    span sits just past the last character.
    """
    tokens: List[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise span_error(
                text, position, position + 1,
                f"unrecognized character {text[position]!r}",
            )
        position = match.end()
        if match.lastgroup == "space":
            continue
        tokens.append(Token(
            kind=match.lastgroup,
            text=match.group(),
            start=match.start(),
            end=match.end(),
        ))
    tokens.append(Token(kind=END, text="", start=len(text), end=len(text)))
    return tokens


def span_error(text: str, start: int, end: int, head: str,
               reason: Optional[str] = None) -> ConfigurationError:
    """Build a :class:`ConfigurationError` with a caret span under ``text``.

    The message reads ``<head> at column <n>: <reason>`` (1-based column —
    the error surface promised by the dialect docs) and appends the
    offending source line with a caret run under the exact span, so CLI
    users see::

        error: unexpected token 'EVERY' at column 36: EVERY requires STREAM
            SELECT TOP 5 FROM t ORDER BY f EVERY 10
                                           ^^^^^
    """
    start = max(0, min(start, len(text)))
    end = max(start + 1, min(end, max(len(text), start + 1)))
    line_start = text.rfind("\n", 0, start) + 1
    line_end = text.find("\n", start)
    if line_end == -1:
        line_end = len(text)
    line = text[line_start:line_end]
    column = start - line_start + 1
    caret_width = max(1, min(end, line_end) - start)
    caret_line = " " * (column - 1) + "^" * caret_width
    prefix = ""
    if "\n" in text:
        line_number = text.count("\n", 0, start) + 1
        prefix = f"line {line_number}, "
    tail = f": {reason}" if reason else ""
    return ConfigurationError(
        f"{head} at {prefix}column {column}{tail}\n"
        f"    {line}\n"
        f"    {caret_line}"
    )


def token_error(text: str, token: Token, reason: str) -> ConfigurationError:
    """Span error anchored at one token, phrased ``unexpected token ...``."""
    return span_error(text, token.start, token.end,
                      f"unexpected token {token.describe()}", reason)
