"""Query front-end: tokenizer, parser, logical plans, executor registry.

The Section 7.4 dialect grows up here: :func:`parse` (a hand-written
recursive-descent parser, :mod:`repro.query.parser`) turns one statement
into a :class:`QueryPlan` (:mod:`repro.query.plan`); the session resolves
it into an :class:`ExecutionPlan` and dispatches through the executor
registry (:mod:`repro.query.executors`).  ``docs/dialect.md`` is the
user-facing tour; the parser module docstring is the normative grammar.
"""

from repro.query.executors import (
    EXECUTORS,
    QueryExecutor,
    available_executors,
    get_executor,
    register_executor,
)
from repro.query.parser import KEYWORDS, parse
from repro.query.plan import (
    And,
    Comparison,
    ExecutionPlan,
    Not,
    Or,
    Predicate,
    QueryPlan,
)
from repro.query.tokens import Token, tokenize

__all__ = [
    "parse",
    "tokenize",
    "Token",
    "KEYWORDS",
    "QueryPlan",
    "ExecutionPlan",
    "Predicate",
    "Comparison",
    "And",
    "Or",
    "Not",
    "QueryExecutor",
    "EXECUTORS",
    "register_executor",
    "available_executors",
    "get_executor",
]
