"""Logical and resolved plans for the session dialect.

Two stages, mirroring a classical query pipeline:

* :class:`QueryPlan` — the *logical* plan: the parsed clause values plus
  the ``WHERE`` predicate AST, independent of any session state.  Pure
  data; :meth:`QueryPlan.canonical_text` renders it back to dialect text
  (``parse(plan.canonical_text()) == plan`` — the round-trip property the
  fuzz suite pins).
* :class:`ExecutionPlan` — the logical plan *resolved* against one
  :class:`~repro.session.OpaqueQuerySession`: registered table and UDF,
  absolute scoring budget, caller-side defaults merged in, the ``WHERE``
  filter evaluated to a concrete candidate id list, and the executor
  (``single`` / ``sharded`` / ``streaming``) chosen.  ``EXPLAIN``
  queries return this object instead of executing;
  :meth:`ExecutionPlan.explain` is the stable rendering the CLI prints
  and the tests snapshot.

The ``WHERE`` predicate AST (:class:`Comparison` / :class:`And` /
:class:`Or` / :class:`Not`) evaluates vectorized over the table's cheap
feature matrix — one boolean mask per query, computed once at plan time,
then pushed down into the index (leaf-mask filtering, see
:meth:`repro.index.tree.ClusterTree.restricted`) so the bandit never
draws a filtered-out element.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Comparison operators of the WHERE grammar, in canonical spelling.
COMPARISON_OPS = ("<", "<=", ">", ">=", "=", "!=")

_OP_FUNCS = {
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
    "=": np.equal,
    "!=": np.not_equal,
}


def _format_number(value: float) -> str:
    """Canonical numeric literal: integral floats render without ``.0``.

    Always positional (never scientific notation — the tokenizer has no
    exponent syntax), via the shortest positional form that round-trips
    the float exactly, so ``parse(plan.canonical_text())`` stays total.
    """
    value = float(value)
    if not math.isfinite(value):
        raise ConfigurationError(
            f"numeric literals must be finite, got {value!r}"
        )
    if value == int(value):
        return str(int(value))
    return np.format_float_positional(value, trim="-")


class Predicate:
    """Base class of the ``WHERE`` feature-predicate AST.

    Subclasses implement :meth:`mask` (vectorized evaluation over the
    ``(n, d)`` feature matrix) and :meth:`canonical` (deterministic text
    form, parseable back to an equal AST).  Precedence for rendering:
    ``NOT`` binds tighter than ``AND``, which binds tighter than ``OR``.
    """

    #: Rendering precedence (higher binds tighter).
    precedence = 3

    def mask(self, features: np.ndarray) -> np.ndarray:
        """Boolean keep-mask over the feature rows."""
        raise NotImplementedError

    def canonical(self) -> str:
        """Deterministic dialect text for this predicate."""
        raise NotImplementedError

    def _child_text(self, child: "Predicate") -> str:
        """Render a child, parenthesized when it binds looser than self."""
        text = child.canonical()
        if child.precedence < self.precedence:
            return f"({text})"
        return text

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.canonical()!r})"


@dataclass(frozen=True, repr=False)
class Comparison(Predicate):
    """``feature[<i>] <op> <number>`` — one vectorized column comparison."""

    feature: int
    op: str
    value: float

    def __post_init__(self) -> None:
        if self.op not in _OP_FUNCS:
            raise ConfigurationError(
                f"unknown comparison operator {self.op!r}; "
                f"supported: {', '.join(COMPARISON_OPS)}"
            )
        if self.feature < 0:
            raise ConfigurationError(
                f"feature index must be non-negative, got {self.feature}"
            )
        if not math.isfinite(self.value):
            raise ConfigurationError(
                f"comparison value must be finite, got {self.value!r}"
            )

    precedence = 3

    def mask(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features)
        if features.ndim == 1:
            features = features.reshape(-1, 1)
        if self.feature >= features.shape[1]:
            raise ConfigurationError(
                f"WHERE references feature[{self.feature}] but the table "
                f"has only {features.shape[1]} feature column(s)"
            )
        return _OP_FUNCS[self.op](features[:, self.feature], self.value)

    def canonical(self) -> str:
        return f"feature[{self.feature}] {self.op} " \
               f"{_format_number(self.value)}"


@dataclass(frozen=True, repr=False)
class Not(Predicate):
    """Logical negation."""

    operand: Predicate

    precedence = 2

    def mask(self, features: np.ndarray) -> np.ndarray:
        return ~self.operand.mask(features)

    def canonical(self) -> str:
        return f"NOT {self._child_text(self.operand)}"


def _flatten(cls, operands: Tuple[Predicate, ...]) -> Tuple[Predicate, ...]:
    """Flatten directly nested operands of the same associative connective.

    ``AND``/``OR`` are associative, so ``And((a, And((b, c))))`` and
    ``And((a, b, c))`` denote the same predicate — and the canonical text
    cannot tell them apart.  Normalizing at construction keeps
    ``parse(p.canonical()) == p`` exact for every AST shape.
    """
    flat: list = []
    for operand in operands:
        if isinstance(operand, cls):
            flat.extend(operand.operands)
        else:
            flat.append(operand)
    return tuple(flat)


@dataclass(frozen=True, repr=False)
class And(Predicate):
    """Conjunction of two or more operands."""

    operands: Tuple[Predicate, ...]

    precedence = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "operands",
                           _flatten(And, self.operands))

    def mask(self, features: np.ndarray) -> np.ndarray:
        result = self.operands[0].mask(features)
        for operand in self.operands[1:]:
            result = result & operand.mask(features)
        return result

    def canonical(self) -> str:
        return " AND ".join(self._child_text(op) for op in self.operands)


@dataclass(frozen=True, repr=False)
class Or(Predicate):
    """Disjunction of two or more operands."""

    operands: Tuple[Predicate, ...]

    precedence = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "operands",
                           _flatten(Or, self.operands))

    def mask(self, features: np.ndarray) -> np.ndarray:
        result = self.operands[0].mask(features)
        for operand in self.operands[1:]:
            result = result | operand.mask(features)
        return result

    def canonical(self) -> str:
        return " OR ".join(self._child_text(op) for op in self.operands)


@dataclass(frozen=True)
class QueryPlan:
    """The logical plan: every clause of one dialect statement.

    ``workers`` / ``backend`` / ``every`` / ``confidence`` are ``None``
    when the clause was absent (caller-side defaults may fill them at
    resolution time); ``where`` is the predicate AST or ``None``;
    ``explain`` marks an ``EXPLAIN``-wrapped statement and ``analyze``
    an ``EXPLAIN ANALYZE`` one (``analyze`` implies ``explain``).
    """

    k: int
    table: str
    udf: str
    budget: Optional[int] = None
    budget_fraction: Optional[float] = None
    batch_size: int = 1
    seed: Optional[int] = None
    descending: bool = True        # DESC is documentary; top-k maximizes
    workers: Optional[int] = None
    backend: Optional[str] = None
    stream: bool = False
    every: Optional[int] = None
    confidence: Optional[float] = None
    continuous: bool = False
    where: Optional[Predicate] = None
    explain: bool = False
    analyze: bool = False

    def canonical_text(self) -> str:
        """Deterministic dialect text; ``parse`` of it yields an equal plan.

        Clauses render in the canonical order (the order the grammar
        documents), regardless of the order they were written in.  The
        round-trip is exact for every plan the parser can produce; a
        hand-built ``budget_fraction`` that no percent literal can
        represent (e.g. ``1/3``) renders as the closest representable
        percentage.
        """
        parts = [f"SELECT TOP {self.k} FROM {self.table} "
                 f"ORDER BY {self.udf}"]
        if self.where is not None:
            parts.append(f"WHERE {self.where.canonical()}")
        if self.budget_fraction is not None:
            # Shortest percentage whose /100 reproduces the stored
            # fraction exactly: "BUDGET 7%" stays "7%", never the
            # float-noise "7.000000000000001%" of fraction * 100.
            # Every parser-produced fraction is p/100 by construction,
            # so an exact percent always exists for it; a hand-built
            # fraction with no exact percent literal (e.g. 1/3) falls
            # through to the closest representable percent.
            percent = self.budget_fraction * 100.0
            for digits in range(0, 18):
                candidate = round(percent, digits)
                if candidate / 100.0 == self.budget_fraction:
                    percent = candidate
                    break
            parts.append(f"BUDGET {_format_number(percent)}%")
        elif self.budget is not None:
            parts.append(f"BUDGET {self.budget}")
        if self.batch_size != 1:
            parts.append(f"BATCH {self.batch_size}")
        if self.seed is not None:
            parts.append(f"SEED {self.seed}")
        if self.workers is not None:
            parts.append(f"WORKERS {self.workers}")
        if self.backend is not None:
            parts.append(f"BACKEND {self.backend}")
        if self.stream:
            parts.append("STREAM")
        if self.every is not None:
            parts.append(f"EVERY {self.every}")
        if self.confidence is not None:
            parts.append(f"CONFIDENCE {_format_number(self.confidence)}")
        if self.continuous:
            parts.append("CONTINUOUS")
        text = " ".join(parts)
        if self.analyze:
            text = f"EXPLAIN ANALYZE {text}"
        elif self.explain:
            text = f"EXPLAIN {text}"
        return text


@dataclass
class ExecutionPlan:
    """A logical plan resolved against one session, ready to dispatch.

    Produced by :meth:`repro.session.OpaqueQuerySession.plan`; consumed
    by the executor registry (:mod:`repro.query.executors`).  ``EXPLAIN``
    queries return this object from ``execute`` instead of running it.
    """

    query: QueryPlan
    mode: str                      # executor name: single|sharded|streaming
    n_elements: int                # registered table size
    n_candidates: int              # elements surviving the WHERE filter
    budget: Optional[int]          # absolute scoring-call budget (resolved)
    batch_size: int
    seed: Optional[int]
    workers: int                   # resolved worker count (>= 1)
    backend: str                   # resolved backend name
    every: Optional[int]
    confidence: Optional[float]
    #: Candidate ids in table order when a WHERE filter applies, else None.
    allowed_ids: Optional[List[str]] = None
    #: UDF fingerprint (:func:`repro.memo.fingerprint.udf_fingerprint`);
    #: ``None`` when the scorer is unfingerprintable.  Never rendered in
    #: :meth:`explain` — bytecode digests vary across Python versions.
    fingerprint: Optional[str] = None
    #: Whether the cross-query score memo is active for this dispatch.
    cache_enabled: bool = False
    #: Whether warm-start priors will be applied (opt-in, not bit-identical).
    warm_start: bool = False
    #: Memoized scores already stored for this UDF at plan time.
    memo_entries: int = 0
    #: Fraction of this query's candidates already memoized; computed for
    #: EXPLAIN queries only (``None`` otherwise — the probe is O(n)).
    expected_hit_rate: Optional[float] = None
    #: Span collector (:class:`repro.obs.spans.TraceContext`) threaded to
    #: the executor when tracing is on; ``None`` otherwise.  Never
    #: rendered in :meth:`explain` — it is per-dispatch runtime state.
    trace: Optional[object] = None
    #: Service budget gate (:class:`repro.service.budget.QueryGrant`)
    #: threaded to the executor when the query runs under the multi-tenant
    #: scheduler; ``None`` otherwise.  Like :attr:`trace`, per-dispatch
    #: runtime state — never rendered in :meth:`explain`.
    gate: Optional[object] = None
    #: For live (mutable) tables: the immutable
    #: :class:`~repro.live.table.TableSnapshot` this query is pinned to.
    #: ``None`` for ordinary registered datasets — executors fall back to
    #: the session registry.  Never rendered in :meth:`explain`.
    dataset: Optional[object] = None
    #: The pinned snapshot's ``table_version`` (0 for static tables);
    #: keys the shard-index cache and the memo's MVCC validity checks.
    table_version: int = 0
    #: Live tables only: how the index serving this plan was maintained
    #: (``built`` / ``incremental`` / ``rebuilt``); ``None`` for static
    #: tables, keeping the pinned EXPLAIN rendering unchanged for them.
    index_freshness: Optional[str] = None

    @property
    def table(self) -> str:
        """Registered table name (from the logical plan)."""
        return self.query.table

    @property
    def udf(self) -> str:
        """Registered UDF name (from the logical plan)."""
        return self.query.udf

    @property
    def k(self) -> int:
        """Answer cardinality."""
        return self.query.k

    @property
    def selectivity(self) -> float:
        """Fraction of the table surviving the WHERE filter (1.0 = all)."""
        if self.n_elements == 0:
            return 0.0
        return self.n_candidates / self.n_elements

    def explain(self) -> str:
        """Stable multi-line rendering — what ``EXPLAIN`` returns.

        Snapshot-tested; the shape is part of the public surface, so keep
        additions append-only.
        """
        lines = [
            "== execution plan ==",
            f"query:     {self.query.canonical_text()}",
            f"executor:  {self.mode}",
            f"table:     {self.table} ({self.n_elements} elements)",
            f"udf:       {self.udf}",
        ]
        if self.query.where is not None:
            lines.append(
                f"filter:    {self.query.where.canonical()} -> "
                f"{self.n_candidates} of {self.n_elements} elements "
                f"({self.selectivity:.1%} selectivity)"
            )
        budget = ("exhaustive (all candidates)" if self.budget is None
                  else f"{self.budget} scoring calls")
        lines.append(f"budget:    {budget}")
        lines.append(f"batch:     {self.batch_size}")
        lines.append(f"seed:      "
                     f"{'fresh entropy' if self.seed is None else self.seed}")
        if self.mode != "single":
            lines.append(f"workers:   {self.workers}")
            lines.append(f"backend:   {self.backend}")
        if self.mode == "streaming":
            every = "per slice" if self.every is None else str(self.every)
            lines.append(f"every:     {every}")
            confidence = ("off" if self.confidence is None
                          else _format_number(self.confidence))
            lines.append(f"confidence: {confidence}")
        if not self.cache_enabled:
            lines.append("cache:     off")
        elif self.expected_hit_rate is None:
            lines.append("cache:     on")
        else:
            memoized = int(round(self.expected_hit_rate
                                 * self.n_candidates))
            lines.append(
                f"cache:     on (expected hit rate "
                f"{self.expected_hit_rate:.1%}: {memoized} of "
                f"{self.n_candidates} candidates memoized)"
            )
        if self.index_freshness is not None:
            lines.append(f"live:      table version {self.table_version}, "
                         f"index {self.index_freshness}")
        if self.query.continuous:
            lines.append("standing:  CONTINUOUS (re-emits on committed "
                         "writes)")
        return "\n".join(lines)

    def summary(self) -> str:
        """One-line form of :meth:`explain` (CLI-friendly)."""
        where = ("" if self.query.where is None
                 else f" where[{self.n_candidates}/{self.n_elements}]")
        budget = "all" if self.budget is None else str(self.budget)
        return (f"plan: {self.mode} top-{self.k} on {self.table} "
                f"by {self.udf}{where} budget={budget} "
                f"workers={self.workers} backend={self.backend}")
