"""Gradient boosting over regression trees (XGBoost-style, from scratch).

Standard Friedman gradient boosting: start from the loss's optimal constant,
then repeatedly fit a shallow :class:`~repro.scoring.gbdt.tree.RegressionTree`
to the negative gradient (optionally on a row subsample) and add it with a
shrinkage factor.  Squared loss makes each round plain residual fitting.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError, NotFittedError
from repro.scoring.gbdt.losses import Loss, SquaredLoss
from repro.scoring.gbdt.tree import RegressionTree
from repro.utils.rng import SeedLike, as_generator


class GradientBoostedRegressor:
    """Boosted regression-tree ensemble.

    Parameters
    ----------
    n_estimators:
        Number of boosting rounds.
    learning_rate:
        Shrinkage applied to each tree's contribution.
    max_depth / min_samples_leaf:
        Base-tree complexity controls.
    subsample:
        Row-sampling fraction per round (stochastic gradient boosting).
    loss:
        Boosting objective (default: squared loss).
    rng:
        Seed or generator for subsampling.
    """

    def __init__(self, n_estimators: int = 50, learning_rate: float = 0.1,
                 max_depth: int = 4, min_samples_leaf: int = 10,
                 subsample: float = 1.0, loss: Loss | None = None,
                 rng: SeedLike = None) -> None:
        if n_estimators <= 0:
            raise ConfigurationError(
                f"n_estimators must be positive, got {n_estimators!r}"
            )
        if not 0.0 < learning_rate <= 1.0:
            raise ConfigurationError(
                f"learning_rate must lie in (0, 1], got {learning_rate!r}"
            )
        if not 0.0 < subsample <= 1.0:
            raise ConfigurationError(
                f"subsample must lie in (0, 1], got {subsample!r}"
            )
        self.n_estimators = int(n_estimators)
        self.learning_rate = float(learning_rate)
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.subsample = float(subsample)
        self.loss = loss or SquaredLoss()
        self._rng = as_generator(rng)
        self.trees_: List[RegressionTree] = []
        self.initial_: Optional[float] = None
        self.train_losses_: List[float] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostedRegressor":
        """Fit the ensemble; records the training-loss trajectory."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or y.ndim != 1 or len(X) != len(y) or len(X) == 0:
            raise ConfigurationError(
                f"fit expects aligned (n, d) X and (n,) y, got {X.shape}, {y.shape}"
            )
        self.trees_ = []
        self.train_losses_ = []
        self.initial_ = self.loss.initial_prediction(y)
        prediction = np.full(len(y), self.initial_, dtype=float)
        n = len(y)
        for _round in range(self.n_estimators):
            residual = self.loss.negative_gradient(y, prediction)
            if self.subsample < 1.0:
                size = max(2 * self.min_samples_leaf,
                           int(round(self.subsample * n)))
                rows = self._rng.choice(n, size=min(size, n), replace=False)
            else:
                rows = np.arange(n)
            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
            )
            tree.fit(X[rows], residual[rows])
            prediction = prediction + self.learning_rate * tree.predict(X)
            self.trees_.append(tree)
            self.train_losses_.append(self.loss.value(y, prediction))
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets for each row of ``X``."""
        if self.initial_ is None:
            raise NotFittedError("GradientBoostedRegressor.predict before fit")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        prediction = np.full(len(X), self.initial_, dtype=float)
        for tree in self.trees_:
            prediction += self.learning_rate * tree.predict(X)
        return prediction

    def staged_predict(self, X: np.ndarray) -> np.ndarray:
        """``(n_estimators, n)`` predictions after each boosting round."""
        if self.initial_ is None:
            raise NotFittedError("GradientBoostedRegressor.staged_predict before fit")
        X = np.asarray(X, dtype=float)
        prediction = np.full(len(X), self.initial_, dtype=float)
        stages = np.empty((len(self.trees_), len(X)), dtype=float)
        for i, tree in enumerate(self.trees_):
            prediction = prediction + self.learning_rate * tree.predict(X)
            stages[i] = prediction
        return stages
