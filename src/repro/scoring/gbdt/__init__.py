"""Gradient-boosted regression trees, implemented from scratch.

This is the reproduction's stand-in for the paper's XGBoost valuation model
(Section 5.1.3 (2)): an ensemble of exact-greedy CART regression trees fit
to loss gradients with shrinkage and optional row subsampling.  It produces
the same kind of piecewise-constant, feature-correlated score surface the
index exploits, while remaining a genuinely opaque UDF from the query
algorithm's point of view.
"""

from repro.scoring.gbdt.tree import RegressionTree
from repro.scoring.gbdt.losses import AbsoluteLoss, Loss, SquaredLoss
from repro.scoring.gbdt.boosting import GradientBoostedRegressor

__all__ = [
    "RegressionTree",
    "GradientBoostedRegressor",
    "Loss",
    "SquaredLoss",
    "AbsoluteLoss",
]
