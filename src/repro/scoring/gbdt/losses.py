"""Loss functions for gradient boosting.

Each loss provides its negative gradient (the "pseudo-residuals" successive
trees are fit to) and an initial constant prediction.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class Loss(ABC):
    """Boosting loss interface."""

    @abstractmethod
    def initial_prediction(self, y: np.ndarray) -> float:
        """Optimal constant model for the targets."""

    @abstractmethod
    def negative_gradient(self, y: np.ndarray, prediction: np.ndarray
                          ) -> np.ndarray:
        """Pseudo-residuals at the current prediction."""

    @abstractmethod
    def value(self, y: np.ndarray, prediction: np.ndarray) -> float:
        """Mean loss at the current prediction."""


class SquaredLoss(Loss):
    """L2 loss: residual boosting (the XGBoost-default regression objective)."""

    def initial_prediction(self, y: np.ndarray) -> float:
        return float(np.mean(y))

    def negative_gradient(self, y: np.ndarray, prediction: np.ndarray
                          ) -> np.ndarray:
        return y - prediction

    def value(self, y: np.ndarray, prediction: np.ndarray) -> float:
        return float(np.mean((y - prediction) ** 2))


class AbsoluteLoss(Loss):
    """L1 loss: sign-of-residual boosting, robust to the price tail."""

    def initial_prediction(self, y: np.ndarray) -> float:
        return float(np.median(y))

    def negative_gradient(self, y: np.ndarray, prediction: np.ndarray
                          ) -> np.ndarray:
        return np.sign(y - prediction)

    def value(self, y: np.ndarray, prediction: np.ndarray) -> float:
        return float(np.mean(np.abs(y - prediction)))
