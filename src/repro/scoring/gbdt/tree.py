"""Exact-greedy CART regression tree.

Split finding follows the classic approach: per feature, sort the node's
rows, compute prefix sums of targets, and evaluate the sum-of-squared-error
reduction of every boundary between distinct consecutive values in O(n)
after the sort.  Prediction distributes row-index arrays down the tree, so
scoring a matrix costs O(n * depth) numpy operations rather than Python
per-row traversal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, NotFittedError


@dataclass
class _Node:
    """Internal tree node; leaves have ``feature = -1``."""

    feature: int = -1
    threshold: float = 0.0
    value: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


def _best_split(X: np.ndarray, y: np.ndarray, min_samples_leaf: int
                ) -> tuple[int, float, float]:
    """Return (feature, threshold, sse_reduction) of the best split.

    ``feature`` is -1 when no admissible split improves the SSE.
    """
    n, d = X.shape
    total_sum = y.sum()
    base_sse_term = total_sum * total_sum / n
    best_feature, best_threshold, best_gain = -1, 0.0, 0.0
    for feature in range(d):
        order = np.argsort(X[:, feature], kind="stable")
        xs = X[order, feature]
        ys = y[order]
        prefix = np.cumsum(ys)
        # Candidate boundary after position i (1-based left size).
        left_sizes = np.arange(1, n)
        left_sums = prefix[:-1]
        right_sums = total_sum - left_sums
        right_sizes = n - left_sizes
        valid = (
            (xs[:-1] < xs[1:])
            & (left_sizes >= min_samples_leaf)
            & (right_sizes >= min_samples_leaf)
        )
        if not valid.any():
            continue
        gains = (
            left_sums**2 / left_sizes
            + right_sums**2 / right_sizes
            - base_sse_term
        )
        gains = np.where(valid, gains, -np.inf)
        pick = int(np.argmax(gains))
        if gains[pick] > best_gain + 1e-12:
            best_gain = float(gains[pick])
            best_feature = feature
            best_threshold = float(0.5 * (xs[pick] + xs[pick + 1]))
    return best_feature, best_threshold, best_gain


class RegressionTree:
    """A CART regression tree minimizing sum of squared errors.

    Parameters
    ----------
    max_depth:
        Maximum tree depth counted in edges, as in scikit-learn/XGBoost: a
        single-split stump has depth 1; a lone leaf has depth 0.
    min_samples_leaf:
        Minimum rows per leaf; splits violating this are discarded.
    min_gain:
        Minimum SSE reduction to accept a split.
    """

    def __init__(self, max_depth: int = 4, min_samples_leaf: int = 5,
                 min_gain: float = 1e-9) -> None:
        if max_depth <= 0:
            raise ConfigurationError(f"max_depth must be positive, got {max_depth!r}")
        if min_samples_leaf <= 0:
            raise ConfigurationError(
                f"min_samples_leaf must be positive, got {min_samples_leaf!r}"
            )
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.min_gain = float(min_gain)
        self._root: Optional[_Node] = None
        self.n_leaves_ = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RegressionTree":
        """Fit the tree on ``(n, d)`` features and ``(n,)`` targets."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or y.ndim != 1 or len(X) != len(y) or len(X) == 0:
            raise ConfigurationError(
                f"fit expects aligned (n, d) X and (n,) y, got {X.shape}, {y.shape}"
            )
        self.n_leaves_ = 0
        self._root = self._build(X, y, depth=0)
        return self

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(y.mean()))
        if depth >= self.max_depth or len(y) < 2 * self.min_samples_leaf:
            self.n_leaves_ += 1
            return node
        feature, threshold, gain = _best_split(X, y, self.min_samples_leaf)
        if feature < 0 or gain < self.min_gain:
            self.n_leaves_ += 1
            return node
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets for each row of ``X`` (vectorized traversal)."""
        if self._root is None:
            raise NotFittedError("RegressionTree.predict before fit")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        out = np.empty(len(X), dtype=float)
        self._fill(self._root, X, np.arange(len(X)), out)
        return out

    def _fill(self, node: _Node, X: np.ndarray, rows: np.ndarray,
              out: np.ndarray) -> None:
        if node.is_leaf or len(rows) == 0:
            out[rows] = node.value
            return
        mask = X[rows, node.feature] <= node.threshold
        assert node.left is not None and node.right is not None
        self._fill(node.left, X, rows[mask], out)
        self._fill(node.right, X, rows[~mask], out)

    def depth(self) -> int:
        """Actual depth of the fitted tree in edges (a lone leaf is 0)."""
        if self._root is None:
            raise NotFittedError("RegressionTree.depth before fit")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            assert node.left is not None and node.right is not None
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)
