"""Linear models: ridge regression and binary logistic regression.

Cheap additional opaque scorers used by the examples and ablations — the
paper stresses that the method must generalize across "a variety of scoring
functions", so the library ships more than one model family.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, NotFittedError
from repro.scoring.base import LatencyModel, Scorer, ZeroLatency
from repro.utils.rng import SeedLike, as_generator


class LinearRegressionScorer(Scorer):
    """Ridge regression fit in closed form; scores are clamped at zero.

    Parameters
    ----------
    ridge:
        L2 regularization strength.
    transform:
        Optional ``element -> feature vector`` adapter applied before the
        linear map (defaults to ``np.asarray``).
    """

    def __init__(self, ridge: float = 1e-6,
                 transform: Callable[[Any], np.ndarray] | None = None,
                 latency: LatencyModel | None = None) -> None:
        if ridge < 0:
            raise ConfigurationError(f"ridge must be non-negative, got {ridge!r}")
        self.ridge = float(ridge)
        self.transform = transform or (lambda obj: np.asarray(obj, dtype=float))
        self.latency = latency or ZeroLatency()
        self.weights_: Optional[np.ndarray] = None
        self.bias_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearRegressionScorer":
        """Closed-form ridge fit on ``(n, d)`` features and ``(n,)`` targets."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or len(X) != len(y):
            raise ConfigurationError("fit expects aligned (n, d) X and (n,) y")
        mean_x = X.mean(axis=0)
        mean_y = float(y.mean())
        centered_x = X - mean_x
        gram = centered_x.T @ centered_x + self.ridge * np.eye(X.shape[1])
        self.weights_ = np.linalg.solve(gram, centered_x.T @ (y - mean_y))
        self.bias_ = mean_y - float(mean_x @ self.weights_)
        return self

    def score(self, obj: Any) -> float:
        if self.weights_ is None:
            raise NotFittedError("LinearRegressionScorer.score before fit")
        features = self.transform(obj).ravel()
        return float(max(0.0, features @ self.weights_ + self.bias_))

    def score_batch(self, objects: Sequence[Any]) -> np.ndarray:
        if self.weights_ is None:
            raise NotFittedError("LinearRegressionScorer.score_batch before fit")
        matrix = np.stack([self.transform(obj).ravel() for obj in objects])
        return np.maximum(matrix @ self.weights_ + self.bias_, 0.0)


class LogisticRegressionModel:
    """Binary logistic regression trained by full-batch gradient descent."""

    def __init__(self, learning_rate: float = 0.5, epochs: int = 200,
                 weight_decay: float = 1e-4, rng: SeedLike = None) -> None:
        self.learning_rate = float(learning_rate)
        self.epochs = int(epochs)
        self.weight_decay = float(weight_decay)
        self._rng = as_generator(rng)
        self.weights_: Optional[np.ndarray] = None
        self.bias_: float = 0.0

    @staticmethod
    def _sigmoid(z: np.ndarray) -> np.ndarray:
        out = np.empty_like(z)
        pos = z >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
        exp_z = np.exp(z[~pos])
        out[~pos] = exp_z / (1.0 + exp_z)
        return out

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegressionModel":
        """Fit on ``(n, d)`` features and binary ``(n,)`` labels."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or len(X) != len(y):
            raise ConfigurationError("fit expects aligned (n, d) X and (n,) y")
        if not np.isin(y, (0.0, 1.0)).all():
            raise ConfigurationError("labels must be binary 0/1")
        n, d = X.shape
        self.weights_ = self._rng.normal(0.0, 0.01, size=d)
        self.bias_ = 0.0
        for _ in range(self.epochs):
            probs = self._sigmoid(X @ self.weights_ + self.bias_)
            error = probs - y
            grad_w = X.T @ error / n + self.weight_decay * self.weights_
            grad_b = float(error.mean())
            self.weights_ -= self.learning_rate * grad_w
            self.bias_ -= self.learning_rate * grad_b
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """``P(y = 1 | x)`` per row."""
        if self.weights_ is None:
            raise NotFittedError("LogisticRegressionModel.predict_proba before fit")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        return self._sigmoid(X @ self.weights_ + self.bias_)
