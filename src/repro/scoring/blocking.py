"""A scorer that *really blocks* for its latency-model cost.

The experiment harness normally charges scoring latency to a virtual clock
(no real sleeping), which is right for simulation but useless when you want
to *measure* wall-clock — e.g. comparing the parallel backends, where
speedup comes from overlapping genuine UDF latency.
:class:`BlockingReluScorer` stands in for an expensive opaque UDF (a remote
model endpoint, an accelerator call): it sleeps for the latency model's
batch cost, then computes ReLU.  ``time.sleep`` releases the GIL, so the
thread backend overlaps it just like a real I/O- or accelerator-bound
scorer would.

Module-level and stateless, hence picklable for the process backend even
under the ``spawn`` start method.  Used by ``benchmarks/bench_sharded.py``
and ``examples/distributed_workers.py``.
"""

from __future__ import annotations

import time
from typing import Any, Sequence

import numpy as np

from repro.scoring.base import FixedPerCallLatency, Scorer


class BlockingReluScorer(Scorer):
    """``f(x) = max(0, x)`` after really sleeping for the batch cost."""

    def __init__(self, per_call: float = 2e-3) -> None:
        self.latency = FixedPerCallLatency(per_call)

    def score(self, obj: Any) -> float:
        time.sleep(self.latency.batch_cost(1))
        return max(0.0, float(obj))

    def score_batch(self, objects: Sequence[Any]) -> np.ndarray:
        time.sleep(self.latency.batch_cost(len(objects)))
        return np.maximum(np.asarray(objects, dtype=float), 0.0)
