"""Fuzzy-classification scorer: softmax confidence for one target label.

Reproduces the paper's image workload (Section 5.4): "we use a pre-trained
ResNeXT-64 model's softmax layer to obtain its confidence that an image
belongs to a particular label ... We use a batch size of 400 on GPU for
inference" (~13 ms amortized per element).  Here the model is the numpy
MLP of :mod:`repro.scoring.mlp` and the latency model is GPU-style
amortized batching.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.scoring.base import AmortizedBatchLatency, LatencyModel, Scorer
from repro.scoring.mlp import MLPClassifier


class SoftmaxConfidenceScorer(Scorer):
    """``f(image) = P(label | image)`` from a trained softmax classifier.

    Parameters
    ----------
    model:
        A fitted :class:`MLPClassifier`.
    label:
        Target class index (the paper picks three labels at random).
    latency:
        Cost model (default: GPU-style amortized batching, Fig. 8a shape).
    """

    def __init__(self, model: MLPClassifier, label: int,
                 latency: LatencyModel | None = None) -> None:
        if not 0 <= label < model.n_classes_:
            raise ConfigurationError(
                f"label {label!r} out of range for {model.n_classes_} classes"
            )
        self.model = model
        self.label = int(label)
        self.latency = latency or AmortizedBatchLatency()

    @staticmethod
    def _flatten(obj: Any) -> np.ndarray:
        return np.asarray(obj, dtype=float).ravel()

    def score(self, obj: Any) -> float:
        probs = self.model.predict_proba(self._flatten(obj).reshape(1, -1))
        return float(probs[0, self.label])

    def score_batch(self, objects: Sequence[Any]) -> np.ndarray:
        matrix = np.stack([self._flatten(obj) for obj in objects])
        return self.model.predict_proba(matrix)[:, self.label]
