"""Scorer protocol, latency models, and accounting wrappers.

A *scorer* is the opaque UDF: it maps an element to a non-negative float.
The library never inspects its internals — only calls it, in batches when
possible (Section 3.2.5).  Each scorer carries a :class:`LatencyModel`
describing its per-batch cost, which the experiment harness charges to a
virtual clock (see DESIGN.md substitution 4): the paper's latency *ratios*
are preserved without real sleeping.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, List, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.validation import check_non_negative


class LatencyModel(ABC):
    """Cost model for scoring batches of elements."""

    @abstractmethod
    def batch_cost(self, batch_size: int) -> float:
        """Seconds to score one batch of ``batch_size`` elements."""

    def per_element_cost(self, batch_size: int) -> float:
        """Average seconds per element at the given batch size."""
        if batch_size <= 0:
            return 0.0
        return self.batch_cost(batch_size) / batch_size

    def memory_bytes(self, batch_size: int) -> int:
        """Estimated accelerator memory footprint of one batch (Fig. 8a)."""
        return 0


class ZeroLatency(LatencyModel):
    """Free scoring — used by unit tests and the SortedScan query phase."""

    def batch_cost(self, batch_size: int) -> float:
        return 0.0


class FixedPerCallLatency(LatencyModel):
    """CPU-style inference: a constant cost per call, no batching benefit.

    The paper's XGBoost scorer runs with "a batch size of 1 on CPU" at about
    2 ms per call.
    """

    def __init__(self, per_call: float = 2e-3) -> None:
        self.per_call = check_non_negative(per_call, "per_call")

    def batch_cost(self, batch_size: int) -> float:
        return self.per_call * max(0, batch_size)


class AmortizedBatchLatency(LatencyModel):
    """GPU-style inference: fixed launch cost amortized across the batch.

    ``batch_cost(b) = launch + per_element * b``, so the per-element latency
    ``launch / b + per_element`` decreases with diminishing returns and
    flattens once the model becomes compute-bound — the exact shape of
    Figure 8a.  Defaults approximate the paper's ResNeXT numbers: batch 400
    costs ~5.2 s (13 ms/element amortized).

    ``memory_bytes`` grows linearly in the batch size (activation memory),
    reproducing the figure's right axis.
    """

    def __init__(self, launch: float = 2.0, per_element: float = 8e-3,
                 base_memory: int = 1_500_000_000,
                 per_element_memory: int = 2_000_000) -> None:
        self.launch = check_non_negative(launch, "launch")
        self.per_element = check_non_negative(per_element, "per_element")
        self.base_memory = int(check_non_negative(base_memory, "base_memory"))
        self.per_element_memory = int(
            check_non_negative(per_element_memory, "per_element_memory")
        )

    def batch_cost(self, batch_size: int) -> float:
        if batch_size <= 0:
            return 0.0
        return self.launch + self.per_element * batch_size

    def memory_bytes(self, batch_size: int) -> int:
        return self.base_memory + self.per_element_memory * max(0, batch_size)


class Scorer(ABC):
    """The opaque UDF: element -> non-negative score, plus its cost model."""

    #: Latency model used for virtual-clock accounting.
    latency: LatencyModel = ZeroLatency()

    @abstractmethod
    def score(self, obj: Any) -> float:
        """Score a single element."""

    def score_batch(self, objects: Sequence[Any]) -> np.ndarray:
        """Score a batch; default maps :meth:`score` element-wise."""
        return np.asarray([self.score(obj) for obj in objects], dtype=float)

    def batch_cost(self, batch_size: int) -> float:
        """Latency-model cost of one batch (engine protocol hook)."""
        return self.latency.batch_cost(batch_size)


class FunctionScorer(Scorer):
    """Adapt a plain Python callable into a :class:`Scorer`.

    Parameters
    ----------
    fn:
        ``element -> float``; must return non-negative values.
    batch_fn:
        Optional vectorized ``elements -> array``; falls back to mapping
        ``fn`` when omitted.
    latency:
        Cost model (default: free).
    """

    def __init__(self, fn: Callable[[Any], float],
                 batch_fn: Callable[[Sequence[Any]], np.ndarray] | None = None,
                 latency: LatencyModel | None = None) -> None:
        self._fn = fn
        self._batch_fn = batch_fn
        self.latency = latency or ZeroLatency()

    def score(self, obj: Any) -> float:
        return float(self._fn(obj))

    def score_batch(self, objects: Sequence[Any]) -> np.ndarray:
        if self._batch_fn is not None:
            return np.asarray(self._batch_fn(objects), dtype=float)
        return super().score_batch(objects)


class CountingScorer(Scorer):
    """Wrapper that counts calls and accumulates virtual scoring cost.

    The harness wraps every scorer in one of these so figures can report
    the exact number of UDF invocations and the simulated scoring time.
    """

    def __init__(self, inner: Scorer) -> None:
        self.inner = inner
        self.latency = inner.latency
        self.n_elements = 0
        self.n_batches = 0
        self.virtual_cost = 0.0

    def __fingerprint_state__(self):
        """Identify as the wrapped scorer for the cross-query memo.

        The wrapper computes exactly the inner scorer's scores, and its
        call counters are observability, not semantics — they must not
        invalidate (or fork) the memo of the function being counted.
        """
        return self.inner

    def score(self, obj: Any) -> float:
        self.n_elements += 1
        self.n_batches += 1
        self.virtual_cost += self.inner.batch_cost(1)
        return self.inner.score(obj)

    def score_batch(self, objects: Sequence[Any]) -> np.ndarray:
        self.n_elements += len(objects)
        self.n_batches += 1
        self.virtual_cost += self.inner.batch_cost(len(objects))
        return self.inner.score_batch(objects)

    def batch_cost(self, batch_size: int) -> float:
        return self.inner.batch_cost(batch_size)
