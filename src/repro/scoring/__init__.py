"""Opaque scoring-function substrates.

The paper's scorers: ReLU on raw values (synthetic), an XGBoost price
regressor (tabular), and a pre-trained ResNeXT softmax (images).  This
package implements equivalents from scratch: a gradient-boosted regression
tree ensemble, a numpy MLP softmax classifier, plus linear models and the
latency/batching machinery that reproduces the paper's cost model
(2 ms/call CPU inference; amortized GPU batches, Fig. 8a).
"""

from repro.scoring.base import (
    AmortizedBatchLatency,
    CountingScorer,
    FixedPerCallLatency,
    FunctionScorer,
    LatencyModel,
    Scorer,
    ZeroLatency,
)
from repro.scoring.blocking import BlockingReluScorer
from repro.scoring.relu import ReluScorer
from repro.scoring.gbdt import GradientBoostedRegressor, RegressionTree
from repro.scoring.gbdt_scorer import GBDTValuationScorer
from repro.scoring.mlp import MLPClassifier
from repro.scoring.softmax import SoftmaxConfidenceScorer
from repro.scoring.linear import LinearRegressionScorer, LogisticRegressionModel
from repro.scoring.knn import KNNRegressor, KNNScorer

__all__ = [
    "LatencyModel",
    "FixedPerCallLatency",
    "AmortizedBatchLatency",
    "ZeroLatency",
    "Scorer",
    "FunctionScorer",
    "CountingScorer",
    "ReluScorer",
    "BlockingReluScorer",
    "RegressionTree",
    "GradientBoostedRegressor",
    "GBDTValuationScorer",
    "MLPClassifier",
    "SoftmaxConfidenceScorer",
    "LinearRegressionScorer",
    "LogisticRegressionModel",
    "KNNRegressor",
    "KNNScorer",
]
