"""One-hidden-layer softmax MLP classifier, trained with minibatch SGD.

This is the reproduction's stand-in for the paper's pre-trained ResNeXT-64
(Section 5.1.3 (3)): from the query algorithm's perspective, the scorer is
an opaque model emitting per-class softmax confidences.  A small numpy MLP
trained on the synthetic image dataset's held-out split exhibits the same
behaviour that drives the experiment — confidences for any fixed label are
highly skewed, and high-confidence images concentrate in few pixel-space
clusters.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, NotFittedError
from repro.utils.rng import SeedLike, as_generator


def _softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise numerically stable softmax."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


class MLPClassifier:
    """``input -> ReLU hidden -> softmax`` classifier.

    Parameters
    ----------
    hidden:
        Hidden-layer width.
    epochs / batch_size / learning_rate / momentum / weight_decay:
        SGD hyper-parameters.
    rng:
        Seed or generator for init and shuffling.
    """

    def __init__(self, hidden: int = 64, epochs: int = 20,
                 batch_size: int = 64, learning_rate: float = 0.05,
                 momentum: float = 0.9, weight_decay: float = 1e-4,
                 rng: SeedLike = None) -> None:
        if hidden <= 0 or epochs <= 0 or batch_size <= 0:
            raise ConfigurationError("hidden, epochs, batch_size must be positive")
        self.hidden = int(hidden)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.learning_rate = float(learning_rate)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._rng = as_generator(rng)
        self.w1: Optional[np.ndarray] = None
        self.b1: Optional[np.ndarray] = None
        self.w2: Optional[np.ndarray] = None
        self.b2: Optional[np.ndarray] = None
        self.n_classes_: int = 0
        self.train_losses_: list[float] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        """Train on ``(n, d)`` features and ``(n,)`` integer labels."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        if X.ndim != 2 or y.ndim != 1 or len(X) != len(y) or len(X) == 0:
            raise ConfigurationError(
                f"fit expects aligned (n, d) X and (n,) y, got {X.shape}, {y.shape}"
            )
        n, d = X.shape
        self.n_classes_ = int(y.max()) + 1
        scale1 = np.sqrt(2.0 / d)
        scale2 = np.sqrt(2.0 / self.hidden)
        self.w1 = self._rng.normal(0.0, scale1, size=(d, self.hidden))
        self.b1 = np.zeros(self.hidden)
        self.w2 = self._rng.normal(0.0, scale2, size=(self.hidden, self.n_classes_))
        self.b2 = np.zeros(self.n_classes_)
        velocity = [np.zeros_like(p) for p in (self.w1, self.b1, self.w2, self.b2)]
        one_hot = np.zeros((n, self.n_classes_))
        one_hot[np.arange(n), y] = 1.0
        self.train_losses_ = []
        for _epoch in range(self.epochs):
            order = self._rng.permutation(n)
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, n, self.batch_size):
                rows = order[start : start + self.batch_size]
                xb, yb = X[rows], one_hot[rows]
                hidden_pre = xb @ self.w1 + self.b1
                hidden = _relu(hidden_pre)
                probs = _softmax(hidden @ self.w2 + self.b2)
                eps = 1e-12
                epoch_loss += float(
                    -(yb * np.log(probs + eps)).sum() / len(rows)
                )
                n_batches += 1
                # Backpropagation.
                d_logits = (probs - yb) / len(rows)
                grad_w2 = hidden.T @ d_logits + self.weight_decay * self.w2
                grad_b2 = d_logits.sum(axis=0)
                d_hidden = (d_logits @ self.w2.T) * (hidden_pre > 0.0)
                grad_w1 = xb.T @ d_hidden + self.weight_decay * self.w1
                grad_b1 = d_hidden.sum(axis=0)
                params = (self.w1, self.b1, self.w2, self.b2)
                grads = (grad_w1, grad_b1, grad_w2, grad_b2)
                for idx, (param, grad) in enumerate(zip(params, grads)):
                    velocity[idx] = (
                        self.momentum * velocity[idx] - self.learning_rate * grad
                    )
                    param += velocity[idx]
            self.train_losses_.append(epoch_loss / max(1, n_batches))
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """``(n, n_classes)`` softmax confidences."""
        if self.w1 is None:
            raise NotFittedError("MLPClassifier.predict_proba before fit")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        hidden = _relu(X @ self.w1 + self.b1)
        return _softmax(hidden @ self.w2 + self.b2)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most-likely class per row."""
        return np.argmax(self.predict_proba(X), axis=1)

    def accuracy(self, X: np.ndarray, y: np.ndarray) -> float:
        """Top-1 accuracy on a labelled set."""
        return float(np.mean(self.predict(X) == np.asarray(y, dtype=int)))
