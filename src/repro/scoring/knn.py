"""k-nearest-neighbour models as opaque scorers.

A third model family (after trees and neural networks) for the "wide
variety of opaque scoring functions" the paper targets: brute-force k-NN
regression and classification on numpy.  k-NN is a particularly good
stress case for the index heuristic because its score surface is *locally*
smooth but globally irregular — exactly the kind of UDF where cheap
vector-space clustering should correlate with scores without matching them.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, NotFittedError
from repro.scoring.base import LatencyModel, Scorer, ZeroLatency


class KNNRegressor:
    """Distance-weighted k-NN regression (brute force).

    Parameters
    ----------
    n_neighbors:
        Neighbourhood size k.
    weights:
        ``"uniform"`` or ``"distance"`` (inverse-distance weighting).
    """

    def __init__(self, n_neighbors: int = 5, weights: str = "distance") -> None:
        if n_neighbors <= 0:
            raise ConfigurationError(
                f"n_neighbors must be positive, got {n_neighbors!r}"
            )
        if weights not in ("uniform", "distance"):
            raise ConfigurationError(
                f"weights must be 'uniform' or 'distance', got {weights!r}"
            )
        self.n_neighbors = int(n_neighbors)
        self.weights = weights
        self._X: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNNRegressor":
        """Memorize the training set."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or y.ndim != 1 or len(X) != len(y) or len(X) == 0:
            raise ConfigurationError(
                f"fit expects aligned (n, d) X and (n,) y, got {X.shape}, {y.shape}"
            )
        if len(X) < self.n_neighbors:
            raise ConfigurationError(
                f"need at least n_neighbors={self.n_neighbors} training rows"
            )
        self._X = X
        self._y = y
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets for each row of ``X``."""
        if self._X is None or self._y is None:
            raise NotFittedError("KNNRegressor.predict before fit")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        # Squared distances, (n_query, n_train).
        sq = (
            np.sum(X**2, axis=1)[:, np.newaxis]
            - 2.0 * X @ self._X.T
            + np.sum(self._X**2, axis=1)[np.newaxis, :]
        )
        sq = np.maximum(sq, 0.0)
        neighbour_rows = np.argpartition(sq, self.n_neighbors - 1,
                                         axis=1)[:, : self.n_neighbors]
        gathered = self._y[neighbour_rows]
        if self.weights == "uniform":
            return gathered.mean(axis=1)
        dists = np.sqrt(np.take_along_axis(sq, neighbour_rows, axis=1))
        inv = 1.0 / np.maximum(dists, 1e-12)
        return (gathered * inv).sum(axis=1) / inv.sum(axis=1)


class KNNScorer(Scorer):
    """A fitted :class:`KNNRegressor` behind the opaque-UDF interface.

    ``transform`` adapts raw elements to feature vectors (default:
    ``np.asarray``); predictions are clamped at zero (opaque top-k scores
    are non-negative).
    """

    def __init__(self, model: KNNRegressor,
                 transform=None,
                 latency: LatencyModel | None = None) -> None:
        self.model = model
        self.transform = transform or (lambda obj: np.asarray(obj, dtype=float))
        self.latency = latency or ZeroLatency()

    def score(self, obj: Any) -> float:
        features = self.transform(obj).ravel().reshape(1, -1)
        return float(max(0.0, self.model.predict(features)[0]))

    def score_batch(self, objects: Sequence[Any]) -> np.ndarray:
        matrix = np.stack([self.transform(obj).ravel() for obj in objects])
        return np.maximum(self.model.predict(matrix), 0.0)
