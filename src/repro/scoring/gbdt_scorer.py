"""Valuation scorer: a trained GBDT behind the opaque-UDF interface.

Reproduces the paper's tabular workload (Section 5.3): "we train a
regression model to predict a listing's price ... The train split is
disjoint from the split used for indexing and query evaluation.  We use a
batch size of 1 on CPU for inference" at roughly 2 ms per call.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

import numpy as np

from repro.data.usedcars import FEATURE_COLUMNS, TARGET_COLUMN
from repro.index.vectorize import TabularVectorizer
from repro.scoring.base import FixedPerCallLatency, LatencyModel, Scorer
from repro.scoring.gbdt import GradientBoostedRegressor
from repro.utils.rng import SeedLike


class GBDTValuationScorer(Scorer):
    """Predicted-price scorer over used-car listing rows.

    Parameters
    ----------
    model:
        A fitted :class:`GradientBoostedRegressor`.
    vectorizer:
        The cleaning pipeline (fit on the *training* rows) mapping raw rows
        to model features.
    latency:
        Cost model (default: the paper's 2 ms/call CPU inference).
    """

    def __init__(self, model: GradientBoostedRegressor,
                 vectorizer: TabularVectorizer,
                 latency: LatencyModel | None = None) -> None:
        self.model = model
        self.vectorizer = vectorizer
        self.latency = latency or FixedPerCallLatency(2e-3)

    @classmethod
    def train(cls, training_rows: Sequence[Dict[str, Any]],
              n_estimators: int = 60, learning_rate: float = 0.1,
              max_depth: int = 4, rng: SeedLike = None,
              latency: LatencyModel | None = None) -> "GBDTValuationScorer":
        """Fit the cleaning pipeline and the boosted model on training rows."""
        vectorizer = TabularVectorizer(list(FEATURE_COLUMNS))
        X = vectorizer.fit_transform(training_rows)
        y = np.asarray([row[TARGET_COLUMN] for row in training_rows],
                       dtype=float)
        model = GradientBoostedRegressor(
            n_estimators=n_estimators,
            learning_rate=learning_rate,
            max_depth=max_depth,
            min_samples_leaf=20,
            rng=rng,
        )
        model.fit(X, y)
        return cls(model, vectorizer, latency=latency)

    def score(self, obj: Dict[str, Any]) -> float:
        features = self.vectorizer.transform([obj])
        return float(max(0.0, self.model.predict(features)[0]))

    def score_batch(self, objects: Sequence[Dict[str, Any]]) -> np.ndarray:
        features = self.vectorizer.transform(list(objects))
        return np.maximum(self.model.predict(features), 0.0)
