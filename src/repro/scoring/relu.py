"""ReLU scorer for the synthetic workload (Section 5.1.3 (1)).

"The scoring function for synthetic data is the simple ReLU function,
``f(x) = max(0, x)``, to ensure non-negativity."
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.scoring.base import LatencyModel, Scorer, ZeroLatency


class ReluScorer(Scorer):
    """``f(x) = max(0, x)`` over scalar elements."""

    def __init__(self, latency: LatencyModel | None = None) -> None:
        self.latency = latency or ZeroLatency()

    def score(self, obj: Any) -> float:
        return max(0.0, float(obj))

    def score_batch(self, objects: Sequence[Any]) -> np.ndarray:
        return np.maximum(np.asarray(objects, dtype=float), 0.0)
