"""Known-distribution oracles — the algorithm classes of Figure 2.

The paper situates its bandit among three classes (Section 1.2, Section 4):

* **Offline optimal** — the best-case scan when the insertion order is
  ideal (:func:`offline_optimal_curve`).
* **Adaptive** — changes behaviour based on sample realizations; with known
  distributions, adaptive greedy picks ``argmax_l E[Delta_{t,l}]`` each
  iteration and achieves ``(1 - 1/e)``-approximation (Corollary 4.3,
  :func:`adaptive_greedy_known`).
* **Non-adaptive** — commits to a budget allocation up front; the greedy
  allocation maximizes the ``BS`` objective of Section 4.1 via Monte-Carlo
  marginal-value estimates (:func:`nonadaptive_greedy_allocation`).

These oracles operate directly on :class:`~repro.core.discrete.DiscreteArm`
distributions — no dataset needed — and back both Figure 2 and the
Theorem 4.4 regret-sanity benchmark.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.discrete import DiscreteArm
from repro.core.minmax_heap import TopKBuffer
from repro.core.stk import stk
from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, as_generator


def offline_optimal_curve(arms: Sequence[DiscreteArm], k: int, budget: int,
                          rng: SeedLike = None) -> np.ndarray:
    """Upper-bound STK-vs-iteration curve of the ideal-insertion-order scan.

    Realizes a full i.i.d. tape of ``budget`` draws *per arm* (the most any
    algorithm with total budget T could ever read from one arm), pools all
    tapes, and inserts the pooled values in descending order.  Any online or
    adaptive algorithm reading prefixes of the same tapes is dominated by
    this curve pointwise, so it plays the role of ScanBest in Figure 2.
    """
    generator = as_generator(rng)
    per_arm = max(1, budget)
    realized: List[float] = []
    for arm in arms:
        realized.extend(
            float(value)
            for value in generator.choice(arm.support, size=per_arm,
                                          p=arm.probabilities)
        )
    realized.sort(reverse=True)
    realized = realized[:budget]
    curve = np.empty(len(realized), dtype=float)
    buffer: TopKBuffer[None] = TopKBuffer(k)
    for i, value in enumerate(realized):
        buffer.offer(value)
        curve[i] = buffer.stk
    return curve


def adaptive_greedy_known(arms: Sequence[DiscreteArm], k: int, budget: int,
                          rng: SeedLike = None) -> np.ndarray:
    """STK trajectory of adaptive greedy with fully known distributions.

    Each iteration evaluates the *exact* expected marginal gain of every arm
    against the current threshold and samples the argmax — the
    ``(1 - 1/e)``-approximate algorithm of Corollary 4.3.
    """
    if not arms:
        raise ConfigurationError("need at least one arm")
    generator = as_generator(rng)
    buffer: TopKBuffer[str] = TopKBuffer(k)
    curve = np.empty(budget, dtype=float)
    for t in range(budget):
        threshold = buffer.threshold
        gains = [arm.exact_marginal_gain(threshold) for arm in arms]
        best = int(np.argmax(gains))
        value = arms[best].sample(generator)
        buffer.offer(float(value), arms[best].arm_id)
        curve[t] = buffer.stk
    return curve


def simulate_allocation(arms: Sequence[DiscreteArm], allocation: Sequence[int],
                        k: int, rng: SeedLike = None) -> float:
    """One Monte-Carlo realization of ``STK(S_r)`` for a budget allocation.

    Implements Procedure 4.1: sample arm ``l`` exactly ``allocation[l]``
    times, pool all scores, return the STK of the pool.
    """
    if len(allocation) != len(arms):
        raise ConfigurationError("allocation length must match arm count")
    generator = as_generator(rng)
    pool: List[float] = []
    for arm, count in zip(arms, allocation):
        if count < 0:
            raise ConfigurationError("allocation entries must be non-negative")
        if count:
            pool.extend(
                float(v)
                for v in generator.choice(arm.support, size=count,
                                          p=arm.probabilities)
            )
    return stk(pool, k)


def estimate_bs(arms: Sequence[DiscreteArm], allocation: Sequence[int], k: int,
                n_simulations: int = 64, rng: SeedLike = None) -> float:
    """Monte-Carlo estimate of ``BS(X) = E[STK(S_r)]`` (Equation 11)."""
    generator = as_generator(rng)
    values = [
        simulate_allocation(arms, allocation, k, generator)
        for _ in range(n_simulations)
    ]
    return float(np.mean(values))


def nonadaptive_greedy_allocation(arms: Sequence[DiscreteArm], k: int,
                                  budget: int, n_simulations: int = 64,
                                  rng: SeedLike = None) -> List[int]:
    """Greedy non-adaptive budget allocation maximizing estimated ``BS``.

    Because ``BS`` is monotone DR-submodular (Theorem 4.2), greedily adding
    one unit of budget to the arm with the largest estimated marginal value
    is a principled non-adaptive strategy.  Marginal values are estimated by
    Monte-Carlo (the paper notes a first-principles computation "incurs too
    much overhead" — this is the practical estimator).
    """
    generator = as_generator(rng)
    allocation = [0] * len(arms)
    current_value = 0.0
    for _unit in range(budget):
        best_arm = -1
        best_value = -np.inf
        for index in range(len(arms)):
            allocation[index] += 1
            value = estimate_bs(arms, allocation, k, n_simulations, generator)
            allocation[index] -= 1
            if value > best_value:
                best_value = value
                best_arm = index
        allocation[best_arm] += 1
        current_value = best_value
    return allocation
