"""UCB baseline (Section 5.1.1 (2)).

"A standard upper confidence bound (UCB) bandit algorithm combined with the
index of Section 3.2.2.  We set the exploration parameter as 1.0 and
initialize the mean using query-specific prior knowledge."

UCB1 runs over each layer of the same tree index, but its statistic is the
*mean* observed score — exactly the mismatch the paper analyzes: maximizing
expected per-sample reward favours high-mean/low-variance arms, which stops
improving the running top-k once the threshold passes those means.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.baselines.base import SamplingAlgorithm
from repro.core.arms import ArmState
from repro.errors import ExhaustedError
from repro.index.tree import ClusterNode, ClusterTree
from repro.utils.rng import RngFactory, SeedLike


class _UCBNode:
    """Mirror node carrying running mean/visit statistics.

    ``remaining`` is an incremental counter maintained through the arm's
    ``on_draw`` hook (same scheme as the engine's bandit nodes), so the
    per-layer candidate filter and the exhaustion check are O(1) per node.
    """

    __slots__ = ("node_id", "parent", "children", "arm", "visits", "mean",
                 "remaining")

    def __init__(self, node_id: str, parent: Optional["_UCBNode"]) -> None:
        self.node_id = node_id
        self.parent = parent
        self.children: List["_UCBNode"] = []
        self.arm: Optional[ArmState] = None
        self.visits = 0
        self.mean = 0.0
        self.remaining = 0

    @property
    def is_leaf(self) -> bool:
        return self.arm is not None

    def note_drawn(self, n: int) -> None:
        node: Optional[_UCBNode] = self
        while node is not None:
            node.remaining -= n
            node = node.parent


class UCBBandit(SamplingAlgorithm):
    """UCB1 per tree layer with prior-initialized means.

    Parameters
    ----------
    index:
        The same cluster tree the engine uses.
    exploration:
        UCB exploration constant ``c`` (paper: 1.0).
    prior_mean:
        Query-specific prior used as each node's mean before any visit.
    """

    name = "UCB"

    def __init__(self, index: ClusterTree, batch_size: int = 1,
                 exploration: float = 1.0, prior_mean: float = 0.0,
                 rng: SeedLike = None) -> None:
        factory = RngFactory(rng)
        self._rng = factory.named("ucb")
        self.exploration = float(exploration)
        self.prior_mean = float(prior_mean)
        self.batch_size = max(1, int(batch_size))
        self.root = self._mirror(index.root, None, factory)
        self._pending_leaf: Optional[_UCBNode] = None
        self.t = 0

    def _mirror(self, cluster: ClusterNode, parent: Optional[_UCBNode],
                factory: RngFactory) -> _UCBNode:
        node = _UCBNode(cluster.node_id, parent)
        node.mean = self.prior_mean
        if cluster.is_leaf:
            node.arm = ArmState(cluster.node_id, cluster.member_ids,
                                rng=factory.named(f"arm:{cluster.node_id}"))
            node.arm.on_draw = node.note_drawn
            node.remaining = node.arm.remaining
        else:
            node.children = [
                self._mirror(child, node, factory) for child in cluster.children
            ]
            node.remaining = sum(child.remaining for child in node.children)
        return node

    # -- selection ---------------------------------------------------------------

    def _ucb_value(self, node: _UCBNode, parent_visits: int) -> float:
        if node.visits == 0:
            return math.inf
        bonus = self.exploration * math.sqrt(
            2.0 * math.log(max(parent_visits, 2)) / node.visits
        )
        return node.mean + bonus

    def _select_child(self, node: _UCBNode) -> _UCBNode:
        candidates = [child for child in node.children if child.remaining > 0]
        if not candidates:
            raise ExhaustedError(f"UCB node {node.node_id!r} has no children")
        parent_visits = max(node.visits, 1)
        values = [self._ucb_value(child, parent_visits) for child in candidates]
        best = max(values)
        tied = [child for child, value in zip(candidates, values)
                if value >= best - 1e-15]
        if len(tied) == 1:
            return tied[0]
        return tied[int(self._rng.integers(len(tied)))]

    def next_batch(self) -> List[str]:
        if self.exhausted:
            raise ExhaustedError("UCB exhausted")
        self.t += 1
        node = self.root
        while not node.is_leaf:
            node = self._select_child(node)
        assert node.arm is not None
        batch = node.arm.draw_batch(self.batch_size)
        self._pending_leaf = node
        return batch

    def observe(self, ids: Sequence[str], scores: Sequence[float]) -> None:
        leaf = self._pending_leaf
        self._pending_leaf = None
        if leaf is None:
            return
        for score in scores:
            node: Optional[_UCBNode] = leaf
            while node is not None:
                node.visits += 1
                node.mean += (float(score) - node.mean) / node.visits
                node = node.parent
        if leaf.arm is not None and leaf.arm.is_empty:
            self._drop(leaf)

    def _drop(self, leaf: _UCBNode) -> None:
        node = leaf
        while node.parent is not None:
            parent = node.parent
            parent.children = [c for c in parent.children if c is not node]
            if parent.children or parent.parent is None:
                break
            node = parent

    @property
    def exhausted(self) -> bool:
        return self.root.remaining == 0
