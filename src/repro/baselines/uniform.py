"""UniformSample baseline (Section 5.1.1 (4)).

"Uniform sampling over the entire search domain, implemented via
pre-shuffling of the data, then performing a sequential scan.
UniformSample represents the average case result of Scan, as there is no
additional run-time overhead."
"""

from __future__ import annotations

from typing import List, Sequence

from repro.baselines.base import SamplingAlgorithm
from repro.errors import ExhaustedError
from repro.utils.rng import SeedLike, as_generator


class UniformSample(SamplingAlgorithm):
    """Pre-shuffled sequential scan."""

    name = "UniformSample"

    def __init__(self, ids: Sequence[str], batch_size: int = 1,
                 rng: SeedLike = None) -> None:
        self._queue: List[str] = list(ids)
        as_generator(rng).shuffle(self._queue)
        self._cursor = 0
        self.batch_size = max(1, int(batch_size))

    def next_batch(self) -> List[str]:
        if self._cursor >= len(self._queue):
            raise ExhaustedError("UniformSample exhausted")
        batch = self._queue[self._cursor : self._cursor + self.batch_size]
        self._cursor += len(batch)
        return batch

    def observe(self, ids: Sequence[str], scores: Sequence[float]) -> None:
        # A pre-shuffled scan has no adaptive state to update.
        return None

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self._queue)
