"""Scan baselines (Section 5.1.1 (5) and (6)).

* :class:`ScanBest` / :class:`ScanWorst` — "scan over the domain where the
  elements are sorted in the best-case or worst-case order.  This is meant
  to demonstrate theoretical limits."  They require ground-truth scores and
  exist purely as bounds.
* :class:`SortedScan` — "scan over an in-memory sorted index built on a new
  column that contains pre-computed UDF function values.  SortedScan skips
  scoring function evaluation and priority queue maintenance."  Its UDF cost
  is paid entirely at index-construction time.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.baselines.base import SamplingAlgorithm
from repro.errors import ConfigurationError, ExhaustedError


class _OrderedScan(SamplingAlgorithm):
    """Sequential scan over a fixed element order."""

    def __init__(self, ordered_ids: Sequence[str], batch_size: int = 1) -> None:
        self._queue = list(ordered_ids)
        self._cursor = 0
        self.batch_size = max(1, int(batch_size))

    def next_batch(self) -> List[str]:
        if self._cursor >= len(self._queue):
            raise ExhaustedError(f"{self.name} exhausted")
        batch = self._queue[self._cursor : self._cursor + self.batch_size]
        self._cursor += len(batch)
        return batch

    def observe(self, ids: Sequence[str], scores: Sequence[float]) -> None:
        return None

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self._queue)


def _order_by_score(ids: Sequence[str], scores_by_id: Dict[str, float],
                    descending: bool) -> List[str]:
    missing = [element_id for element_id in ids if element_id not in scores_by_id]
    if missing:
        raise ConfigurationError(
            f"scores missing for {len(missing)} ids (e.g. {missing[0]!r})"
        )
    return sorted(ids, key=lambda element_id: scores_by_id[element_id],
                  reverse=descending)


class ScanBest(_OrderedScan):
    """Theoretical best-case scan: elements visited in descending true score."""

    name = "ScanBest"

    def __init__(self, ids: Sequence[str], scores_by_id: Dict[str, float],
                 batch_size: int = 1) -> None:
        super().__init__(_order_by_score(ids, scores_by_id, descending=True),
                         batch_size)


class ScanWorst(_OrderedScan):
    """Theoretical worst-case scan: elements visited in ascending true score."""

    name = "ScanWorst"

    def __init__(self, ids: Sequence[str], scores_by_id: Dict[str, float],
                 batch_size: int = 1) -> None:
        super().__init__(_order_by_score(ids, scores_by_id, descending=False),
                         batch_size)


class SortedScan(_OrderedScan):
    """Scan of a pre-computed sorted score index.

    All UDF evaluations happen at *index construction* (``precompute_cost``
    seconds, charged by the harness to the build phase); query-time batches
    are free, so ``charges_scoring`` is False.
    """

    name = "SortedScan"
    charges_scoring = False

    def __init__(self, ids: Sequence[str], scores_by_id: Dict[str, float],
                 batch_size: int = 1, precompute_cost: float = 0.0) -> None:
        super().__init__(_order_by_score(ids, scores_by_id, descending=True),
                         batch_size)
        self.precompute_cost = float(precompute_cost)
