"""Baseline query-execution algorithms from Section 5.1.1 of the paper,
plus the known-distribution oracles used in the Section 4 analysis and
Figure 2: UCB over the same tree index, ExplorationOnly, UniformSample,
ScanBest / ScanWorst, SortedScan, adaptive greedy with known distributions,
and non-adaptive budget allocation.  All sample without replacement and
speak the same pull interface as the engine, so the experiment harness
treats every algorithm identically.
"""

from repro.baselines.base import EngineAlgorithm, SamplingAlgorithm
from repro.baselines.uniform import UniformSample
from repro.baselines.exploration_only import ExplorationOnly
from repro.baselines.ucb import UCBBandit
from repro.baselines.scan import ScanBest, ScanWorst, SortedScan
from repro.baselines.oracle import (
    adaptive_greedy_known,
    nonadaptive_greedy_allocation,
    offline_optimal_curve,
    simulate_allocation,
)

__all__ = [
    "SamplingAlgorithm",
    "EngineAlgorithm",
    "UniformSample",
    "ExplorationOnly",
    "UCBBandit",
    "ScanBest",
    "ScanWorst",
    "SortedScan",
    "adaptive_greedy_known",
    "nonadaptive_greedy_allocation",
    "offline_optimal_curve",
    "simulate_allocation",
]
