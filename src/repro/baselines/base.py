"""Uniform pull interface for every query-execution algorithm.

The experiment runner drives each algorithm through the same loop:
``next_batch() -> fetch -> score -> observe(ids, scores)``, charging
scoring latency to a virtual clock and measuring algorithm overhead for
real.  Both the paper's baselines and the engine speak this protocol.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Sequence


class SamplingAlgorithm(ABC):
    """One approximate top-k execution strategy."""

    #: Display name used in reports.
    name: str = "algorithm"

    #: False for algorithms that skip scoring at query time (SortedScan);
    #: the runner then charges no scoring latency for their batches.
    charges_scoring: bool = True

    @abstractmethod
    def next_batch(self) -> List[str]:
        """IDs of the next elements to score (raises ExhaustedError if none)."""

    @abstractmethod
    def observe(self, ids: Sequence[str], scores: Sequence[float]) -> None:
        """Report the scores for the batch just returned by next_batch."""

    @property
    @abstractmethod
    def exhausted(self) -> bool:
        """True once the algorithm has nothing left to propose."""


class EngineAlgorithm(SamplingAlgorithm):
    """Adapter presenting :class:`~repro.core.engine.TopKEngine` as a baseline.

    The engine already exposes ``next_batch`` / ``observe``; this wrapper
    only adds the common ``name`` / ``exhausted`` surface and keeps the
    engine's scoring-latency hint in sync with the harness's scorer.
    """

    def __init__(self, engine, name: str = "Ours",
                 scoring_latency: float | None = None) -> None:
        self.engine = engine
        self.name = name
        if scoring_latency is not None:
            engine.scoring_latency_hint = float(scoring_latency)

    def next_batch(self) -> List[str]:
        return self.engine.next_batch()

    def observe(self, ids: Sequence[str], scores: Sequence[float]) -> None:
        self.engine.observe(ids, scores)

    @property
    def exhausted(self) -> bool:
        return self.engine.exhausted
