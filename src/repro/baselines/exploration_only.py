"""ExplorationOnly baseline (Section 5.1.1 (3)).

"A bandit which chooses a uniformly random non-empty child in each layer of
the index."  Note this is *not* uniform over elements: shallow leaves and
low-fanout subtrees are over-sampled, which is exactly why it sometimes
shines on the UsedCars workload (Section 5.3's analysis).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.baselines.base import SamplingAlgorithm
from repro.core.bandit import BanditConfig
from repro.core.hierarchical import BanditNode, HierarchicalBanditPolicy
from repro.errors import ExhaustedError
from repro.index.tree import ClusterTree
from repro.utils.rng import SeedLike


class ExplorationOnly(SamplingAlgorithm):
    """Uniform-random root-to-leaf descent over the tree index."""

    name = "ExplorationOnly"

    def __init__(self, index: ClusterTree, batch_size: int = 1,
                 rng: SeedLike = None) -> None:
        # Reuse the hierarchical policy with a permanent epsilon of 1.0; its
        # histograms are never consulted, so updates are skipped entirely.
        # Draws through leaf arms keep the policy's incremental remaining
        # counters fresh (arm on_draw hook), so exhaustion checks are O(1).
        self._policy = HierarchicalBanditPolicy(
            index, BanditConfig(), rng=rng, enable_subtraction=False
        )
        self.batch_size = max(1, int(batch_size))
        self._pending_leaf: BanditNode | None = None

    def next_batch(self) -> List[str]:
        if self._policy.exhausted:
            raise ExhaustedError("ExplorationOnly exhausted")
        leaf = self._policy.select_leaf(threshold=None, epsilon=1.0)
        assert leaf.arm is not None
        batch = leaf.arm.draw_batch(self.batch_size)
        self._pending_leaf = leaf
        return batch

    def observe(self, ids: Sequence[str], scores: Sequence[float]) -> None:
        leaf = self._pending_leaf
        self._pending_leaf = None
        if leaf is not None and leaf.arm is not None and leaf.arm.is_empty:
            self._policy.handle_exhausted(leaf)

    @property
    def exhausted(self) -> bool:
        return self._policy.exhausted
