"""Command-line interface: ``python -m repro <command>``.

Three commands, mirroring how the library is used (full walkthrough in
``docs/quickstart.md``; dialect reference in ``docs/dialect.md``):

* ``demo``    — run the quickstart scenario end to end and print the
  quality report.  Configurable dataset size / k / budget / seed, plus
  ``--workers N`` / ``--backend <name>`` to run the same scenario sharded
  across parallel workers (see :mod:`repro.parallel`); ``--stream`` /
  ``--every N`` / ``--confidence P`` to run it barrier-free with live
  progressive output and the confidence-bounded early stop (see
  :mod:`repro.streaming`); and ``--record-trace`` / ``--replay-trace`` to
  record a real run's arrival order and re-execute it deterministically
  (see :mod:`repro.replay`).
* ``query``   — execute one SQL-ish opaque top-k query (see
  :mod:`repro.session` and :mod:`repro.query`) against a generated demo
  table.  ``--live`` registers the table as a mutable
  :class:`repro.live.LiveTable`; ``--append N`` (implies ``--live``)
  appends N fresh rows after the first run and re-runs the same query,
  showing the incrementally maintained index and the memo serving every
  unchanged element.  Every run ends with the table's card — rows,
  ``table_version``, and index freshness (``static`` / ``built`` /
  ``incremental`` / ``rebuilt``) — from
  :meth:`repro.session.OpaqueQuerySession.table_info`.  Standing
  ``CONTINUOUS`` queries are subscriptions and are redirected to
  :class:`repro.live.ContinuousQuery` / the service with a clean error.  The dialect's ``WORKERS <w>`` / ``BACKEND <b>`` and
  ``STREAM`` / ``EVERY <n>`` / ``CONFIDENCE <p>`` clauses — or the
  equivalent ``--workers`` / ``--backend`` / ``--stream`` / ``--every``
  / ``--confidence`` flags — select the execution mode; an explicit
  clause in the SQL wins over the flags.  ``WHERE feature[i] ...``
  pushes a feature filter down into the index; ``EXPLAIN <query>`` (or
  ``--explain``) prints the resolved execution plan instead of running
  it, and ``EXPLAIN ANALYZE <query>`` runs it and prints the measured
  span tree next to the plan (see :mod:`repro.obs`); ``--trace-out
  FILE`` saves any run's span tree as Chrome trace-event JSON.
  Malformed queries fail with the offending column and a caret span
  under the query text.
* ``serve``   — start the multi-tenant query service
  (:mod:`repro.service`) on the same generated demo table, speaking the
  newline-delimited-JSON line protocol over TCP.  ``--budget N`` meters
  a global scorer budget across concurrent clients under ``--policy``
  (fair-share or deadline); talk to it with
  :class:`repro.service.ServiceClient` or plain ``netcat``.
* ``info``    — print version, module inventory, the experiment index,
  the available execution backends, and the registered metrics.

Backend names are introspected from the :mod:`repro.parallel` /
:mod:`repro.streaming` registries (one shared vocabulary), never
hard-coded here; the ``replay`` backend is trace-driven and therefore
reached through ``--replay-trace`` rather than ``--backend``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _backend_choices() -> List[str]:
    """The shared backend vocabulary, introspected from the registries."""
    from repro.parallel import available_backends

    return available_backends()


def _policy_choices() -> List[str]:
    """Admission-policy vocabulary, introspected from the service."""
    from repro.service.budget import POLICIES

    return list(POLICIES)


def _add_stream_flags(command: argparse.ArgumentParser) -> None:
    command.add_argument("--stream", action="store_true",
                         help="execute barrier-free with live progressive "
                              "output (merge on arrival)")
    command.add_argument("--every", type=int, default=None,
                         help="progressive snapshot granularity in scored "
                              "elements (implies --stream)")
    command.add_argument("--confidence", type=float, default=None,
                         metavar="P",
                         help="stop early once the displacement bound "
                              "certifies the top-k at this confidence "
                              "level, e.g. 0.95 (implies --stream)")


def _build_parser() -> argparse.ArgumentParser:
    backends = _backend_choices()
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Approximate opaque top-k queries "
                    "(SIGMOD 2025 reproduction); guides in docs/, "
                    "dialect reference in docs/dialect.md.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser(
        "demo",
        help="run the quickstart scenario (sharded: --workers; streaming: "
             "--stream/--every/--confidence; audit: --record-trace / "
             "--replay-trace)",
    )
    demo.add_argument("--clusters", type=int, default=20)
    demo.add_argument("--per-cluster", type=int, default=500)
    demo.add_argument("--k", type=int, default=100)
    demo.add_argument("--budget-fraction", type=float, default=0.25)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--workers", type=int, default=1,
                      help="shard the query across this many workers "
                           "(default 1: single engine)")
    demo.add_argument("--backend", default="serial", choices=backends,
                      help="execution backend for --workers > 1 or "
                           "--stream; registry-driven choices "
                           "(default serial)")
    _add_stream_flags(demo)
    trace_flags = demo.add_mutually_exclusive_group()
    trace_flags.add_argument("--record-trace", metavar="PATH", default=None,
                             help="record the streaming run's arrival "
                                  "order to this JSON file (implies "
                                  "--stream); replay it later with "
                                  "--replay-trace and the same flags")
    trace_flags.add_argument("--replay-trace", metavar="PATH", default=None,
                             help="re-execute a recorded arrival trace "
                                  "deterministically on the replay backend "
                                  "(requires the same dataset flags as the "
                                  "recorded run)")

    query = sub.add_parser(
        "query",
        help="run one SQL-ish query on a demo table (supports the "
             "WHERE/EXPLAIN, WORKERS/BACKEND, and STREAM/EVERY/"
             "CONFIDENCE clauses and the equivalent flags)",
    )
    query.add_argument("sql", help='e.g. "SELECT TOP 50 FROM demo ORDER BY '
                                   'relu WHERE feature[0] > 0.5 '
                                   'BUDGET 20%% WORKERS 4 STREAM '
                                   'CONFIDENCE 0.95"')
    query.add_argument("--explain", action="store_true",
                       help="print the resolved execution plan instead of "
                            "running the query (same as prefixing the SQL "
                            "with EXPLAIN; prefix EXPLAIN ANALYZE to also "
                            "run it and print the measured span tree)")
    query.add_argument("--trace-out", metavar="FILE", default=None,
                       help="run with tracing on and write the span tree "
                            "as Chrome trace-event JSON (loadable in "
                            "chrome://tracing or Perfetto)")
    query.add_argument("--rows", type=int, default=5_000)
    query.add_argument("--seed", type=int, default=0)
    query.add_argument("--workers", type=int, default=None,
                       help="default worker count when the query has no "
                            "WORKERS clause")
    query.add_argument("--backend", default=None, choices=backends,
                       help="default backend when the query has no "
                            "BACKEND clause; registry-driven choices")
    query.add_argument("--live", action="store_true",
                       help="register the demo table as a mutable "
                            "LiveTable (versioned writes, incrementally "
                            "maintained index; see docs/live.md)")
    query.add_argument("--append", type=int, default=0, metavar="N",
                       help="append N fresh demo rows after the first run "
                            "and re-run the same query (implies --live); "
                            "the re-run scores only the appended rows — "
                            "every unchanged element comes from the memo")
    query.add_argument("--no-cache", action="store_true",
                       help="disable the cross-query score memo for this "
                            "query (warm answers are bit-identical to "
                            "cold ones; this flag only forces re-paying "
                            "the UDF calls)")
    _add_stream_flags(query)

    serve = sub.add_parser(
        "serve",
        help="serve the demo table to concurrent clients over the "
             "line protocol (repro.service; one JSON request line per "
             "connection, snapshots + result lines back)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7654,
                       help="TCP port (0 picks a free one; default 7654)")
    serve.add_argument("--rows", type=int, default=5_000)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--budget", type=int, default=None,
                       help="global scorer budget shared by every query "
                            "the service admits (default: unmetered)")
    serve.add_argument("--policy", default="fair-share",
                       choices=_policy_choices(),
                       help="admission policy under budget contention")

    sub.add_parser("info",
                   help="print version, inventory, and execution backends")
    return parser


def _print_progressive(snapshot) -> None:
    """One live line per progressive snapshot (ProgressiveResult.summary)."""
    print(f"  {snapshot.summary()}")


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import EngineConfig, FixedPerCallLatency, ReluScorer, TopKEngine
    from repro.data.synthetic import SyntheticClustersDataset
    from repro.experiments.ground_truth import compute_ground_truth
    from repro.experiments.metrics import precision_at_k

    dataset = SyntheticClustersDataset.generate(
        n_clusters=args.clusters, per_cluster=args.per_cluster, rng=args.seed
    )
    scorer = ReluScorer(FixedPerCallLatency(1e-3))
    budget = max(args.k, int(args.budget_fraction * len(dataset)))
    truth = compute_ground_truth(dataset, scorer)
    optimal = truth.optimal_stk(args.k)
    streaming_mode = (args.stream or args.every is not None
                      or args.confidence is not None
                      or args.record_trace is not None
                      or args.replay_trace is not None)
    if args.replay_trace is not None:
        from repro.replay import ArrivalTrace, replay_engine

        trace = ArrivalTrace.load(args.replay_trace)
        if trace.k != args.k:
            # The engine takes k from the trace; report with the same k so
            # "STK fraction of optimal" / precision stay meaningful.
            print(f"note: trace was recorded with k={trace.k}; "
                  f"reporting at that k (not --k {args.k})")
            args.k = trace.k
        optimal = truth.optimal_stk(args.k)
        print(f"replaying {trace.summary()}")
        with replay_engine(dataset, scorer, trace) as streaming:
            for drive in trace.drives:
                for snapshot in streaming.results_iter(
                        int(drive["budget"]), every=drive.get("every")):
                    _print_progressive(snapshot)
            result = streaming.result()
        print(result.summary())
        print(f"backend: {result.backend} (recorded on {trace.backend}), "
              f"{len(result.workers)} workers, {result.n_merges} merges")
    elif streaming_mode:
        from repro.streaming import StreamingTopKEngine

        with StreamingTopKEngine(dataset, scorer, k=args.k,
                                 n_workers=max(1, args.workers),
                                 backend=args.backend,
                                 confidence=args.confidence,
                                 record=args.record_trace is not None,
                                 seed=args.seed) as streaming:
            for snapshot in streaming.results_iter(budget, every=args.every):
                _print_progressive(snapshot)
            result = streaming.result()
            if args.record_trace is not None:
                path = streaming.trace().save(args.record_trace)
                print(f"recorded arrival trace -> {path}")
        print(result.summary())
        print(f"backend: {result.backend}, "
              f"{len(result.workers)} workers, "
              f"{result.n_merges} merges")
    elif args.workers > 1:
        from repro.parallel import ShardedTopKEngine

        with ShardedTopKEngine(dataset, scorer, k=args.k,
                               n_workers=args.workers,
                               backend=args.backend,
                               seed=args.seed) as sharded:
            result = sharded.run(budget)
        print(result.summary())
        print(f"backend: {result.backend}, "
              f"{len(result.workers)} workers, "
              f"{result.n_rounds} sync rounds")
    else:
        index = dataset.true_index()
        engine = TopKEngine(index, EngineConfig(k=args.k, seed=args.seed))
        result = engine.run(dataset, scorer, budget=budget)
        print(result.summary())
    print(f"STK fraction of optimal: {result.stk / optimal:.1%}")
    print(f"Precision@{args.k}: "
          f"{precision_at_k(result.ids, truth, args.k):.1%}")
    n_scored = (result.total_scored
                if streaming_mode or args.workers > 1
                else result.n_scored)
    print(f"UDF calls: {n_scored:,} of {len(dataset):,} "
          f"({n_scored / len(dataset):.0%})")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro import parse_query

    live_mode = args.live or args.append > 0
    session = _demo_session(args.rows, args.seed, live=live_mode)
    sql = args.sql
    explain_mode = args.explain
    streaming_mode = (args.stream or args.every is not None
                      or args.confidence is not None)
    try:
        parsed = parse_query(sql)
    except Exception:
        parsed = None  # let execute() raise the clean parse error below
    if parsed is not None:
        explain_mode = explain_mode or parsed.explain
        streaming_mode = streaming_mode or parsed.stream
    use_cache = False if args.no_cache else None
    if parsed is not None and parsed.analyze:
        # EXPLAIN ANALYZE: run under a forced tracer and print the
        # plan's estimates above the measured span tree.
        report = session.execute(sql, workers=args.workers,
                                 backend=args.backend,
                                 stream=args.stream or None,
                                 every=args.every,
                                 confidence=args.confidence,
                                 use_cache=use_cache)
        print(report.render())
        _write_trace_out(args.trace_out, session)
        return 0
    if explain_mode:
        if parsed is not None and not parsed.explain:
            sql = f"EXPLAIN {sql}"
        plan = session.execute(sql, workers=args.workers,
                               backend=args.backend,
                               stream=args.stream or None,
                               every=args.every,
                               confidence=args.confidence,
                               use_cache=use_cache)
        print(plan.explain())
        return 0
    trace = args.trace_out is not None

    def run_query() -> None:
        if streaming_mode:
            snapshot = None
            for snapshot in session.stream(args.sql, workers=args.workers,
                                           backend=args.backend,
                                           every=args.every,
                                           confidence=args.confidence,
                                           use_cache=use_cache,
                                           trace=trace):
                _print_progressive(snapshot)
            items = snapshot.top_k if snapshot is not None else []
        else:
            result = session.execute(args.sql, workers=args.workers,
                                     backend=args.backend,
                                     use_cache=use_cache,
                                     trace=trace)
            print(result.summary())
            items = result.items
        for element_id, score in items[:10]:
            print(f"  {element_id}\t{score:.4f}")
        if len(items) > 10:
            print(f"  ... {len(items) - 10} more rows")
        if not args.no_cache:
            stats = session.cache_stats("demo")
            print(f"cache: {stats['hits']} hits / {stats['misses']} misses, "
                  f"{stats['entries']} scores memoized")

    run_query()
    if args.append > 0:
        _append_demo_rows(session, args.append, args.seed)
        print(f"\nappended {args.append} rows; re-running (the memo keeps "
              "every pre-existing score warm)")
        run_query()
    _print_table_card(session,
                      parsed.table if parsed is not None else "demo")
    _write_trace_out(args.trace_out, session)
    return 0


def _append_demo_rows(session, n: int, seed: int) -> None:
    """Commit ``n`` fresh rows to the live demo table (one write batch)."""
    live = session._live_table("demo")
    rng = np.random.default_rng(seed + 1)
    values = rng.uniform(0.0, 25.0, size=n)
    live.append([f"new-{i:05d}" for i in range(n)],
                [float(value) for value in values],
                values.reshape(-1, 1))


def _print_table_card(session, table: str) -> None:
    """One-line per-table card: rows, version, index freshness, writes."""
    info = session.table_info(table)
    line = (f"table: {info['table']} — {info['rows']:,} rows, "
            f"version {info['version']}, index {info['index_freshness']}")
    if info.get("writes"):
        writes = info["writes"]
        line += (f" (writes: {writes['append']} append / "
                 f"{writes['update']} update / {writes['delete']} delete")
        if "index_splits" in info:
            line += (f"; {info['index_splits']} splits, "
                     f"{info['index_rebuilds']} rebuilds")
        line += ")"
    print(line)


def _write_trace_out(path: Optional[str], session) -> None:
    """Save the session's last span tree as Chrome trace-event JSON."""
    if path is None or session.last_trace is None:
        return
    import json

    trace = session.last_trace
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace.to_chrome_trace(), handle)
    print(f"trace: {trace.span_count()} spans -> {path} "
          "(load in chrome://tracing or Perfetto)")


def _demo_session(rows: int, seed: int, live: bool = False):
    """The demo table + UDFs behind both ``query`` and ``serve``.

    With ``live=True`` the generated rows seed a mutable
    :class:`repro.live.LiveTable` instead of a static dataset, so the
    session plans against pinned snapshots and maintains the index
    incrementally as writes commit.
    """
    from repro import OpaqueQuerySession, ReluScorer
    from repro.data.synthetic import SyntheticClustersDataset
    from repro.index.builder import IndexConfig
    from repro.scoring.base import FunctionScorer

    dataset = SyntheticClustersDataset.generate(
        n_clusters=max(2, rows // 250),
        per_cluster=250,
        rng=seed,
    )
    n_clusters = dataset.n_clusters
    if live:
        from repro.live import LiveTable

        ids = dataset.ids()
        dataset = LiveTable(ids, [dataset.fetch(i) for i in ids],
                            dataset.features(), name="demo")
    session = OpaqueQuerySession()
    session.register_table(
        "demo", dataset,
        index_config=IndexConfig(n_clusters=n_clusters),
    )
    session.register_udf("relu", ReluScorer())
    session.register_udf("squared",
                         FunctionScorer(lambda v: float(v) ** 2))
    return session


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import QueryService, serve

    session = _demo_session(args.rows, args.seed)
    service = QueryService(budget=args.budget, policy=args.policy,
                           session=session)

    async def run() -> None:
        server = await serve(service, host=args.host, port=args.port)
        host, port = server.sockets[0].getsockname()[:2]
        budget = ("unmetered" if args.budget is None
                  else f"budget {args.budget} ({args.policy})")
        print(f"serving table 'demo' ({args.rows} rows, UDFs relu/squared) "
              f"on {host}:{port} — {budget}")
        print('try: echo \'{"query": "SELECT TOP 10 FROM demo ORDER BY '
              f"relu BUDGET 500\"}}' | nc {host} {port}")
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("\nshutting down")
    return 0


def _cmd_info(_args: argparse.Namespace) -> int:
    import os

    import repro
    from repro.parallel import available_backends
    from repro.streaming import available_backends as stream_backends

    print(f"repro {repro.__version__} — Approximating Opaque Top-k Queries "
          "(SIGMOD 2025 reproduction)")
    print("\nsubsystems:")
    inventory = [
        ("repro.core", "STK objective, histograms, epsilon-greedy bandit, "
                       "fallbacks, engine"),
        ("repro.index", "vectorizers, k-means, HAC, cluster tree, B+ tree"),
        ("repro.baselines", "UCB, ExplorationOnly, UniformSample, scans, "
                            "oracles"),
        ("repro.scoring", "GBDT, MLP softmax, linear models, latency models"),
        ("repro.data", "synthetic / UsedCars-style / image generators"),
        ("repro.experiments", "ground truth, metrics, runner, reports"),
        ("repro.applications", "data acquisition over source unions"),
        ("repro.session", "SQL-ish declarative interface (WHERE / "
                          "EXPLAIN / WORKERS / STREAM / CONFIDENCE)"),
        ("repro.query", "dialect parser, logical plans, and the "
                        "single/sharded/streaming executor registry"),
        ("repro.parallel", "sharded execution: per-worker index + engine, "
                           "coordinator merge, threshold broadcast"),
        ("repro.streaming", "barrier-free pipeline: merge on arrival, "
                            "anytime progressive results, "
                            "confidence-bounded early stop"),
        ("repro.replay", "recorded-arrival traces + deterministic "
                         "replay of real streaming runs"),
        ("repro.memo", "cross-query score memo (bit-identical warm "
                       "answers) + warm-start bandit priors"),
        ("repro.live", "mutable versioned tables (snapshot-isolated "
                       "writes), incremental index maintenance, "
                       "standing CONTINUOUS queries"),
        ("repro.obs", "query-lifecycle span tracing, EXPLAIN ANALYZE "
                      "reports, process-wide metrics registry"),
        ("repro.service", "multi-tenant asyncio query service: global "
                          "scorer-budget scheduler (fair-share / "
                          "deadline), per-connection sessions, line "
                          "protocol (repro serve)"),
    ]
    for module, description in inventory:
        print(f"  {module:20s} {description}")
    from repro.parallel import backend_availability, shm_probe

    backends = ", ".join(available_backends())
    print(f"\nparallel backends: {backends} "
          f"({os.cpu_count() or 1} CPU core(s) available); "
          "'process' uses real cores, 'thread' suits GIL-releasing UDFs, "
          "'serial' is the deterministic simulation")
    for name, reason in backend_availability().items():
        if reason is not None:
            print(f"  {name}: unavailable — {reason}")
    print(f"streaming backends: {', '.join(stream_backends())} "
          "(same names, barrier-free merge-on-arrival execution), "
          "plus the trace-driven 'replay' backend "
          "(repro demo --replay-trace)")
    print("score cache: on by default (per-table cross-query memo, keyed "
          "by UDF fingerprint; warm answers bit-identical to cold; "
          "opt out per query with --no-cache)")
    print("live tables: repro query --live / --append N (per-table "
          "version, row count, and index freshness printed after every "
          "query; standing queries via the CONTINUOUS clause — "
          "repro.live.ContinuousQuery or the query service)")
    from repro.obs.metrics import REGISTRY

    print("\nmetrics (repro.obs.metrics.REGISTRY.snapshot()):")
    for metric in REGISTRY.describe():
        print(f"  {metric['name']:22s} {metric['type']:10s} "
              f"{metric['help']}")
    shm_reason = shm_probe()
    if shm_reason is None:
        print("zero-copy shard bootstrap: on for 'process' (POSIX shared "
              "memory; opt out with REPRO_DISABLE_SHM=1)")
    else:
        print(f"zero-copy shard bootstrap: unavailable — {shm_reason}; "
              "'process' falls back to inline spec copies")
    print("\nexperiments: benchmarks/bench_fig{2,4,5,6,7,8,9}_*.py "
          "+ bench_theory_regret.py + bench_ablation_design.py")
    print("run: pytest benchmarks/ --benchmark-only")
    print("docs: docs/quickstart.md, docs/dialect.md, docs/streaming.md, "
          "docs/observability.md, docs/api.md, docs/architecture.md")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {"demo": _cmd_demo, "query": _cmd_query,
                "serve": _cmd_serve, "info": _cmd_info}
    try:
        return handlers[args.command](args)
    except Exception as exc:  # surfaced as a clean CLI error
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
