"""Command-line interface: ``python -m repro <command>``.

Three commands, mirroring how the library is used:

* ``demo``    — run the quickstart scenario end to end and print the
  quality report (dataset size / k / budget configurable).
* ``query``   — execute one SQL-ish opaque top-k query (see
  :mod:`repro.session`) against a generated demo table.
* ``info``    — print version, module inventory, and the experiment index.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Approximate opaque top-k queries "
                    "(SIGMOD 2025 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run the quickstart scenario")
    demo.add_argument("--clusters", type=int, default=20)
    demo.add_argument("--per-cluster", type=int, default=500)
    demo.add_argument("--k", type=int, default=100)
    demo.add_argument("--budget-fraction", type=float, default=0.25)
    demo.add_argument("--seed", type=int, default=0)

    query = sub.add_parser("query", help="run one SQL-ish query on a demo table")
    query.add_argument("sql", help='e.g. "SELECT TOP 50 FROM demo ORDER BY '
                                   'relu BUDGET 20%%"')
    query.add_argument("--rows", type=int, default=5_000)
    query.add_argument("--seed", type=int, default=0)

    sub.add_parser("info", help="print version and inventory")
    return parser


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import EngineConfig, FixedPerCallLatency, ReluScorer, TopKEngine
    from repro.data.synthetic import SyntheticClustersDataset
    from repro.experiments.ground_truth import compute_ground_truth
    from repro.experiments.metrics import precision_at_k

    dataset = SyntheticClustersDataset.generate(
        n_clusters=args.clusters, per_cluster=args.per_cluster, rng=args.seed
    )
    index = dataset.true_index()
    scorer = ReluScorer(FixedPerCallLatency(1e-3))
    engine = TopKEngine(index, EngineConfig(k=args.k, seed=args.seed))
    budget = max(args.k, int(args.budget_fraction * len(dataset)))
    result = engine.run(dataset, scorer, budget=budget)
    truth = compute_ground_truth(dataset, scorer)
    optimal = truth.optimal_stk(args.k)
    print(result.summary())
    print(f"STK fraction of optimal: {result.stk / optimal:.1%}")
    print(f"Precision@{args.k}: "
          f"{precision_at_k(result.ids, truth, args.k):.1%}")
    print(f"UDF calls: {result.n_scored:,} of {len(dataset):,} "
          f"({result.n_scored / len(dataset):.0%})")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro import OpaqueQuerySession, ReluScorer
    from repro.data.synthetic import SyntheticClustersDataset
    from repro.index.builder import IndexConfig
    from repro.scoring.base import FunctionScorer

    dataset = SyntheticClustersDataset.generate(
        n_clusters=max(2, args.rows // 250),
        per_cluster=250,
        rng=args.seed,
    )
    session = OpaqueQuerySession()
    session.register_table(
        "demo", dataset,
        index_config=IndexConfig(n_clusters=dataset.n_clusters),
    )
    session.register_udf("relu", ReluScorer())
    session.register_udf("squared",
                         FunctionScorer(lambda v: float(v) ** 2))
    result = session.execute(args.sql)
    print(result.summary())
    for element_id, score in result.items[:10]:
        print(f"  {element_id}\t{score:.4f}")
    if len(result.items) > 10:
        print(f"  ... {len(result.items) - 10} more rows")
    return 0


def _cmd_info(_args: argparse.Namespace) -> int:
    import repro

    print(f"repro {repro.__version__} — Approximating Opaque Top-k Queries "
          "(SIGMOD 2025 reproduction)")
    print("\nsubsystems:")
    inventory = [
        ("repro.core", "STK objective, histograms, epsilon-greedy bandit, "
                       "fallbacks, engine"),
        ("repro.index", "vectorizers, k-means, HAC, cluster tree, B+ tree"),
        ("repro.baselines", "UCB, ExplorationOnly, UniformSample, scans, "
                            "oracles"),
        ("repro.scoring", "GBDT, MLP softmax, linear models, latency models"),
        ("repro.data", "synthetic / UsedCars-style / image generators"),
        ("repro.experiments", "ground truth, metrics, runner, reports"),
        ("repro.applications", "data acquisition over source unions"),
        ("repro.session", "SQL-ish declarative interface"),
    ]
    for module, description in inventory:
        print(f"  {module:20s} {description}")
    print("\nexperiments: benchmarks/bench_fig{2,4,5,6,7,8,9}_*.py "
          "+ bench_theory_regret.py + bench_ablation_design.py")
    print("run: pytest benchmarks/ --benchmark-only")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {"demo": _cmd_demo, "query": _cmd_query, "info": _cmd_info}
    try:
        return handlers[args.command](args)
    except Exception as exc:  # surfaced as a clean CLI error
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
