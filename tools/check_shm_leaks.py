#!/usr/bin/env python
"""Fail if any repro shared-memory segment is left behind.

The zero-copy shard bootstrap (``repro.parallel.shm``) promises that no
``/dev/shm/repro-shm-*`` segment survives its owning run — engine
``close()``, failed-start unwinding, ``weakref.finalize`` and the
module's ``atexit`` sweep all converge on unlink.  This check makes that
promise enforceable after any workload (``check.sh`` runs it right after
tier-1): it lists surviving segments and exits non-zero if any exist.

A segment leaked by a *live* process is still a failure here — segments
are owned per run, not per daemon; nothing in this repo holds one across
process exit.

Usage::

    python tools/check_shm_leaks.py
"""

from __future__ import annotations

import sys
from pathlib import Path

SHM_DIR = Path("/dev/shm")
PREFIX = "repro-shm-"


def leaked_segments() -> list:
    """Surviving repro segments, if POSIX shm is backed by /dev/shm."""
    if not SHM_DIR.is_dir():
        return []
    return sorted(SHM_DIR.glob(PREFIX + "*"))


def main() -> int:
    leaks = leaked_segments()
    if leaks:
        print("LEAKED SHARED-MEMORY SEGMENTS:")
        for path in leaks:
            try:
                size = path.stat().st_size
            except OSError:
                size = -1
            print(f"  {path} ({size} bytes)")
        print(f"{len(leaks)} segment(s) survived; the owning run must "
              f"unlink on close (see repro/parallel/shm.py).")
        return 1
    print("shm leak check ok (no /dev/shm/repro-shm-* segments)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
