#!/usr/bin/env python
"""Fail if any repro shared-memory segment is left behind.

The zero-copy shard bootstrap (``repro.parallel.shm``) promises that no
``/dev/shm/repro-shm-*`` segment survives its owning run — engine
``close()``, failed-start unwinding, ``weakref.finalize`` and the
module's ``atexit`` sweep all converge on unlink.  This check makes that
promise enforceable after any workload (``check.sh`` runs it right after
tier-1): it lists surviving segments and exits non-zero if any exist.

``--exercise service`` first drives the multi-tenant service's
worst-case paths itself — a completed process-backend query, then a
cancelled one — so the service's grant-retire/engine-close unwinding is
exercised in the same process whose exit the check guards.

A segment leaked by a *live* process is still a failure here — segments
are owned per run, not per daemon; nothing in this repo holds one across
process exit.

Usage::

    python tools/check_shm_leaks.py
    PYTHONPATH=src python tools/check_shm_leaks.py --exercise service
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

SHM_DIR = Path("/dev/shm")
PREFIX = "repro-shm-"


def leaked_segments() -> list:
    """Surviving repro segments, if POSIX shm is backed by /dev/shm."""
    if not SHM_DIR.is_dir():
        return []
    return sorted(SHM_DIR.glob(PREFIX + "*"))


def exercise_service() -> None:
    """Drive the service's shm-owning paths: complete + cancel a query.

    Uses the process backend with shared-memory feature tables, so both
    a normally retired grant and a cancelled mid-admission query must
    unwind their segments before this function returns.
    """
    import asyncio

    import numpy as np

    from repro.data.dataset import InMemoryDataset
    from repro.errors import QueryCancelledError
    from repro.index.builder import IndexConfig
    from repro.parallel.shm import shm_available
    from repro.scoring.relu import ReluScorer
    from repro.service import QueryService
    from repro.session import OpaqueQuerySession

    if not shm_available():
        print("shm unavailable; skipping the service exercise")
        return

    rng = np.random.default_rng(0)
    n = 2_000
    values = np.maximum(rng.normal(size=n), 0.0)
    dataset = InMemoryDataset([f"e{i}" for i in range(n)], values.tolist(),
                              np.column_stack([values, rng.random(n)]))
    session = OpaqueQuerySession()
    session.register_table("t", dataset,
                           index_config=IndexConfig(n_clusters=8, flat=True))
    session.register_udf("f", ReluScorer())

    async def drive():
        service = QueryService(budget=1_000, session=session)
        done = await service.submit(
            "SELECT TOP 5 FROM t ORDER BY f BUDGET 400 SEED 0",
            tenant="done", workers=2, backend="process", use_cache=False,
        )
        await done.result()
        # A second query queued behind a pool-filling one, cancelled
        # while waiting — its unwinding must not leave segments either.
        blocker = await service.submit(
            "SELECT TOP 5 FROM t ORDER BY f BUDGET 900 SEED 1",
            tenant="hog", workers=2, backend="process", use_cache=False,
        )
        dropped = await service.submit(
            "SELECT TOP 5 FROM t ORDER BY f BUDGET 400 SEED 2",
            tenant="dropped", workers=2, backend="process", use_cache=False,
        )
        dropped.cancel()
        await blocker.result()
        try:
            await dropped.result()
        except QueryCancelledError:
            pass
        await service.close()

    asyncio.run(drive())
    print("service exercise ok (completed + cancelled process-backend "
          "queries)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--exercise", choices=("service",), default=None,
                        help="drive a workload first, then check for leaks")
    args = parser.parse_args(argv)
    if args.exercise == "service":
        exercise_service()
    leaks = leaked_segments()
    if leaks:
        print("LEAKED SHARED-MEMORY SEGMENTS:")
        for path in leaks:
            try:
                size = path.stat().st_size
            except OSError:
                size = -1
            print(f"  {path} ({size} bytes)")
        print(f"{len(leaks)} segment(s) survived; the owning run must "
              f"unlink on close (see repro/parallel/shm.py).")
        return 1
    print("shm leak check ok (no /dev/shm/repro-shm-* segments)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
