#!/usr/bin/env python
"""Documentation gates: executable docs, importable API, unbroken links.

Three checks over ``README.md`` and ``docs/*.md`` (all run by default;
select a subset with flags).  Wired into ``check.sh`` and the CI docs
job so the documentation cannot rot:

* ``--doctests`` — every fenced ```python``` block must execute.  Blocks
  are run top-to-bottom per file in one shared namespace (so a page
  builds on its own earlier examples, like a console session).  Blocks
  containing ``>>>`` prompts run through :mod:`doctest` and must
  reproduce their shown output; plain blocks are ``exec``-ed and must
  not raise.  Annotate a fence ```` ```python no-run ```` to exclude it
  (reserved for genuinely unrunnable fragments; currently none).
* ``--api`` — ``docs/api.md`` is the reference for the public surface:
  every ``### `symbol` `` heading under a ``## `module` `` section must
  import (``getattr(import_module(module), symbol)``), so the reference
  can never document a symbol that no longer exists.
* ``--links`` — every relative markdown link target in ``README.md`` and
  ``docs/*.md`` must exist on disk (anchors are stripped; external URLs
  are ignored).
* ``--grammar`` — the dialect docs and the parser cannot drift: every
  uppercase keyword in the plain (non-python) grammar fences of
  ``docs/dialect.md`` must appear in the parser's keyword table
  (``repro.query.parser.KEYWORDS``), and every keyword in that table
  must be mentioned somewhere in ``docs/dialect.md``.

Exit status is non-zero on the first category with failures; every
failure is printed with its file and location.

Usage::

    python tools/check_docs.py                # all three gates
    python tools/check_docs.py --doctests     # just run the docs
"""

from __future__ import annotations

import argparse
import doctest
import importlib
import re
import sys
import traceback
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [REPO_ROOT / "README.md"] + sorted(
    (REPO_ROOT / "docs").glob("*.md")
)

_FENCE_RE = re.compile(
    r"^```python([^\n]*)\n(.*?)^```\s*$",
    re.MULTILINE | re.DOTALL,
)
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_API_MODULE_RE = re.compile(r"^##\s+`?([A-Za-z_][\w.]*)`?\s*$")
_API_SYMBOL_RE = re.compile(r"^###\s+`([A-Za-z_][\w]*)")


def python_blocks(text: str) -> Iterator[Tuple[int, str, str]]:
    """Yield ``(line_number, info_string, source)`` per python fence."""
    for match in _FENCE_RE.finditer(text):
        line = text.count("\n", 0, match.start()) + 1
        yield line, match.group(1).strip(), match.group(2)


def run_doctests(files: List[Path]) -> List[str]:
    """Execute every runnable python block; return failure messages."""
    failures: List[str] = []
    parser = doctest.DocTestParser()
    for path in files:
        namespace: dict = {}
        rel = path.relative_to(REPO_ROOT)
        for line, info, source in python_blocks(path.read_text()):
            if "no-run" in info:
                continue
            label = f"{rel}:{line}"
            if ">>>" in source:
                test = parser.get_doctest(source, namespace, str(rel),
                                          str(rel), line)
                runner = doctest.DocTestRunner(
                    optionflags=doctest.ELLIPSIS
                    | doctest.NORMALIZE_WHITESPACE,
                )
                output: List[str] = []
                runner.run(test, out=output.append)
                if runner.failures:
                    failures.append(
                        f"{label}: {runner.failures} doctest failure(s)\n"
                        + "".join(output)
                    )
            else:
                try:
                    exec(compile(source, label, "exec"), namespace)
                except Exception:
                    failures.append(
                        f"{label}: block raised\n{traceback.format_exc()}"
                    )
    return failures


def run_api_check(api_path: Path) -> List[str]:
    """Import every documented symbol of docs/api.md."""
    if not api_path.exists():
        return [f"{api_path} is missing"]
    failures: List[str] = []
    module_name = None
    n_symbols = 0
    for number, line in enumerate(api_path.read_text().splitlines(), 1):
        module_match = _API_MODULE_RE.match(line)
        if module_match and module_match.group(1).startswith("repro"):
            module_name = module_match.group(1)
            try:
                importlib.import_module(module_name)
            except Exception as exc:
                failures.append(
                    f"docs/api.md:{number}: module {module_name!r} "
                    f"does not import: {exc}"
                )
                module_name = None
            continue
        symbol_match = _API_SYMBOL_RE.match(line)
        if symbol_match:
            if module_name is None:
                failures.append(
                    f"docs/api.md:{number}: symbol outside a "
                    f"`## repro...` module section"
                )
                continue
            n_symbols += 1
            symbol = symbol_match.group(1)
            module = importlib.import_module(module_name)
            if not hasattr(module, symbol):
                failures.append(
                    f"docs/api.md:{number}: {module_name}.{symbol} "
                    f"does not exist"
                )
    if not failures and n_symbols == 0:
        failures.append("docs/api.md documents no symbols")
    return failures


_ANY_FENCE_RE = re.compile(
    r"^```([^\n]*)\n(.*?)^```\s*$",
    re.MULTILINE | re.DOTALL,
)
_UPPER_WORD_RE = re.compile(r"\b[A-Z][A-Z]+\b")


def run_grammar_check(dialect_path: Path) -> List[str]:
    """Dialect docs vs. parser keyword table — both directions.

    Keywords are harvested from the *plain* fenced blocks of
    ``docs/dialect.md`` (the grammar sketches; python example blocks are
    exercised by ``--doctests`` instead) as every all-uppercase word.
    """
    if not dialect_path.exists():
        return [f"{dialect_path} is missing"]
    from repro.query.parser import KEYWORDS

    text = dialect_path.read_text()
    rel = dialect_path.relative_to(REPO_ROOT)
    documented: set = set()
    n_plain_fences = 0
    for match in _ANY_FENCE_RE.finditer(text):
        if match.group(1).strip():
            continue  # python (or otherwise tagged) fence
        n_plain_fences += 1
        documented |= set(_UPPER_WORD_RE.findall(match.group(2)))
    failures: List[str] = []
    if n_plain_fences == 0:
        failures.append(f"{rel}: no plain grammar fence found")
    for word in sorted(documented - set(KEYWORDS)):
        failures.append(
            f"{rel}: documents clause keyword {word!r} missing from "
            f"repro.query.parser.KEYWORDS"
        )
    for keyword in sorted(set(KEYWORDS) - documented):
        # Word-boundary match: "OR" inside "ORDER" must not count as
        # documentation of the OR clause.
        if not re.search(rf"\b{keyword}\b", text):
            failures.append(
                f"{rel}: parser keyword {keyword!r} is not documented"
            )
    return failures


def run_link_check(files: List[Path]) -> List[str]:
    """Verify every relative link target exists."""
    failures: List[str] = []
    for path in files:
        rel = path.relative_to(REPO_ROOT)
        for number, line in enumerate(path.read_text().splitlines(), 1):
            for target in _LINK_RE.findall(line):
                if "://" in target or target.startswith(("#", "mailto:")):
                    continue
                resolved = (path.parent / target.split("#", 1)[0]).resolve()
                if not resolved.exists():
                    failures.append(
                        f"{rel}:{number}: broken relative link {target!r}"
                    )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--doctests", action="store_true")
    parser.add_argument("--api", action="store_true")
    parser.add_argument("--links", action="store_true")
    parser.add_argument("--grammar", action="store_true")
    args = parser.parse_args(argv)
    run_all = not (args.doctests or args.api or args.links or args.grammar)
    sys.path.insert(0, str(REPO_ROOT / "src"))
    status = 0
    if run_all or args.doctests:
        failures = run_doctests(DOC_FILES)
        print(f"doc doctests: {'ok' if not failures else 'FAIL'} "
              f"({len(DOC_FILES)} files)")
        for failure in failures:
            print(" ", failure)
        status = status or (1 if failures else 0)
    if run_all or args.api:
        failures = run_api_check(REPO_ROOT / "docs" / "api.md")
        print(f"api reference: {'ok' if not failures else 'FAIL'}")
        for failure in failures:
            print(" ", failure)
        status = status or (1 if failures else 0)
    if run_all or args.links:
        failures = run_link_check(DOC_FILES)
        print(f"relative links: {'ok' if not failures else 'FAIL'}")
        for failure in failures:
            print(" ", failure)
        status = status or (1 if failures else 0)
    if run_all or args.grammar:
        failures = run_grammar_check(REPO_ROOT / "docs" / "dialect.md")
        print(f"grammar drift: {'ok' if not failures else 'FAIL'}")
        for failure in failures:
            print(" ", failure)
        status = status or (1 if failures else 0)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
