#!/bin/sh
# CI-style check: byte-compile everything, run the doctest'd grammar,
# run the documentation gates (executable docs examples, API-symbol
# imports, relative links), then tier-1.  Perf gates stay opt-in
# (`pytest -m perf`), matching the benchmarks/ pattern.
set -eu
cd "$(dirname "$0")"
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== compileall =="
python -m compileall -q src benchmarks examples tests tools

echo "== doctests (dialect grammar + session shims + rng) =="
python -m doctest src/repro/query/parser.py src/repro/session.py \
    src/repro/utils/rng.py

# SKIP_DOCS=1 skips the docs gates (used by the CI matrix job, where the
# dedicated `docs` job is the single owner of these checks).
if [ "${SKIP_DOCS:-0}" != "1" ]; then
    echo "== docs gates (README + docs/: examples run, API imports, links) =="
    python tools/check_docs.py
fi

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== shm leak check (no surviving repro-shm-* segments) =="
python tools/check_shm_leaks.py

echo "check.sh: all green"
