#!/bin/sh
# CI-style check: byte-compile everything, run the doctest'd grammar,
# then tier-1.  Perf gates stay opt-in (`pytest -m perf`), matching the
# benchmarks/ pattern.
set -eu
cd "$(dirname "$0")"
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== compileall =="
python -m compileall -q src benchmarks examples tests

echo "== doctests (session grammar + rng) =="
python -m doctest src/repro/session.py src/repro/utils/rng.py

echo "== tier-1 tests =="
python -m pytest -x -q

echo "check.sh: all green"
