"""Sharded opaque top-k: the Section 6 MapReduce combination, for real.

Partitions a dataset across workers, each running its own index plus
bandit; a coordinator merges running solutions every sync round and
broadcasts the global threshold back.  The same shard/coordinator protocol
runs on three backends (see ``docs/architecture.md``):

* ``serial``  — deterministic simulation; wall time is the paper's virtual
  clock (max worker cost per round), so it scales ~1/W *by construction*;
* ``thread`` / ``process`` — real concurrency; wall time is measured, and
  speedup comes from genuinely overlapping the expensive UDF calls.

Part 1 reproduces the classic simulation sweep; part 2 runs the identical
query on all three backends with a UDF that really blocks for its latency,
so the measured clocks mean what they say.

Run:  python examples/distributed_workers.py
"""

from __future__ import annotations

import time

from repro import (
    DistributedTopKExecutor,
    FixedPerCallLatency,
    ReluScorer,
    ShardedTopKEngine,
)
from repro.data.synthetic import SyntheticClustersDataset
from repro.experiments.ground_truth import compute_ground_truth
from repro.index.builder import IndexConfig
from repro.scoring.blocking import BlockingReluScorer

K = 40


def main() -> None:
    dataset = SyntheticClustersDataset.generate(n_clusters=12,
                                                per_cluster=500, rng=1)
    scorer = ReluScorer(FixedPerCallLatency(1e-3))
    truth = compute_ground_truth(dataset, scorer)
    optimal = truth.optimal_stk(K)
    budget = len(dataset) // 3

    print(f"n={len(dataset):,}, k={K}, budget={budget:,} scoring calls "
          f"(1 ms each)\n")
    print("-- simulation (serial backend, virtual clock) --")
    print("workers | wall time | STK (fraction of optimal)")
    for n_workers in (1, 2, 4, 8):
        executor = DistributedTopKExecutor(
            dataset, scorer, k=K, n_workers=n_workers,
            index_config=IndexConfig(n_clusters=6),
            sync_interval=100, seed=0,
        )
        result = executor.run(budget=budget)
        print(f"{n_workers:7d} | {result.wall_time:8.2f}s | "
              f"{result.stk / optimal:.1%}  "
              f"({result.n_rounds} sync rounds)")

    print("\n-- real backends (4 workers, measured clock, blocking UDF) --")
    blocking = BlockingReluScorer(1e-3)
    print("backend | wall time | STK (fraction of optimal)")
    for backend in ("serial", "thread", "process"):
        with ShardedTopKEngine(
            dataset, blocking, k=K, n_workers=4,
            backend=backend,
            index_config=IndexConfig(n_clusters=6),
            sync_interval=200, seed=0,
        ) as sharded:
            started = time.perf_counter()
            result = sharded.run(budget)
            elapsed = time.perf_counter() - started
        print(f"{backend:>7} | {elapsed:8.2f}s | {result.stk / optimal:.1%}")

    print("\nsame total budget, same merged answer: the coordinator merge "
          "plus threshold broadcast keeps the partitioned bandits honest, "
          "and thread/process overlap the UDF latency for real.")


if __name__ == "__main__":
    main()
