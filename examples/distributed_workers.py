"""Distributed opaque top-k: the Section 6 MapReduce combination.

Partitions a dataset across simulated workers, each running its own index
plus bandit; a coordinator merges running solutions every sync round and
broadcasts the global threshold back.  Wall-clock time scales ~1/W while
the merged answer stays exact.

Run:  python examples/distributed_workers.py
"""

from __future__ import annotations

from repro import DistributedTopKExecutor, FixedPerCallLatency, ReluScorer
from repro.data.synthetic import SyntheticClustersDataset
from repro.experiments.ground_truth import compute_ground_truth
from repro.index.builder import IndexConfig

K = 40


def main() -> None:
    dataset = SyntheticClustersDataset.generate(n_clusters=12,
                                                per_cluster=500, rng=1)
    scorer = ReluScorer(FixedPerCallLatency(1e-3))
    truth = compute_ground_truth(dataset, scorer)
    optimal = truth.optimal_stk(K)
    budget = len(dataset) // 3

    print(f"n={len(dataset):,}, k={K}, budget={budget:,} scoring calls "
          f"(1 ms each)\n")
    print("workers | wall time | STK (fraction of optimal)")
    for n_workers in (1, 2, 4, 8):
        executor = DistributedTopKExecutor(
            dataset, scorer, k=K, n_workers=n_workers,
            index_config=IndexConfig(n_clusters=6),
            sync_interval=100, seed=0,
        )
        result = executor.run(budget=budget)
        print(f"{n_workers:7d} | {result.wall_time:8.2f}s | "
              f"{result.stk / optimal:.1%}  "
              f"({result.n_rounds} sync rounds)")

    print("\nsame total budget, ~1/W wall time, no quality loss: the "
          "coordinator merge plus threshold broadcast keeps the partitioned "
          "bandits honest.")


if __name__ == "__main__":
    main()
