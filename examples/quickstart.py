"""Quickstart: approximate top-k over a synthetic dataset in ~40 lines.

Builds the hierarchical index over normally distributed clusters, runs the
histogram-based epsilon-greedy bandit for a quarter of the dataset's budget,
and compares the result against the exact answer.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    EngineConfig,
    FixedPerCallLatency,
    ReluScorer,
    SyntheticClustersDataset,
    TopKEngine,
)
from repro.experiments.ground_truth import compute_ground_truth
from repro.experiments.metrics import precision_at_k


def main() -> None:
    # 1. Data: 20 clusters x 500 scalar elements (the paper's Section 5.2
    #    workload at 1/5 scale).  Elements with similar values cluster
    #    together, which is what the index exploits.
    dataset = SyntheticClustersDataset.generate(
        n_clusters=20, per_cluster=500, rng=0
    )

    # 2. Index: the generating clusters as leaves + a dendrogram over their
    #    means (the VOODOO index of Section 3.2.2).
    index = dataset.true_index()
    print(f"index: {index}")

    # 3. The opaque UDF: ReLU with a simulated 1 ms/call latency.
    scorer = ReluScorer(FixedPerCallLatency(1e-3))

    # 4. Query: top-100 by score, spending only 25% of an exhaustive scan.
    k = 100
    engine = TopKEngine(index, EngineConfig(k=k, seed=0))
    result = engine.run(dataset, scorer, budget=len(dataset) // 4)
    print(result.summary())

    # 5. Compare against the exact answer.
    truth = compute_ground_truth(dataset, scorer)
    optimal = truth.optimal_stk(k)
    precision = precision_at_k(result.ids, truth, k)
    print(f"STK:         {result.stk:,.1f} / optimal {optimal:,.1f} "
          f"({result.stk / optimal:.1%})")
    print(f"Precision@K: {precision:.1%} with {result.n_scored:,} of "
          f"{len(dataset):,} UDF calls")


if __name__ == "__main__":
    main()
