"""The Section 7.4 sketch: a declarative interface over the engine.

Registers a table and two opaque UDFs in an :class:`OpaqueQuerySession`,
then answers SQL-ish queries.  The index is built once per table and reused
across UDFs and queries — the point of a task-independent index.

Run:  python examples/sql_session.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    FunctionScorer,
    IndexConfig,
    OpaqueQuerySession,
    UsedCarsDataset,
)
from repro.scoring.gbdt_scorer import GBDTValuationScorer


def main() -> None:
    train_rows, listings = UsedCarsDataset.generate_split(
        n_train=3_000, n_query=5_000, rng=2
    )

    session = OpaqueQuerySession()
    session.register_table("listings", listings,
                           index_config=IndexConfig(n_clusters=30))
    session.register_udf(
        "valuation",
        GBDTValuationScorer.train(train_rows, n_estimators=25, rng=0),
    )
    session.register_udf(
        "bargain_score",
        FunctionScorer(
            lambda row: max(
                0.0,
                (row["horsepower"] or 150.0) / max(row["mileage"] or 1.0, 1.0)
                * 1_000.0,
            )
        ),
    )

    queries = [
        "SELECT TOP 25 FROM listings ORDER BY valuation BUDGET 15% SEED 0",
        "SELECT TOP 25 FROM listings ORDER BY valuation BUDGET 40% SEED 0",
        "SELECT TOP 10 FROM listings ORDER BY bargain_score BUDGET 20% SEED 0",
        # feature[5] is z-normalized horsepower: filtered top-k over the
        # above-average-horsepower listings only.  The predicate is pushed
        # down into the index, so filtered-out listings are never scored.
        "SELECT TOP 10 FROM listings ORDER BY valuation "
        "WHERE feature[5] > 0 BUDGET 20% SEED 0",
    ]
    for query in queries:
        result = session.execute(query)
        top_id, top_score = result.items[0]
        print(f"{query}\n  -> STK {result.stk:,.0f} after "
              f"{result.budget_spent:,} UDF calls; best {top_id} "
              f"({top_score:,.1f})\n")

    # EXPLAIN returns the resolved execution plan instead of running.
    plan = session.execute(
        "EXPLAIN SELECT TOP 10 FROM listings ORDER BY valuation "
        "WHERE feature[5] > 0 BUDGET 20% WORKERS 4 STREAM"
    )
    print(plan.explain())


if __name__ == "__main__":
    main()
