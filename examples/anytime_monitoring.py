"""Anytime query monitoring: watch the solution improve and stop when
satisfied (the paper's any-time query model, Example 3.1 step 6).

Drives the engine through its pull interface, printing a live quality
report every few hundred UDF calls, and stops as soon as the running
solution stops improving meaningfully — exactly how an interactive analyst
would use the library.  Also shows fallback events surfacing in the trace.

Run:  python examples/anytime_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    EngineConfig,
    FallbackConfig,
    FixedPerCallLatency,
    ReluScorer,
    SyntheticClustersDataset,
    TopKEngine,
)

K = 50
REPORT_EVERY = 400
PATIENCE = 3          # stop after this many reports without >0.5% improvement


def main() -> None:
    dataset = SyntheticClustersDataset.generate(n_clusters=15,
                                                per_cluster=400, rng=3)
    index = dataset.true_index()
    scorer = ReluScorer(FixedPerCallLatency(1e-3))
    engine = TopKEngine(
        index,
        EngineConfig(
            k=K, seed=0,
            fallback=FallbackConfig(warmup_fraction=0.2,
                                    check_frequency=0.02),
        ),
    )

    print(f"monitoring top-{K} over {len(dataset):,} elements "
          f"(ctrl-c to stop early and keep the current answer)\n")
    last_stk = 0.0
    stale_reports = 0
    next_report = REPORT_EVERY
    while not engine.exhausted:
        ids = engine.next_batch()
        scores = scorer.score_batch(dataset.fetch_batch(ids))
        engine.observe(ids, scores)

        if engine.n_scored >= next_report:
            next_report += REPORT_EVERY
            stk = engine.stk
            improved = (stk - last_stk) / max(stk, 1e-9)
            marker = "  <- improving" if improved > 0.005 else ""
            print(f"after {engine.n_scored:6,} calls: STK = {stk:10.1f} "
                  f"threshold = {engine.threshold or 0:6.2f}{marker}")
            stale_reports = 0 if improved > 0.005 else stale_reports + 1
            last_stk = stk
            if stale_reports >= PATIENCE:
                print("\nsolution has plateaued — retrieving the answer.")
                break

    for iteration, kind in engine.fallback_events:
        print(f"(fallback event at iteration {iteration}: {kind})")

    answer = engine.topk_items()
    print(f"\nfinal top-5 of {len(answer)} results:")
    for element_id, score in answer[:5]:
        print(f"  {element_id}  score={score:.3f}")
    print(f"\nscored {engine.n_scored:,}/{len(dataset):,} elements "
          f"({engine.n_scored / len(dataset):.0%} of exhaustive)")


if __name__ == "__main__":
    main()
