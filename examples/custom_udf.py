"""Bring your own opaque UDF: wrap any Python callable as a scorer.

The library never inspects the scoring function — any callable that maps an
element to a non-negative float works, including ones that change between
queries (the "ad-hoc model" scenario from the paper's introduction).  This
example scores geographic points by a hand-written "habitability" function,
then swaps in a different UDF over the same index.

Run:  python examples/custom_udf.py
"""

from __future__ import annotations

import math

import numpy as np

from repro import (
    EngineConfig,
    FunctionScorer,
    InMemoryDataset,
    IndexConfig,
    TopKEngine,
    build_index,
)
from repro.experiments.ground_truth import compute_ground_truth

N = 6_000
K = 40


def make_dataset() -> InMemoryDataset:
    """Points on a 2-D map; features are the coordinates themselves."""
    rng = np.random.default_rng(11)
    coords = rng.uniform(-10, 10, size=(N, 2))
    ids = [f"pt-{i:05d}" for i in range(N)]
    return InMemoryDataset(ids, [tuple(xy) for xy in coords], coords)


def habitability(point) -> float:
    """An opaque hand-written UDF: prefers two 'oases' on the map."""
    x, y = point
    oasis_a = math.exp(-((x - 4) ** 2 + (y - 5) ** 2) / 6.0)
    oasis_b = 0.7 * math.exp(-((x + 6) ** 2 + (y + 2) ** 2) / 3.0)
    return 100.0 * (oasis_a + oasis_b)


def distance_to_port(point) -> float:
    """A second UDF over the same data: closeness to a shipping port."""
    x, y = point
    return max(0.0, 50.0 - 3.0 * math.hypot(x - 9, y + 9))


def run_query(index, dataset, fn, label: str) -> None:
    scorer = FunctionScorer(fn)
    engine = TopKEngine(index, EngineConfig(k=K, seed=1))
    result = engine.run(dataset, scorer, budget=N // 5)
    truth = compute_ground_truth(dataset, scorer)
    ratio = result.stk / truth.optimal_stk(K)
    best_id, best_score = result.items[0]
    print(f"{label:18s} best={best_id} ({best_score:6.2f})  "
          f"STK at 20% budget = {ratio:.1%} of optimal")


def main() -> None:
    dataset = make_dataset()
    # One spatial index serves every UDF that correlates with location.
    index = build_index(dataset.features(), dataset.ids(),
                        IndexConfig(n_clusters=30), rng=0)
    print(f"spatial index: {index}\n")
    run_query(index, dataset, habitability, "habitability")
    run_query(index, dataset, distance_to_port, "port proximity")
    print("\nsame index, two different opaque UDFs — no re-indexing needed.")


if __name__ == "__main__":
    main()
