"""Image fuzzy classification: find the images most confidently classified
as a target label (the paper's Section 5.4 workload).

The opaque UDF is a softmax classifier's confidence for one label, scored
on a GPU-style latency model where batching amortizes a fixed launch cost.
The same pixel-space index answers queries for *any* label — the index is
task-independent; only the bandit's histograms are per-query.

Run:  python examples/image_label_search.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    EngineConfig,
    IndexConfig,
    MLPClassifier,
    SoftmaxConfidenceScorer,
    SyntheticImageDataset,
    TopKEngine,
    build_index,
)
from repro.experiments.ground_truth import compute_ground_truth
from repro.experiments.metrics import precision_at_k

N_TRAIN = 800
N_QUERY = 4_000
N_CLASSES = 8
K = 50
BATCH = 40


def main() -> None:
    # Train the classifier on a held-out split (stand-in for "pre-trained").
    train = SyntheticImageDataset.generate(n=N_TRAIN, n_classes=N_CLASSES,
                                           side=8, noise=0.12, rng=0)
    model = MLPClassifier(hidden=64, epochs=40, rng=0).fit(
        *train.train_arrays()
    )
    print(f"classifier train accuracy: "
          f"{model.accuracy(*train.train_arrays()):.1%}")

    # The query corpus: a disjoint split of the SAME classes (shared
    # templates), with its pixel-space index built once for all labels.
    query = SyntheticImageDataset.generate(n=N_QUERY, n_classes=N_CLASSES,
                                           side=8, noise=0.12, rng=1,
                                           templates=train.templates)
    index = build_index(query.features(), query.ids(),
                        IndexConfig(n_clusters=25, subsample=2_000), rng=0)
    print(f"pixel index: {index}\n")

    for label in (1, 4, 6):
        scorer = SoftmaxConfidenceScorer(model, label=label)
        engine = TopKEngine(index, EngineConfig(k=K, seed=0,
                                                batch_size=BATCH))
        result = engine.run(query, scorer, budget=N_QUERY // 3)

        truth = compute_ground_truth(query, scorer, batch_size=2048)
        optimal = truth.optimal_stk(K)
        precision = precision_at_k(result.ids, truth, K)
        # How many of the returned images truly belong to the label?
        hits = sum(
            1 for element_id in result.ids
            if query.labels[int(element_id.split("-")[1])] == label
        )
        print(f"label {label}: STK {result.stk:.2f} "
              f"({result.stk / optimal:.1%} of optimal), "
              f"Precision@{K} {precision:.1%}, "
              f"{hits}/{K} truly label-{label}, "
              f"virtual scoring time {result.virtual_time:.1f}s "
              f"in {result.n_batches} GPU batches")


if __name__ == "__main__":
    main()
