"""Streaming anytime top-k: progressive results while the query runs.

The round-based sharded engine (``examples/distributed_workers.py``)
returns nothing until the whole budget is spent.  The streaming engine
removes the round barrier: shard workers run continuously in small budget
slices, the coordinator merges each slice outcome the moment it arrives,
and ``results_iter()`` yields a usable top-k from the first slice onward —
time-to-first-result is one slice of work instead of one full run.

Three parts:

1. drive ``StreamingTopKEngine.results_iter`` directly and watch the
   anytime quality curve converge (with a really-blocking UDF so the
   clocks mean what they say);
2. compare time-to-first-result against the round-based engine's total
   wall-clock on the identical query;
3. the same thing declaratively: ``STREAM EVERY`` in the SQL dialect,
   plus the early-stop rule (``stable_slices``) that quiesces the run
   once the top-k stops moving;
4. the principled alternative to (3): ``CONFIDENCE p`` stops once the
   shards' sketch tails certify the answer (``docs/streaming.md``), and
   ``record=True`` + ``repro.replay`` re-executes the real thread-backend
   run bit for bit.

Run:  python examples/streaming_query.py
"""

from __future__ import annotations

import time

from repro import OpaqueQuerySession, ShardedTopKEngine, StreamingTopKEngine
from repro.data.synthetic import SyntheticClustersDataset
from repro.experiments.ground_truth import compute_ground_truth
from repro.index.builder import IndexConfig
from repro.scoring.blocking import BlockingReluScorer

K = 25
BUDGET = 2_000
PER_CALL = 1e-3  # the UDF really sleeps 1 ms per element


def main() -> None:
    dataset = SyntheticClustersDataset.generate(n_clusters=10,
                                                per_cluster=400, rng=2)
    scorer = BlockingReluScorer(PER_CALL)
    truth = compute_ground_truth(dataset, scorer)
    optimal = truth.optimal_stk(K)

    print(f"n={len(dataset):,}, k={K}, budget={BUDGET:,} blocking scoring "
          f"calls ({PER_CALL * 1e3:.0f} ms each)\n")

    print("-- 1. progressive snapshots (thread backend, 4 workers) --")
    with StreamingTopKEngine(
        dataset, scorer, k=K, n_workers=4, backend="thread",
        index_config=IndexConfig(n_clusters=5), slice_budget=100, seed=0,
    ) as streaming:
        for snap in streaming.results_iter(BUDGET, every=400):
            flag = "  <- converged" if snap.converged else ""
            print(f"  t={snap.wall_time:6.2f}s  scored {snap.budget_spent:>5,}"
                  f"  STK {snap.stk / optimal:6.1%} of optimal"
                  f"  threshold={snap.threshold:.3f}{flag}")
        result = streaming.result()
    print(f"  {result.summary()}\n")

    print("-- 2. time-to-first-result vs round-based total wall --")
    started = time.perf_counter()
    with ShardedTopKEngine(
        dataset, scorer, k=K, n_workers=4, backend="thread",
        index_config=IndexConfig(n_clusters=5), sync_interval=100, seed=0,
    ) as sharded:
        round_result = sharded.run(BUDGET)
    round_wall = time.perf_counter() - started
    ttfr = result.time_to_first_result
    print(f"  round engine: first (and only) answer after {round_wall:.2f}s "
          f"(STK {round_result.stk / optimal:.1%} of optimal)")
    print(f"  streaming:    first answer after {ttfr:.2f}s "
          f"({round_wall / ttfr:.0f}x earlier), same budget overall\n")

    print("-- 3. declarative STREAM EVERY + early stop --")
    session = OpaqueQuerySession()
    session.register_table("items", dataset,
                           index_config=IndexConfig(n_clusters=5))
    session.register_udf("score", scorer)
    for snap in session.stream(
        f"SELECT TOP {K} FROM items ORDER BY score "
        f"BUDGET {BUDGET} SEED 0 WORKERS 4 STREAM EVERY 500"
    ):
        print(f"  [SQL] scored {snap.budget_spent:>5,}  "
              f"STK {snap.stk / optimal:6.1%}"
              f"{'  <- converged' if snap.converged else ''}")

    with StreamingTopKEngine(
        dataset, scorer, k=K, n_workers=4, backend="thread",
        index_config=IndexConfig(n_clusters=5), slice_budget=100,
        stable_slices=3, seed=0,
    ) as early:
        early_result = early.run()  # no budget: the stability rule stops it
    print(f"\n  early stop: scored {early_result.total_scored:,} of "
          f"{len(dataset):,} before the top-{K} went quiet "
          f"(STK {early_result.stk / optimal:.1%} of optimal)")

    print("\n-- 4. confidence-bounded stop + recorded-arrival replay --")
    with StreamingTopKEngine(
        dataset, scorer, k=K, n_workers=4, backend="thread",
        index_config=IndexConfig(n_clusters=5), slice_budget=100,
        confidence=0.95, record=True, seed=0,
    ) as certified:
        certified_result = certified.run()
        trace = certified.trace()
    print(f"  CONFIDENCE 0.95: scored {certified_result.total_scored:,} of "
          f"{len(dataset):,} — displacement bound "
          f"{certified_result.displacement_bound:.3g} "
          f"(STK {certified_result.stk / optimal:.1%} of optimal)")

    from repro.replay import replay_run

    replayed = replay_run(dataset, scorer, trace,
                          index_config=IndexConfig(n_clusters=5))
    identical = (replayed.items == certified_result.items
                 and replayed.progressive == certified_result.progressive)
    print(f"  replayed {trace.summary()}")
    print(f"  replay reproduces the real run bit for bit: {identical}")


if __name__ == "__main__":
    main()
