"""Top-k over a classic B+-tree index (the paper's Section 7.1 remark).

A log table is already indexed by timestamp in a B+-tree — a structure the
database maintains anyway.  A new opaque UDF scores each record's "incident
severity", which correlates with recency (recent records matter more, plus
bursts).  Instead of clustering anything, we hand the B+-tree's own page
structure to the bandit: leaf pages become arms, and key locality plays the
role of vector locality.

Run:  python examples/btree_topk.py
"""

from __future__ import annotations

import math

import numpy as np

from repro import BPlusTree, EngineConfig, FunctionScorer, InMemoryDataset, TopKEngine
from repro.experiments.ground_truth import compute_ground_truth
from repro.experiments.metrics import precision_at_k

N = 20_000
K = 50
RNG = np.random.default_rng(9)

# Two incident bursts at known times, riding on a recency trend.
BURSTS = ((0.62, 0.01), (0.87, 0.005))


def severity(timestamp_fraction: float) -> float:
    base = 10.0 * timestamp_fraction  # recency trend
    for center, width in BURSTS:
        base += 60.0 * math.exp(
            -((timestamp_fraction - center) ** 2) / (2 * width)
        )
    return base


def main() -> None:
    # The "existing" database index: records keyed by timestamp.
    records = [(t, f"log-{t:06d}") for t in range(N)]
    btree = BPlusTree.bulk_load(records, order=128)
    print(f"B+ tree: {len(btree):,} records, height {btree.height}, "
          f"{sum(1 for _ in btree.to_cluster_tree().leaves())} leaf pages")

    # Expose the page structure to the bandit (no re-clustering).
    index = btree.to_cluster_tree()

    ids = [f"log-{t:06d}" for t in range(N)]
    dataset = InMemoryDataset(ids, [t / N for t in range(N)],
                              np.arange(N, dtype=float).reshape(-1, 1))
    scorer = FunctionScorer(
        severity,
        batch_fn=lambda ts: np.asarray([severity(t) for t in ts]),
    )

    engine = TopKEngine(index, EngineConfig(k=K, seed=0))
    result = engine.run(dataset, scorer, budget=N // 10)

    truth = compute_ground_truth(dataset, scorer)
    print(f"\nscored {result.n_scored:,}/{N:,} records "
          f"({result.n_scored / N:.0%} of exhaustive)")
    print(f"STK = {result.stk:,.0f} "
          f"({result.stk / truth.optimal_stk(K):.1%} of optimal), "
          f"Precision@{K} = {precision_at_k(result.ids, truth, K):.1%}")

    # Where did the answer come from?  Should be the burst neighbourhoods.
    answer_times = sorted(int(eid.split("-")[1]) / N for eid in result.ids)
    print(f"answer timestamp range: {answer_times[0]:.3f} .. "
          f"{answer_times[-1]:.3f} (bursts at 0.62 and 0.87)")


if __name__ == "__main__":
    main()
