"""Pause a long-running query, persist its state, resume later.

The engine's anytime model means an analyst can stop at any point; the
snapshot API extends that across process restarts: everything the bandit
learned (histograms, remaining elements, running solution, fallback state)
is written to JSON, and the resumed engine continues without re-scoring a
single element.

Run:  python examples/pause_resume.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro import (
    EngineConfig,
    FixedPerCallLatency,
    ReluScorer,
    SyntheticClustersDataset,
    TopKEngine,
    restore_engine,
    snapshot_engine,
)
from repro.experiments.ground_truth import compute_ground_truth

K = 30


def main() -> None:
    dataset = SyntheticClustersDataset.generate(n_clusters=10,
                                                per_cluster=300, rng=6)
    index = dataset.true_index()
    scorer = ReluScorer(FixedPerCallLatency(1e-3))
    truth = compute_ground_truth(dataset, scorer)
    optimal = truth.optimal_stk(K)

    # Session 1: run 20% of the budget, then "the analyst goes home".
    engine = TopKEngine(index, EngineConfig(k=K, seed=0))
    engine.run(dataset, scorer, budget=len(dataset) // 5)
    print(f"session 1: scored {engine.n_scored:,} elements, "
          f"STK {engine.stk / optimal:.1%} of optimal")

    snapshot_path = Path(tempfile.gettempdir()) / "repro-query-snapshot.json"
    snapshot_path.write_text(json.dumps(snapshot_engine(engine)))
    print(f"snapshot written: {snapshot_path} "
          f"({snapshot_path.stat().st_size / 1024:.0f} KiB)\n")

    # Session 2 (fresh process in real life): rebuild the same index,
    # restore, and continue for another 20% of the budget.
    restored = restore_engine(dataset.true_index(),
                              json.loads(snapshot_path.read_text()),
                              resume_seed=1)
    print(f"session 2: resumed at {restored.n_scored:,} scored, "
          f"STK {restored.stk / optimal:.1%}")
    restored.run(dataset, scorer, budget=2 * len(dataset) // 5)
    print(f"session 2: now {restored.n_scored:,} scored, "
          f"STK {restored.stk / optimal:.1%} of optimal")
    print("\nno element was scored twice across the two sessions.")


if __name__ == "__main__":
    main()
