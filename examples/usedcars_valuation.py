"""Example 1.1 from the paper: top-250 used-car listings by an evolving
valuation model.

Analyst Alice trains a gradient-boosted decision tree to predict listing
prices, then repeatedly asks "which listings have the highest predicted
valuations?"  Each query is an opaque top-k query: the model is a black
box, expensive to call (2 ms/listing), and retrained often enough that a
sorted score index would go stale.

This script walks the full workflow of Section 3.2.7: clean + vectorize the
listings, build the index once, then answer *two* queries from two model
versions against the same index — demonstrating why paying the index cost
once beats re-sorting per model.

Run:  python examples/usedcars_valuation.py
"""

from __future__ import annotations

import numpy as np

from repro import EngineConfig, IndexConfig, TopKEngine, UsedCarsDataset, build_index
from repro.data.usedcars import TARGET_COLUMN
from repro.experiments.ground_truth import compute_ground_truth
from repro.experiments.metrics import precision_at_k
from repro.scoring.gbdt_scorer import GBDTValuationScorer

N_TRAIN = 5_000
N_LISTINGS = 8_000
K = 250 // 4  # paper's k at this scale


def answer_query(index, dataset, scorer, label: str) -> None:
    engine = TopKEngine(index, EngineConfig(k=K, seed=0))
    budget = len(dataset) // 5
    result = engine.run(dataset, scorer, budget=budget)

    truth = compute_ground_truth(dataset, scorer, batch_size=2048)
    optimal = truth.optimal_stk(K)
    precision = precision_at_k(result.ids, truth, K)
    print(f"--- {label} ---")
    print(f"scored {result.n_scored:,}/{len(dataset):,} listings "
          f"({result.n_scored / len(dataset):.0%} of an exhaustive scan)")
    print(f"STK {result.stk:,.0f} = {result.stk / optimal:.1%} of optimal; "
          f"Precision@{K} = {precision:.1%}")
    top_id, top_score = result.items[0]
    print(f"best listing: {top_id} valued at ${top_score:,.0f}")
    print()


def main() -> None:
    # Disjoint training and query splits, as in Section 5.1.3.
    train_rows, dataset = UsedCarsDataset.generate_split(
        n_train=N_TRAIN, n_query=N_LISTINGS, rng=7
    )

    # Build the task-independent index once: impute + normalize the nine
    # feature columns, k-means into 40 leaf clusters, HAC dendrogram.
    index = build_index(dataset.features(), dataset.ids(),
                        IndexConfig(n_clusters=40), rng=0)
    print(f"index built once: {index}\n")

    # Model v1: trained on the first half of the training split.
    scorer_v1 = GBDTValuationScorer.train(train_rows[: N_TRAIN // 2],
                                          n_estimators=25, rng=0)
    answer_query(index, dataset, scorer_v1, "model v1 (first training batch)")

    # Model v2: Alice retrains on all data; the same index still works
    # because it never looked at the scores.
    scorer_v2 = GBDTValuationScorer.train(train_rows, n_estimators=40, rng=1)
    answer_query(index, dataset, scorer_v2, "model v2 (retrained, deeper)")


if __name__ == "__main__":
    main()
