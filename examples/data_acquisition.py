"""Data acquisition for model improvement (the paper's Section 7.1 idea).

A team maintains a binary classifier and can acquire labelled points from
three vendors of very different usefulness: one sells points the model
already classifies confidently, one sells random points, one sells points
near the decision boundary.  Scoring a candidate (running the model) is the
expensive opaque UDF; the top-k bandit finds the most uncertain points
without scoring every candidate from every vendor — then we retrain and
measure the accuracy gain versus acquiring uniformly at random.

Run:  python examples/data_acquisition.py
"""

from __future__ import annotations

import numpy as np

from repro import DataSourceUnion, UncertaintyScorer, acquire_topk
from repro.scoring.linear import LogisticRegressionModel

RNG = np.random.default_rng(5)
K = 60
BUDGET = 400


def true_label(points: np.ndarray) -> np.ndarray:
    """Ground-truth concept: a diagonal boundary with a margin."""
    return (points @ np.asarray([1.0, 0.7]) > 0.3).astype(float)


def make_world():
    # Small seed training set -> a mediocre initial model.
    seed_x = RNG.normal(0, 2.0, size=(40, 2))
    seed_y = true_label(seed_x)
    model = LogisticRegressionModel(rng=0).fit(seed_x, seed_y)

    union = DataSourceUnion()
    offsets = {
        "confident-vendor": RNG.normal(4.0, 0.8, size=(400, 2)),
        "random-vendor": RNG.normal(0.0, 3.0, size=(400, 2)),
        "boundary-vendor": RNG.normal(0.0, 0.6, size=(400, 2)),
    }
    for name, points in offsets.items():
        union.add_source(name, [str(i) for i in range(len(points))],
                         list(points), features=points)
    return model, union, seed_x, seed_y


def retrain_with(union, model, seed_x, seed_y, acquired_ids):
    new_x = np.stack([union.fetch(eid) for eid in acquired_ids])
    new_y = true_label(new_x)
    X = np.vstack([seed_x, new_x])
    y = np.concatenate([seed_y, new_y])
    return LogisticRegressionModel(rng=0).fit(X, y)


def accuracy(model) -> float:
    test_x = RNG.normal(0, 2.0, size=(4000, 2))
    test_y = true_label(test_x)
    return float(((model.predict_proba(test_x) > 0.5) == test_y).mean())


def main() -> None:
    model, union, seed_x, seed_y = make_world()
    print(f"initial model accuracy: {accuracy(model):.1%}\n")

    # Bandit-driven acquisition: score candidates by uncertainty.
    report = acquire_topk(union, UncertaintyScorer(model), k=K,
                          budget=BUDGET, seed=0)
    print("bandit acquisition:", report.summary())
    bandit_model = retrain_with(union, model, seed_x, seed_y,
                                report.acquired_ids)
    print(f"  -> retrained accuracy: {accuracy(bandit_model):.1%}\n")

    # Baseline: acquire the same number of points uniformly at random,
    # scoring the same number of candidates.
    all_ids = union.ids()
    random_ids = list(RNG.choice(all_ids, size=K, replace=False))
    random_model = retrain_with(union, model, seed_x, seed_y, random_ids)
    counts = {}
    for eid in random_ids:
        counts[union.source_of(eid)] = counts.get(union.source_of(eid), 0) + 1
    print(f"random acquisition: {counts}")
    print(f"  -> retrained accuracy: {accuracy(random_model):.1%}")


if __name__ == "__main__":
    main()
