"""Tests for the STK objective, including the Theorem 4.1 properties."""

from __future__ import annotations

import heapq

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stk import (
    is_dr_submodular_triple,
    is_monotone_step,
    kth_largest,
    marginal_gain,
    multiset_leq,
    stk,
    stk_after_insert,
    stk_curve,
)
from repro.errors import ConfigurationError

scores = st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                   allow_infinity=False)
score_lists = st.lists(scores, max_size=30)
ks = st.integers(min_value=1, max_value=10)


class TestStkBasics:
    def test_simple(self):
        assert stk([5, 1, 3, 2], 2) == 8.0

    def test_fewer_than_k(self):
        assert stk([4.0, 1.0], 5) == 5.0

    def test_empty(self):
        assert stk([], 3) == 0.0

    def test_duplicates_count(self):
        assert stk([7, 7, 7], 2) == 14.0

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            stk([1.0], 0)

    @given(score_lists, ks)
    def test_matches_sorted_definition(self, values, k):
        expected = sum(sorted(values, reverse=True)[:k])
        assert stk(values, k) == pytest.approx(expected)


class TestKthLargest:
    def test_value(self):
        assert kth_largest([9, 2, 5, 7], 3) == 5.0

    def test_none_when_small(self):
        assert kth_largest([1.0], 2) is None

    def test_ties(self):
        assert kth_largest([3, 3, 3], 2) == 3.0


class TestMarginalGain:
    def test_below_threshold(self):
        assert marginal_gain(1.0, 2.0) == 0.0

    def test_above_threshold(self):
        assert marginal_gain(5.0, 2.0) == 3.0

    def test_no_threshold_full_gain(self):
        assert marginal_gain(4.5, None) == 4.5

    @given(score_lists, scores, ks)
    def test_matches_recomputation(self, values, x, k):
        threshold = kth_largest(values, k)
        expected = stk(values + [x], k) - stk(values, k)
        assert marginal_gain(x, threshold) == pytest.approx(expected, abs=1e-6)

    @given(score_lists, scores, ks)
    def test_stk_after_insert(self, values, x, k):
        current = stk(values, k)
        assert stk_after_insert(current, x, kth_largest(values, k)) == \
            pytest.approx(stk(values + [x], k), abs=1e-6)


class TestStkCurve:
    def test_example(self):
        assert list(stk_curve([1.0, 5.0, 3.0], 2)) == [1.0, 6.0, 8.0]

    def test_empty(self):
        assert len(stk_curve([], 3)) == 0

    @given(score_lists, ks)
    def test_matches_naive(self, values, k):
        curve = stk_curve(values, k)
        for t in range(len(values)):
            assert curve[t] == pytest.approx(stk(values[: t + 1], k), abs=1e-6)

    @given(score_lists, ks)
    def test_nondecreasing(self, values, k):
        curve = stk_curve(values, k)
        assert all(curve[i] <= curve[i + 1] + 1e-9 for i in range(len(curve) - 1))


class TestMultisetLeq:
    def test_examples_from_paper(self):
        assert multiset_leq([0, 1], [0, 0, 1, 1, 1])
        assert not multiset_leq([0, 0, 1], [0, 1, 1])
        assert not multiset_leq([0, 1, 1], [0, 0, 1])

    def test_empty_below_everything(self):
        assert multiset_leq([], [1, 2])

    @given(score_lists, score_lists)
    def test_concatenation_is_superset(self, a, b):
        assert multiset_leq(a, a + b)


class TestTheorem41:
    """Property-based checks of monotonicity and DR-submodularity."""

    @given(score_lists, score_lists, ks)
    @settings(max_examples=200)
    def test_monotone(self, subset, extra, k):
        superset = subset + extra
        assert is_monotone_step(subset, superset, k)

    @given(score_lists, score_lists, scores, ks)
    @settings(max_examples=200)
    def test_dr_submodular(self, subset, extra, x, k):
        superset = subset + extra
        assert is_dr_submodular_triple(subset, superset, x, k)

    def test_local_curvature_example(self):
        # The Section 3.1 example: marginal increases of S_(k) are 0, 100, 0.
        k = 2
        s2 = [0.0, 0.0]
        s3 = s2 + [100.0]
        s4 = s3 + [100.0]
        assert kth_largest(s2, k) == 0.0
        assert kth_largest(s3, k) == 0.0
        assert kth_largest(s4, k) == 100.0
        # Yet STK gains stay diminishing for a fixed added element.
        assert stk(s3, k) - stk(s2, k) == 100.0
        assert stk(s4, k) - stk(s3, k) == 100.0
