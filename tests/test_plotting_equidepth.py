"""Tests for the ASCII chart renderer and the equi-depth sketch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import EngineConfig, TopKEngine
from repro.core.sketches import (
    EquiDepthSketch,
    ExactEmpiricalSketch,
    ReservoirSketch,
)
from repro.data.synthetic import SyntheticClustersDataset
from repro.errors import ConfigurationError
from repro.experiments.plotting import ascii_chart
from repro.experiments.runner import RunCurve
from repro.scoring.relu import ReluScorer


def make_curve(name, stks):
    n = len(stks)
    return RunCurve(
        name=name,
        iterations=np.arange(1, n + 1) * 10,
        times=np.linspace(0.1, 2.0, n),
        stks=np.asarray(stks, dtype=float),
        precisions=np.linspace(0, 1, n),
        overheads=np.zeros(n),
        final_stk=float(stks[-1]),
        n_scored=n * 10,
    )


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        chart = ascii_chart(
            [make_curve("Ours", [1, 5, 9, 10]),
             make_curve("Uniform", [1, 2, 4, 8])],
            title="Quality",
        )
        assert "Quality" in chart
        assert "o Ours" in chart
        assert "* Uniform" in chart
        body = "\n".join(chart.split("\n")[1:-2])
        assert "o" in body and "*" in body  # markers plotted in the canvas

    def test_axis_labels(self):
        chart = ascii_chart([make_curve("A", [0.0, 10.0])])
        assert "10" in chart
        assert "(iterations)" in chart

    def test_time_axis(self):
        chart = ascii_chart([make_curve("A", [0.0, 10.0])], x_axis="time")
        assert "(time)" in chart

    def test_normalization(self):
        chart = ascii_chart([make_curve("A", [5.0, 10.0])], normalize_by=10.0)
        assert "1" in chart  # normalized max

    def test_precision_axis(self):
        chart = ascii_chart([make_curve("A", [1.0, 2.0])], y_axis="precision")
        assert "(iterations)" in chart

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_chart([])

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_chart([make_curve("A", [1.0])], width=4)

    def test_constant_curve_renders(self):
        chart = ascii_chart([make_curve("A", [5.0, 5.0, 5.0])])
        assert "o" in chart

    def test_line_width_bounded(self):
        chart = ascii_chart([make_curve("A", [1, 2, 3])], width=40, height=8)
        body_lines = chart.split("\n")[1:9]
        assert all(len(line) <= 40 + 12 for line in body_lines)


class TestEquiDepthSketch:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EquiDepthSketch(n_bins=1)

    def test_empty_gain_zero(self):
        assert EquiDepthSketch().expected_marginal_gain(1.0) == 0.0
        assert EquiDepthSketch().edges() is None

    def test_equal_mass_bins(self, rng):
        sketch = EquiDepthSketch(n_bins=4, capacity=512, rng=0)
        sketch.add_many(rng.exponential(1.0, size=400))
        edges = sketch.edges()
        assert len(edges) == 5
        assert (np.diff(edges) >= 0).all()

    def test_gain_accurate_below_top_bin(self, rng):
        """For thresholds inside the well-resolved body, the equi-depth
        estimate tracks the exact empirical gain."""
        values = rng.lognormal(0.0, 1.2, size=3000)
        exact = ExactEmpiricalSketch()
        exact.add_many(values)
        sketch = EquiDepthSketch(n_bins=8, capacity=512, rng=0)
        sketch.add_many(values)
        tau = float(np.quantile(values, 0.5))
        assert sketch.expected_marginal_gain(tau) == pytest.approx(
            exact.expected_marginal_gain(tau), rel=0.5
        )

    def test_tail_gain_tracks_exact(self, rng):
        """The top bin is evaluated exactly from the reservoir's tail
        values, so even deep-tail thresholds stay accurate on heavy-tailed
        scores (where pure uniform-in-bin would inflate ~10x)."""
        values = rng.lognormal(0.0, 1.2, size=3000)
        exact = ExactEmpiricalSketch()
        exact.add_many(values)
        sketch = EquiDepthSketch(n_bins=8, capacity=512, rng=0)
        sketch.add_many(values)
        tau = float(np.quantile(values, 0.9))
        assert sketch.expected_marginal_gain(tau) == pytest.approx(
            exact.expected_marginal_gain(tau), rel=0.5
        )

    def test_mean_when_no_threshold(self, rng):
        values = rng.uniform(0, 10, size=600)
        sketch = EquiDepthSketch(n_bins=8, capacity=1024, rng=0)
        sketch.add_many(values)
        assert sketch.expected_marginal_gain(None) == pytest.approx(
            values.mean(), rel=0.1
        )

    def test_subtract_reduces_mass(self, rng):
        a = EquiDepthSketch(capacity=128, rng=0)
        b = EquiDepthSketch(capacity=128, rng=1)
        a.add_many(rng.uniform(0, 1, size=80))
        b.add_many(rng.uniform(0, 1, size=30))
        a.subtract(b)
        assert a.total_mass == pytest.approx(50.0)

    def test_subtract_plain_reservoir(self, rng):
        a = EquiDepthSketch(capacity=128, rng=0)
        a.add_many(rng.uniform(0, 1, size=50))
        b = ReservoirSketch(capacity=64, rng=1)
        b.add_many(rng.uniform(0, 1, size=20))
        a.subtract(b)
        assert a.total_mass == pytest.approx(30.0)

    def test_engine_runs_with_equidepth(self):
        dataset = SyntheticClustersDataset.generate(n_clusters=6,
                                                    per_cluster=100, rng=1)
        engine = TopKEngine(
            dataset.true_index(),
            EngineConfig(k=10, seed=0,
                         sketch_factory=lambda: EquiDepthSketch(8, 128,
                                                                rng=0)),
        )
        result = engine.run(dataset, ReluScorer(), budget=len(dataset) // 2)
        optimal = sum(sorted(
            (max(dataset.fetch(i), 0) for i in dataset.ids()), reverse=True
        )[:10])
        assert result.stk >= 0.85 * optimal
