"""Tests for the fallback controller (Section 3.2.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bandit import BanditConfig
from repro.core.fallback import (
    FallbackConfig,
    FallbackController,
    FallbackDecision,
)
from repro.core.hierarchical import HierarchicalBanditPolicy
from repro.errors import ConfigurationError
from repro.index.tree import ClusterNode, ClusterTree


class TestFallbackConfig:
    def test_paper_defaults(self):
        config = FallbackConfig()
        assert config.warmup_fraction == 0.3
        assert config.check_frequency == 0.01
        assert config.enabled

    def test_invalid_frequency(self):
        with pytest.raises(ConfigurationError):
            FallbackConfig(check_frequency=0.0)

    def test_invalid_warmup(self):
        with pytest.raises(ConfigurationError):
            FallbackConfig(warmup_fraction=1.5)


class TestCheckSchedule:
    def test_first_check_after_warmup(self):
        controller = FallbackController(FallbackConfig(), n_total=1000)
        assert not controller.should_check(299)
        assert controller.should_check(300)

    def test_interval_after_warmup(self):
        controller = FallbackController(FallbackConfig(), n_total=1000)
        controller.should_check(300)
        assert not controller.should_check(305)
        assert controller.should_check(310)
        assert controller.n_checks == 2

    def test_disabled_never_checks(self):
        controller = FallbackController(FallbackConfig(enabled=False), 1000)
        assert not controller.should_check(10**6)

    def test_small_dataset_interval_floor(self):
        controller = FallbackController(
            FallbackConfig(check_frequency=0.001), n_total=10
        )
        controller.should_check(3)
        assert controller.next_check_at == 4  # interval floors at 1


def seeded_policy(tiny_tree, good_hidden: bool):
    """Policy with contrived histograms.

    ``good_hidden=True`` hides the best leaf (a1) in a subtree whose
    aggregate looks worse than B, triggering the tree condition.
    """
    policy = HierarchicalBanditPolicy(tiny_tree, BanditConfig(), rng=0)
    a1 = policy.leaves_by_id["a1"]
    a2 = policy.leaves_by_id["a2"]
    b = policy.leaves_by_id["B"]
    if good_hidden:
        a1.histogram.add_many([10.0] * 5)
        a2.histogram.add_many([0.0] * 45)
        a1.parent.histogram.add_many([10.0] * 5 + [0.0] * 45)
        b.histogram.add_many([5.0] * 50)
    else:
        a1.histogram.add_many([10.0] * 25)
        a2.histogram.add_many([9.0] * 25)
        a1.parent.histogram.add_many([10.0] * 25 + [9.0] * 25)
        b.histogram.add_many([1.0] * 50)
    return policy


class TestTreeCondition:
    def test_holds_when_good_leaf_hidden(self, tiny_tree):
        policy = seeded_policy(tiny_tree, good_hidden=True)
        assert FallbackController.tree_condition(policy, threshold=0.0)

    def test_absent_when_tree_consistent(self, tiny_tree):
        policy = seeded_policy(tiny_tree, good_hidden=False)
        assert not FallbackController.tree_condition(policy, threshold=0.0)

    def test_never_after_flatten(self, tiny_tree):
        policy = seeded_policy(tiny_tree, good_hidden=True)
        policy.flatten()
        assert not FallbackController.tree_condition(policy, threshold=0.0)


class TestClusteringCondition:
    def test_homogeneous_clusters_trigger(self, tiny_tree):
        """When all clusters look identical, uniform sampling wins on cost."""
        policy = HierarchicalBanditPolicy(tiny_tree, BanditConfig(), rng=0)
        for leaf in policy.leaves_by_id.values():
            leaf.histogram.add_many([5.0] * 30)
        triggered = FallbackController.clustering_condition(
            policy, threshold=1.0,
            scoring_latency=1e-3, bandit_latency=5e-3,
        )
        assert triggered

    def test_heterogeneous_clusters_do_not_trigger(self, tiny_tree):
        policy = HierarchicalBanditPolicy(tiny_tree, BanditConfig(), rng=0)
        policy.leaves_by_id["a1"].histogram.add_many([10.0] * 30)
        policy.leaves_by_id["a2"].histogram.add_many([0.1] * 30)
        policy.leaves_by_id["B"].histogram.add_many([0.1] * 30)
        triggered = FallbackController.clustering_condition(
            policy, threshold=1.0,
            scoring_latency=1e-3, bandit_latency=1e-6,
        )
        assert not triggered

    def test_zero_bandit_latency_never_triggers(self, tiny_tree):
        """With free bandit overhead, max gain >= weighted mean always."""
        policy = HierarchicalBanditPolicy(tiny_tree, BanditConfig(), rng=0)
        for leaf in policy.leaves_by_id.values():
            leaf.histogram.add_many([5.0] * 30)
        triggered = FallbackController.clustering_condition(
            policy, threshold=1.0, scoring_latency=1e-3, bandit_latency=0.0
        )
        assert not triggered


class TestEvaluate:
    def test_tree_decision_first(self, tiny_tree):
        policy = seeded_policy(tiny_tree, good_hidden=True)
        controller = FallbackController(FallbackConfig(), n_total=20)
        decision = controller.evaluate(policy, threshold=0.0,
                                       scoring_latency=1e-3,
                                       bandit_latency=0.0)
        assert decision is FallbackDecision.FLATTEN_TREE

    def test_none_when_healthy(self, tiny_tree):
        policy = seeded_policy(tiny_tree, good_hidden=False)
        controller = FallbackController(FallbackConfig(), n_total=20)
        decision = controller.evaluate(policy, threshold=0.0,
                                       scoring_latency=1e-3,
                                       bandit_latency=0.0)
        assert decision is FallbackDecision.NONE

    def test_tree_fallback_can_be_disabled(self, tiny_tree):
        policy = seeded_policy(tiny_tree, good_hidden=True)
        config = FallbackConfig(enable_tree_fallback=False,
                                enable_clustering_fallback=False)
        controller = FallbackController(config, n_total=20)
        decision = controller.evaluate(policy, threshold=0.0,
                                       scoring_latency=1e-3,
                                       bandit_latency=1.0)
        assert decision is FallbackDecision.NONE

    def test_exhausted_policy_none(self, tiny_tree):
        policy = HierarchicalBanditPolicy(tiny_tree, BanditConfig(), rng=0)
        for leaf_id in list(policy.leaves_by_id):
            leaf = policy.leaves_by_id[leaf_id]
            while not leaf.arm.is_empty:
                leaf.arm.draw()
            policy.handle_exhausted(leaf)
        controller = FallbackController(FallbackConfig(), n_total=20)
        assert controller.evaluate(policy, None, 1e-3, 0.0) is \
            FallbackDecision.NONE
