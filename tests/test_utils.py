"""Tests for repro.utils: rng, timers, validation, statistics."""

from __future__ import annotations

import math
import time

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils.rng import RngFactory, as_generator
from repro.utils.stats import RunningMeanVar, summarize
from repro.utils.timer import Stopwatch, VirtualClock
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
)


class TestAsGenerator:
    def test_int_seed_is_deterministic(self):
        assert as_generator(3).integers(1000) == as_generator(3).integers(1000)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestRngFactory:
    def test_same_name_same_stream_across_factories(self):
        a = RngFactory(11).named("kmeans").integers(10**9)
        b = RngFactory(11).named("kmeans").integers(10**9)
        assert a == b

    def test_different_names_differ(self):
        factory = RngFactory(11)
        seq_a = factory.named("alpha").integers(10**9, size=8)
        seq_b = factory.named("beta").integers(10**9, size=8)
        assert not np.array_equal(seq_a, seq_b)

    def test_repeated_name_returns_same_object(self):
        factory = RngFactory(1)
        assert factory.named("x") is factory.named("x")

    def test_spawn_streams_differ(self):
        factory = RngFactory(5)
        a = factory.spawn().integers(10**9, size=4)
        b = factory.spawn().integers(10**9, size=4)
        assert not np.array_equal(a, b)

    def test_order_independence_of_names(self):
        f1 = RngFactory(9)
        f1.named("first")
        x1 = f1.named("second").integers(10**9)
        f2 = RngFactory(9)
        x2 = f2.named("second").integers(10**9)
        assert x1 == x2

    def test_generator_seed_accepted(self):
        factory = RngFactory(np.random.default_rng(0))
        assert isinstance(factory.named("a"), np.random.Generator)


class TestStopwatch:
    def test_accumulates_elapsed(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.002)
        first = sw.elapsed
        assert first > 0.0
        with sw:
            time.sleep(0.002)
        assert sw.elapsed > first

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.elapsed == 0.0


class TestVirtualClock:
    def test_charge_advances(self):
        clock = VirtualClock()
        clock.charge(1.5)
        clock.charge(0.25)
        assert clock.now == pytest.approx(1.75)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().charge(-0.1)

    def test_reset(self):
        clock = VirtualClock()
        clock.charge(2.0)
        clock.reset()
        assert clock.now == 0.0


class TestValidation:
    def test_check_positive_accepts(self):
        assert check_positive(0.5, "x") == 0.5

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            check_positive(0.0, "x")

    def test_check_non_negative_accepts_zero(self):
        assert check_non_negative(0.0, "x") == 0.0

    def test_check_non_negative_rejects(self):
        with pytest.raises(ConfigurationError):
            check_non_negative(-1e-9, "x")

    def test_check_positive_int_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            check_positive_int(True, "x")

    def test_check_positive_int_rejects_float(self):
        with pytest.raises(ConfigurationError):
            check_positive_int(2.0, "x")

    def test_check_positive_int_accepts(self):
        assert check_positive_int(7, "x") == 7

    def test_check_fraction_bounds(self):
        assert check_fraction(0.0, "x") == 0.0
        assert check_fraction(1.0, "x") == 1.0
        with pytest.raises(ConfigurationError):
            check_fraction(1.1, "x")
        with pytest.raises(ConfigurationError):
            check_fraction(0.0, "x", inclusive_low=False)


class TestRunningMeanVar:
    def test_matches_numpy(self, rng):
        values = rng.normal(3.0, 2.0, size=200)
        acc = RunningMeanVar()
        acc.add_many(values)
        assert acc.mean == pytest.approx(values.mean())
        assert acc.variance == pytest.approx(values.var(ddof=1))
        assert acc.std == pytest.approx(values.std(ddof=1))

    def test_empty_defaults(self):
        acc = RunningMeanVar()
        assert acc.mean == 0.0
        assert acc.variance == 0.0

    def test_single_sample_variance_zero(self):
        acc = RunningMeanVar()
        acc.add(5.0)
        assert acc.variance == 0.0
        assert acc.mean == 5.0


class TestSummarize:
    def test_summary_fields(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.median == pytest.approx(2.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_single_value_std_zero(self):
        assert summarize([3.0]).std == 0.0
