"""Tests for the cheap vectorization schemes."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError, NotFittedError
from repro.index.vectorize import (
    IdentityVectorizer,
    ImageVectorizer,
    TabularVectorizer,
)


class TestIdentityVectorizer:
    def test_scalars_become_column(self):
        out = IdentityVectorizer().fit_transform([1.0, 2.0, 3.0])
        assert out.shape == (3, 1)

    def test_vectors_pass_through(self):
        out = IdentityVectorizer().fit_transform([[1, 2], [3, 4]])
        assert out.shape == (2, 2)
        assert np.allclose(out, [[1, 2], [3, 4]])

    def test_3d_rejected(self):
        with pytest.raises(ConfigurationError):
            IdentityVectorizer().transform(np.zeros((2, 2, 2)))


class TestTabularVectorizer:
    ROWS = [
        {"a": 1.0, "b": True, "c": 10.0},
        {"a": 3.0, "b": False, "c": None},
        {"a": 5.0, "b": True, "c": 20.0},
    ]

    def test_needs_columns(self):
        with pytest.raises(ConfigurationError):
            TabularVectorizer([])

    def test_transform_before_fit(self):
        with pytest.raises(NotFittedError):
            TabularVectorizer(["a"]).transform(self.ROWS)

    def test_output_is_z_normalized(self):
        out = TabularVectorizer(["a"]).fit_transform(self.ROWS)
        assert out[:, 0].mean() == pytest.approx(0.0, abs=1e-12)
        assert out[:, 0].std() == pytest.approx(1.0, abs=1e-12)

    def test_booleans_become_numeric(self):
        vec = TabularVectorizer(["b"])
        raw = vec._raw_matrix(self.ROWS)
        assert raw[:, 0].tolist() == [1.0, 0.0, 1.0]

    def test_missing_imputed_with_mean(self):
        vec = TabularVectorizer(["c"]).fit(self.ROWS)
        out = vec.transform(self.ROWS)
        # None imputes to the mean (15.0) which normalizes to ~0.
        assert out[1, 0] == pytest.approx(0.0, abs=1e-12)

    def test_missing_column_imputes_to_zero(self):
        rows = [{"x": None}, {"x": None}]
        out = TabularVectorizer(["x"]).fit_transform(rows)
        assert np.allclose(out, 0.0)

    def test_constant_column_no_division_by_zero(self):
        rows = [{"x": 7.0}, {"x": 7.0}]
        out = TabularVectorizer(["x"]).fit_transform(rows)
        assert np.isfinite(out).all()
        assert np.allclose(out, 0.0)

    def test_non_numeric_cell_treated_missing(self):
        rows = [{"x": "oops"}, {"x": 4.0}, {"x": 6.0}]
        out = TabularVectorizer(["x"]).fit_transform(rows)
        assert np.isfinite(out).all()

    def test_absent_key_treated_missing(self):
        rows = [{"y": 1.0}, {"x": 4.0, "y": 2.0}]
        out = TabularVectorizer(["x", "y"]).fit_transform(rows)
        assert np.isfinite(out).all()

    def test_fit_statistics_reused_on_transform(self):
        vec = TabularVectorizer(["a"]).fit(self.ROWS)
        out = vec.transform([{"a": 3.0}])
        # 3.0 is the fitted mean -> exactly 0 after normalization.
        assert out[0, 0] == pytest.approx(0.0, abs=1e-12)


class TestImageVectorizer:
    def test_passthrough_at_target_size(self):
        image = np.random.default_rng(0).uniform(size=(16, 16, 3))
        out = ImageVectorizer(side=16).transform([image])
        assert out.shape == (1, 16 * 16 * 3)
        assert np.allclose(out[0], image.ravel())

    def test_downsample_shape(self):
        image = np.random.default_rng(0).uniform(size=(64, 48, 3))
        out = ImageVectorizer(side=16).transform([image])
        assert out.shape == (1, 16 * 16 * 3)

    def test_grayscale_promoted_to_channel(self):
        image = np.random.default_rng(0).uniform(size=(32, 32))
        out = ImageVectorizer(side=8).transform([image])
        assert out.shape == (1, 8 * 8 * 1)

    def test_constant_image_stays_constant(self):
        image = np.full((40, 40, 3), 0.7)
        out = ImageVectorizer(side=16).transform([image])
        assert np.allclose(out, 0.7)

    def test_downsample_preserves_mean_roughly(self):
        rng = np.random.default_rng(1)
        image = rng.uniform(size=(64, 64, 3))
        out = ImageVectorizer(side=16).transform([image])
        assert out.mean() == pytest.approx(image.mean(), abs=0.02)

    def test_invalid_side(self):
        with pytest.raises(ConfigurationError):
            ImageVectorizer(side=0)

    def test_4d_rejected(self):
        with pytest.raises(ConfigurationError):
            ImageVectorizer().transform([np.zeros((2, 2, 2, 2))])
