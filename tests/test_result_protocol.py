"""The unified result protocol, asserted across all three result types.

One parametrized suite: whatever execution mode a query takes — single
engine, sharded rounds, or barrier-free streaming — the returned object
implements :class:`repro.core.result.ResultBase` with consistent
``items`` / ``ids`` / ``scores`` / ``summary()`` / ``budget_spent`` /
``displacement_bound`` / ``to_json()`` behaviour.
"""

from __future__ import annotations

import json

import pytest

from repro.core.result import QueryResult, ResultBase
from repro.data.synthetic import SyntheticClustersDataset
from repro.index.builder import IndexConfig
from repro.parallel.engine import DistributedResult
from repro.scoring.base import FixedPerCallLatency
from repro.scoring.relu import ReluScorer
from repro.session import OpaqueQuerySession
from repro.streaming.engine import StreamingResult

QUERIES = {
    "single": "SELECT TOP 5 FROM t ORDER BY relu BUDGET 150 SEED 0",
    "sharded": "SELECT TOP 5 FROM t ORDER BY relu BUDGET 150 SEED 0 "
               "WORKERS 2",
    "streaming": "SELECT TOP 5 FROM t ORDER BY relu BUDGET 150 SEED 0 "
                 "WORKERS 2 STREAM",
}
EXPECTED_TYPE = {
    "single": QueryResult,
    "sharded": DistributedResult,
    "streaming": StreamingResult,
}


@pytest.fixture(scope="module")
def session():
    dataset = SyntheticClustersDataset.generate(n_clusters=4,
                                                per_cluster=100, rng=0)
    sess = OpaqueQuerySession()
    sess.register_table("t", dataset, index_config=IndexConfig(n_clusters=4))
    sess.register_udf("relu", ReluScorer(FixedPerCallLatency(1e-3)))
    return sess


@pytest.fixture(scope="module")
def results(session):
    return {mode: session.execute(sql) for mode, sql in QUERIES.items()}


@pytest.mark.parametrize("mode", list(QUERIES))
class TestResultProtocol:
    def test_is_result_base_of_expected_type(self, results, mode):
        result = results[mode]
        assert isinstance(result, ResultBase)
        assert isinstance(result, EXPECTED_TYPE[mode])
        assert result.kind == mode

    def test_items_ids_scores_consistent(self, results, mode):
        result = results[mode]
        assert len(result.items) == 5
        assert result.ids == [element_id for element_id, _ in result.items]
        assert result.scores == [score for _, score in result.items]
        assert result.scores == sorted(result.scores, reverse=True)

    def test_budget_spent(self, results, mode):
        result = results[mode]
        assert isinstance(result.budget_spent, int)
        assert result.budget_spent == 150

    def test_displacement_bound_in_unit_interval(self, results, mode):
        assert 0.0 <= results[mode].displacement_bound <= 1.0

    def test_summary_mentions_k_and_stk(self, results, mode):
        summary = results[mode].summary()
        assert isinstance(summary, str) and summary.startswith("top-5")
        assert "STK=" in summary

    def test_to_json_shared_surface(self, results, mode):
        payload = results[mode].to_json()
        for key in ("kind", "k", "items", "stk", "budget_spent",
                    "displacement_bound", "summary"):
            assert key in payload, key
        assert payload["kind"] == mode
        assert payload["k"] == 5
        assert payload["budget_spent"] == 150
        assert payload["items"] == [[element_id, score]
                                    for element_id, score
                                    in results[mode].items]
        # The whole payload (extras included) must serialize losslessly.
        assert json.loads(json.dumps(payload)) == payload


class TestTypeSpecificExtras:
    def test_single_extras(self, results):
        payload = results["single"].to_json()
        assert {"n_batches", "n_explore", "n_exploit",
                "exhausted"} <= payload.keys()

    def test_sharded_extras(self, results):
        payload = results["sharded"].to_json()
        assert payload["backend"] == "serial"
        assert len(payload["workers"]) == 2

    def test_streaming_extras(self, results):
        payload = results["streaming"].to_json()
        assert payload["converged"] is True
        assert payload["n_merges"] >= 1
        assert payload["progressive"]


class TestExhaustedCertificate:
    def test_exhaustive_single_run_is_exact(self, session):
        result = session.execute("SELECT TOP 5 FROM t ORDER BY relu SEED 0")
        assert result.budget_spent == 400  # the whole table
        assert result.displacement_bound == 0.0
        assert result.to_json()["exhausted"] is True

    def test_budgeted_single_run_has_no_certificate(self, results):
        assert results["single"].displacement_bound == 1.0
