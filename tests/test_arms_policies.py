"""Tests for arm sampling and exploration schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.arms import ArmState
from repro.core.policies import (
    ConstantEpsilon,
    FrontLoadedExploration,
    PolynomialDecay,
)
from repro.errors import ConfigurationError, ExhaustedError


class TestArmState:
    def test_draw_without_replacement_is_a_permutation(self):
        members = [f"e{i}" for i in range(50)]
        arm = ArmState("arm", members, rng=0)
        drawn = [arm.draw() for _ in range(50)]
        assert sorted(drawn) == sorted(members)
        assert arm.is_empty

    def test_draw_from_empty_raises(self):
        arm = ArmState("arm", [], rng=0)
        with pytest.raises(ExhaustedError):
            arm.draw()

    def test_draw_batch_short_when_exhausting(self):
        arm = ArmState("arm", ["a", "b", "c"], rng=0)
        batch = arm.draw_batch(10)
        assert sorted(batch) == ["a", "b", "c"]
        assert arm.draw_batch(5) == []

    def test_remaining_counts_down(self):
        arm = ArmState("arm", ["a", "b", "c"], rng=0)
        assert arm.remaining == 3
        arm.draw()
        assert arm.remaining == 2
        assert arm.n_drawn == 1

    def test_seeded_order_is_deterministic(self):
        order1 = [ArmState("a", list("abcdef"), rng=5).draw() for _ in range(1)]
        order2 = [ArmState("a", list("abcdef"), rng=5).draw() for _ in range(1)]
        assert order1 == order2

    def test_draw_is_roughly_uniform(self):
        # First draw over 4 members should hit each about n/4 times.
        counts = {m: 0 for m in "abcd"}
        for seed in range(400):
            arm = ArmState("a", list("abcd"), rng=seed)
            counts[arm.draw()] += 1
        for member, count in counts.items():
            assert 50 < count < 150, (member, count)

    def test_peek_members_readonly_view(self):
        arm = ArmState("a", ["x", "y"], rng=0)
        view = arm.peek_members()
        assert sorted(view) == ["x", "y"]
        assert isinstance(view, tuple)


class TestPolynomialDecay:
    def test_paper_schedule_values(self):
        sched = PolynomialDecay()
        assert sched.rate(1) == 1.0
        assert sched.rate(8) == pytest.approx(0.5)
        assert sched.rate(1000) == pytest.approx(0.1)

    def test_capped_at_one(self):
        assert PolynomialDecay().rate(0) == 1.0

    def test_invalid_exponent(self):
        with pytest.raises(ValueError):
            PolynomialDecay(exponent=0.5)

    def test_effective_rate_divides_by_batch(self):
        sched = PolynomialDecay()
        # t=800, batch=100 -> effective t=8 -> rate 0.5.
        assert sched.effective_rate(800, 100) == pytest.approx(0.5)

    def test_effective_rate_floors_at_one(self):
        sched = PolynomialDecay()
        assert sched.effective_rate(3, 100) == 1.0


class TestConstantEpsilon:
    def test_constant(self):
        sched = ConstantEpsilon(0.2)
        assert sched.rate(1) == 0.2
        assert sched.rate(10**6) == 0.2

    def test_bounds_enforced(self):
        with pytest.raises(ConfigurationError):
            ConstantEpsilon(1.5)


class TestFrontLoaded:
    def test_cutoff_scaling(self):
        sched = FrontLoadedExploration(budget=1000)
        assert sched.cutoff == round(1000 ** (2 / 3))
        assert sched.rate(1) == 1.0
        assert sched.rate(sched.cutoff) == 1.0
        assert sched.rate(sched.cutoff + 1) == 0.0

    def test_c_multiplier(self):
        base = FrontLoadedExploration(budget=1000, c=1.0).cutoff
        double = FrontLoadedExploration(budget=1000, c=2.0).cutoff
        assert double == 2 * base

    def test_invalid_budget(self):
        with pytest.raises(ConfigurationError):
            FrontLoadedExploration(budget=0)
