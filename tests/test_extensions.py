"""Tests for the Section 7 extensions: data acquisition, fixed-budget
execution, and the declarative session interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.applications.acquisition import (
    DataSourceUnion,
    UncertaintyScorer,
    acquire_topk,
)
from repro.core.budgeted import budgeted_config, run_budgeted
from repro.core.engine import EngineConfig, TopKEngine
from repro.core.policies import FrontLoadedExploration
from repro.data.synthetic import SyntheticClustersDataset
from repro.errors import ConfigurationError
from repro.index.builder import IndexConfig, build_index
from repro.scoring.base import FunctionScorer
from repro.scoring.linear import LogisticRegressionModel
from repro.scoring.relu import ReluScorer
from repro.session import OpaqueQuerySession, parse_query


class TestDataSourceUnion:
    def make_union(self, rng):
        union = DataSourceUnion()
        for name, center in (("vendor", 0.0), ("crawl", 5.0)):
            points = rng.normal(center, 1.0, size=(50, 2))
            union.add_source(
                name,
                [f"{i}" for i in range(50)],
                [row for row in points],
                features=points,
            )
        return union

    def test_namespacing(self, rng):
        union = self.make_union(rng)
        assert len(union.ids()) == 100
        assert union.source_of("vendor/3") == "vendor"
        assert union.fetch("crawl/0") is not None

    def test_duplicate_source_rejected(self, rng):
        union = self.make_union(rng)
        with pytest.raises(ConfigurationError):
            union.add_source("vendor", ["x"], [1])

    def test_slash_in_name_rejected(self):
        with pytest.raises(ConfigurationError):
            DataSourceUnion().add_source("a/b", ["x"], [1])

    def test_empty_source_rejected(self):
        with pytest.raises(ConfigurationError):
            DataSourceUnion().add_source("a", [], [])

    def test_cluster_tree_one_arm_per_source(self, rng):
        union = self.make_union(rng)
        tree = union.as_cluster_tree()
        assert tree.n_leaves() == 2
        assert tree.n_elements() == 100

    def test_empty_union_rejected(self):
        with pytest.raises(ConfigurationError):
            DataSourceUnion().as_cluster_tree()


class TestUncertaintyScorer:
    def test_boundary_scores_highest(self, rng):
        X = np.vstack([
            rng.normal(-3, 0.5, size=(100, 1)),
            rng.normal(3, 0.5, size=(100, 1)),
        ])
        y = np.concatenate([np.zeros(100), np.ones(100)])
        model = LogisticRegressionModel(rng=0).fit(X, y)
        scorer = UncertaintyScorer(model)
        near = scorer.score(np.asarray([0.0]))
        far = scorer.score(np.asarray([5.0]))
        assert near > 0.8
        assert far < 0.2

    def test_batch_matches_single(self, rng):
        X = rng.normal(size=(50, 2))
        y = (X[:, 0] > 0).astype(float)
        model = LogisticRegressionModel(rng=0).fit(X, y)
        scorer = UncertaintyScorer(model)
        objs = [X[i] for i in range(5)]
        assert np.allclose(scorer.score_batch(objs),
                           [scorer.score(o) for o in objs])

    def test_scores_in_unit_interval(self, rng):
        X = rng.normal(size=(60, 2))
        y = (X.sum(axis=1) > 0).astype(float)
        model = LogisticRegressionModel(rng=0).fit(X, y)
        scores = UncertaintyScorer(model).score_batch(list(X))
        assert (scores >= 0).all() and (scores <= 1).all()


class TestAcquireTopK:
    def test_concentrates_on_boundary_source(self, rng):
        """The source straddling the decision boundary should dominate."""
        X_train = np.vstack([
            rng.normal(-3, 0.8, size=(80, 2)),
            rng.normal(3, 0.8, size=(80, 2)),
        ])
        y_train = np.concatenate([np.zeros(80), np.ones(80)])
        model = LogisticRegressionModel(rng=0).fit(X_train, y_train)

        union = DataSourceUnion()
        certain = rng.normal(-4, 0.4, size=(150, 2))  # deep in class 0
        boundary = rng.normal(0, 0.4, size=(150, 2))  # on the boundary
        union.add_source("certain", [str(i) for i in range(150)],
                         list(certain), features=certain)
        union.add_source("boundary", [str(i) for i in range(150)],
                         list(boundary), features=boundary)

        report = acquire_topk(union, UncertaintyScorer(model), k=30,
                              budget=180, seed=0)
        assert len(report.acquired_ids) == 30
        assert report.per_source_counts["boundary"] > \
            report.per_source_counts["certain"]
        assert "boundary" in report.summary()

    def test_config_k_mismatch_rejected(self, rng):
        union = DataSourceUnion()
        union.add_source("s", ["a", "b"], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            acquire_topk(union, ReluScorer(), k=1, budget=2,
                         config=EngineConfig(k=5))


class TestBudgetedExecution:
    def test_config_front_loads_exploration(self):
        base = EngineConfig(k=10)
        config = budgeted_config(base, budget=1000)
        assert isinstance(config.exploration, FrontLoadedExploration)
        assert config.exploration.cutoff == round(1000 ** (2 / 3))
        # Base is untouched (dataclasses.replace).
        assert not isinstance(base.exploration, FrontLoadedExploration)

    def test_tiny_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            budgeted_config(EngineConfig(k=5), budget=2)

    def test_run_budgeted_quality(self):
        dataset = SyntheticClustersDataset.generate(n_clusters=8,
                                                    per_cluster=150, rng=1)
        index = dataset.true_index()
        result = run_budgeted(index, dataset, ReluScorer(), k=15,
                              budget=len(dataset) // 4, seed=0)
        assert result.n_scored == len(dataset) // 4
        # Exploration happened only at the front.
        assert result.n_explore > 0
        truth_best = max(dataset.fetch(i) for i in dataset.ids())
        assert result.scores[0] > 0.7 * truth_best

    def test_k_mismatch_rejected(self):
        dataset = SyntheticClustersDataset.generate(n_clusters=3,
                                                    per_cluster=30, rng=0)
        with pytest.raises(ConfigurationError):
            run_budgeted(dataset.true_index(), dataset, ReluScorer(), k=5,
                         budget=50, base=EngineConfig(k=9))


class TestParseQuery:
    def test_minimal(self):
        parsed = parse_query("SELECT TOP 10 FROM t ORDER BY f")
        assert parsed.k == 10 and parsed.table == "t" and parsed.udf == "f"
        assert parsed.budget is None and parsed.budget_fraction is None
        assert parsed.batch_size == 1 and parsed.seed is None

    def test_full_clause(self):
        parsed = parse_query(
            "select top 250 from listings order by valuation desc "
            "budget 10% batch 32 seed 7;"
        )
        assert parsed.k == 250
        assert parsed.table == "listings"
        assert parsed.udf == "valuation"
        assert parsed.budget_fraction == pytest.approx(0.1)
        assert parsed.batch_size == 32
        assert parsed.seed == 7

    def test_absolute_budget(self):
        parsed = parse_query("SELECT TOP 5 FROM t ORDER BY f BUDGET 500")
        assert parsed.budget == 500 and parsed.budget_fraction is None

    def test_malformed_rejected(self):
        for bad in (
            "SELECT * FROM t",
            "SELECT TOP FROM t ORDER BY f",
            "SELECT TOP 5 FROM t",
            "SELECT TOP 5 FROM t ORDER BY f BUDGET 200%",
        ):
            with pytest.raises(ConfigurationError):
                parse_query(bad)


class TestOpaqueQuerySession:
    @pytest.fixture
    def session(self):
        dataset = SyntheticClustersDataset.generate(n_clusters=6,
                                                    per_cluster=100, rng=4)
        session = OpaqueQuerySession()
        session.register_table("numbers", dataset,
                               index_config=IndexConfig(n_clusters=6))
        session.register_udf("relu", ReluScorer())
        session.register_udf("squared",
                             FunctionScorer(lambda v: float(v) ** 2))
        return session

    def test_execute_returns_k_rows(self, session):
        result = session.execute(
            "SELECT TOP 7 FROM numbers ORDER BY relu BUDGET 40% SEED 1"
        )
        assert len(result.items) == 7
        assert result.n_scored == int(0.4 * 600)

    def test_index_reused_across_udfs(self, session):
        session.execute("SELECT TOP 3 FROM numbers ORDER BY relu BUDGET 100")
        index_first = session._indexes["numbers"]
        session.execute("SELECT TOP 3 FROM numbers ORDER BY squared BUDGET 100")
        assert session._indexes["numbers"] is index_first

    def test_unknown_table(self, session):
        with pytest.raises(ConfigurationError):
            session.execute("SELECT TOP 3 FROM nope ORDER BY relu")

    def test_unknown_udf(self, session):
        with pytest.raises(ConfigurationError):
            session.execute("SELECT TOP 3 FROM numbers ORDER BY nope")

    def test_duplicate_registration_rejected(self, session):
        with pytest.raises(ConfigurationError):
            session.register_udf("relu", ReluScorer())

    def test_prebuilt_index_accepted(self):
        dataset = SyntheticClustersDataset.generate(n_clusters=4,
                                                    per_cluster=50, rng=0)
        session = OpaqueQuerySession()
        session.register_table("t", dataset, index=dataset.true_index())
        session.register_udf("relu", ReluScorer())
        result = session.execute("SELECT TOP 5 FROM t ORDER BY relu BUDGET 50")
        assert len(result.items) == 5

    def test_prebuilt_index_coverage_checked(self):
        dataset = SyntheticClustersDataset.generate(n_clusters=4,
                                                    per_cluster=50, rng=0)
        other = SyntheticClustersDataset.generate(n_clusters=2,
                                                  per_cluster=10, rng=1)
        session = OpaqueQuerySession()
        with pytest.raises(ConfigurationError):
            session.register_table("t", dataset, index=other.true_index())
