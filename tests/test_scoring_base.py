"""Tests for scorer protocol, latency models, and accounting wrappers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.scoring.base import (
    AmortizedBatchLatency,
    CountingScorer,
    FixedPerCallLatency,
    FunctionScorer,
    ZeroLatency,
)
from repro.scoring.relu import ReluScorer


class TestLatencyModels:
    def test_zero_latency(self):
        assert ZeroLatency().batch_cost(100) == 0.0

    def test_fixed_per_call(self):
        model = FixedPerCallLatency(2e-3)
        assert model.batch_cost(1) == pytest.approx(2e-3)
        assert model.batch_cost(10) == pytest.approx(2e-2)
        assert model.per_element_cost(10) == pytest.approx(2e-3)

    def test_fixed_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedPerCallLatency(-1.0)

    def test_amortized_shape(self):
        """Per-element latency decreases with diminishing returns (Fig. 8a)."""
        model = AmortizedBatchLatency(launch=2.0, per_element=8e-3)
        costs = [model.per_element_cost(b) for b in (1, 10, 100, 1000)]
        assert all(a > b for a, b in zip(costs, costs[1:]))
        # Asymptote is the compute-bound per-element cost.
        assert costs[-1] == pytest.approx(8e-3, rel=0.5)

    def test_amortized_memory_linear(self):
        model = AmortizedBatchLatency(base_memory=100, per_element_memory=10)
        assert model.memory_bytes(0) == 100
        assert model.memory_bytes(5) == 150

    def test_zero_batch_costs_nothing(self):
        assert AmortizedBatchLatency().batch_cost(0) == 0.0


class TestFunctionScorer:
    def test_scalar_function(self):
        scorer = FunctionScorer(lambda x: x * 2.0)
        assert scorer.score(3.0) == 6.0
        assert np.allclose(scorer.score_batch([1.0, 2.0]), [2.0, 4.0])

    def test_vectorized_batch_function(self):
        scorer = FunctionScorer(
            lambda x: float(x) + 1.0,
            batch_fn=lambda xs: np.asarray(xs, dtype=float) + 1.0,
        )
        assert np.allclose(scorer.score_batch([0.0, 1.0]), [1.0, 2.0])

    def test_latency_attached(self):
        scorer = FunctionScorer(lambda x: x, latency=FixedPerCallLatency(1.0))
        assert scorer.batch_cost(3) == 3.0


class TestCountingScorer:
    def test_counts_and_cost(self):
        inner = ReluScorer(FixedPerCallLatency(0.5))
        counting = CountingScorer(inner)
        counting.score(1.0)
        counting.score_batch([1.0, 2.0, 3.0])
        assert counting.n_elements == 4
        assert counting.n_batches == 2
        assert counting.virtual_cost == pytest.approx(0.5 + 1.5)

    def test_delegates_scores(self):
        counting = CountingScorer(ReluScorer())
        assert counting.score(-5.0) == 0.0
        assert np.allclose(counting.score_batch([-1.0, 2.0]), [0.0, 2.0])


class TestReluScorer:
    def test_clamps_negative(self):
        assert ReluScorer().score(-3.0) == 0.0
        assert ReluScorer().score(4.0) == 4.0

    def test_batch(self):
        out = ReluScorer().score_batch([-1.0, 0.0, 2.5])
        assert np.allclose(out, [0.0, 0.0, 2.5])
