"""Property/fuzz tests for the dialect parser.

Three properties, each over a few hundred seeded-random cases (fast
enough for tier-1; CI also runs this file in a dedicated job):

* **Round-trip** — for any random :class:`~repro.query.plan.QueryPlan`,
  ``parse(plan.canonical_text()) == plan``.
* **Order-insensitivity** — the optional clauses of a statement parse to
  the same plan under every random permutation.
* **Total error discipline** — arbitrary malformed inputs (mutations of
  valid statements and raw garbage) either parse or raise
  :class:`~repro.errors.ConfigurationError`; never ``IndexError`` /
  ``AttributeError`` / anything else.
"""

from __future__ import annotations

import random
import string

import pytest

from repro.errors import ConfigurationError
from repro.query import And, Comparison, Not, Or, QueryPlan, parse
from repro.query.parser import _CLAUSE_KEYWORDS

N_CASES = 300


def random_predicate(rng: random.Random, depth: int = 0):
    """A random WHERE AST, biased toward leaves as depth grows."""
    roll = rng.random() * (0.5 ** depth)
    value = rng.choice([0, 1, 7, 0.5, 2.25, 100, -3, -0.75, 1e-7])
    leaf = Comparison(
        feature=rng.randrange(4),
        op=rng.choice(["<", "<=", ">", ">=", "=", "!="]),
        value=float(value),
    )
    if roll < 0.15:
        return leaf
    if roll < 0.25:
        return Not(random_predicate(rng, depth + 1))
    connective = And if rng.random() < 0.5 else Or
    return connective(tuple(
        random_predicate(rng, depth + 1)
        for _ in range(rng.randint(2, 3))
    ))


def random_plan(rng: random.Random) -> QueryPlan:
    """A random, internally consistent logical plan."""
    budget = None
    fraction = None
    if rng.random() < 0.4:
        budget = rng.randint(1, 100_000)
    elif rng.random() < 0.5:
        fraction = rng.choice([0.01, 0.1, 0.25, 0.5, 1.0])
    workers = rng.choice([None, 1, 2, 8])
    backend = (rng.choice([None, "serial", "thread", "process"])
               if workers is not None else None)
    stream = rng.random() < 0.5
    return QueryPlan(
        k=rng.randint(1, 500),
        table=rng.choice(["t", "listings", "demo_2"]),
        udf=rng.choice(["f", "valuation", "relu_score"]),
        budget=budget,
        budget_fraction=fraction,
        batch_size=rng.choice([1, 4, 64]),
        seed=rng.choice([None, 0, 7, 12345]),
        workers=workers,
        backend=backend,
        stream=stream,
        every=rng.choice([None, 1, 250]) if stream else None,
        confidence=rng.choice([None, 0.5, 0.95]) if stream else None,
        where=random_predicate(rng) if rng.random() < 0.5 else None,
        explain=rng.random() < 0.2,
    )


class TestRoundTrip:
    def test_plan_to_text_to_plan(self):
        rng = random.Random(0xC0FFEE)
        for _ in range(N_CASES):
            plan = random_plan(rng)
            text = plan.canonical_text()
            assert parse(text) == plan, text

    def test_canonical_text_is_fixed_point(self):
        rng = random.Random(0xBEEF)
        for _ in range(100):
            plan = random_plan(rng)
            text = plan.canonical_text()
            assert parse(text).canonical_text() == text


class TestOrderInsensitivity:
    def test_random_clause_permutations(self):
        rng = random.Random(42)
        for _ in range(N_CASES):
            plan = random_plan(rng)
            text = plan.canonical_text()
            head, _, tail = text.partition(f" ORDER BY {plan.udf}")
            clauses = tail.split()
            # Group each clause keyword with its operand tokens ("BUDGET
            # 10%" travels as one unit, a WHERE predicate — including its
            # AND/OR/NOT connectives — stays whole).
            groups = []
            for token in clauses:
                if token.upper() in _CLAUSE_KEYWORDS:
                    groups.append([token])
                else:
                    groups[-1].append(token)
            rng.shuffle(groups)
            shuffled = " ".join(
                [head + f" ORDER BY {plan.udf}"]
                + [" ".join(group) for group in groups]
            )
            assert parse(shuffled) == plan, shuffled


def mutate(text: str, rng: random.Random) -> str:
    """One random mutation: drop/duplicate/swap tokens or inject noise."""
    tokens = text.split()
    roll = rng.randrange(6)
    if roll == 0 and len(tokens) > 1:
        del tokens[rng.randrange(len(tokens))]
    elif roll == 1:
        position = rng.randrange(len(tokens))
        tokens.insert(position, tokens[position])
    elif roll == 2 and len(tokens) > 2:
        i, j = rng.sample(range(len(tokens)), 2)
        tokens[i], tokens[j] = tokens[j], tokens[i]
    elif roll == 3:
        tokens.insert(rng.randrange(len(tokens) + 1), rng.choice(
            ["%", "(", ")", "[", "]", ";", "<=", "0.0.0", "__x", "WHERE"]
        ))
    elif roll == 4:
        return text[:rng.randrange(len(text) + 1)]
    else:
        position = rng.randrange(len(text) + 1)
        noise = "".join(rng.choices(string.printable, k=rng.randint(1, 5)))
        return text[:position] + noise + text[position:]
    return " ".join(tokens)


class TestMalformedInputsRaiseCleanly:
    def test_mutated_statements(self):
        rng = random.Random(1337)
        for _ in range(N_CASES):
            text = random_plan(rng).canonical_text()
            for _ in range(rng.randint(1, 3)):
                text = mutate(text, rng)
            try:
                parse(text)
            except ConfigurationError:
                pass  # the only acceptable failure mode

    def test_raw_garbage(self):
        rng = random.Random(2024)
        for _ in range(N_CASES):
            text = "".join(
                rng.choices(string.printable, k=rng.randint(0, 60))
            )
            try:
                parse(text)
            except ConfigurationError:
                pass

    @pytest.mark.parametrize("text", [
        "", ";", "SELECT", "SELECT TOP", "SELECT TOP 5",
        "SELECT TOP 5 FROM", "SELECT TOP 5 FROM t ORDER",
        "SELECT TOP 5 FROM t ORDER BY", "\n", "(((((", "]]]]]",
    ])
    def test_truncations_raise_configuration_error(self, text):
        with pytest.raises(ConfigurationError):
            parse(text)

    def test_non_string_rejected(self):
        with pytest.raises(ConfigurationError):
            parse(None)
