"""Live tables: versioned writes, incremental maintenance, standing queries.

Four contracts under test:

* **Snapshot isolation** — a query plans against one pinned
  ``TableSnapshot``; writes racing the execution (or landing mid-drive)
  never change that query's answer vs its pre-write solo run, on every
  backend.
* **Incremental index maintenance** — after appends/updates/deletes the
  incrementally maintained cluster tree answers exhaustive queries
  *identically* to a freshly rebuilt index, across the full
  {single, sharded, streaming} x {serial, thread, process} matrix, warm
  and cold memo (the differential the tentpole demands: tree shape may
  differ, answers may not).
* **MVCC memo** — a committed write invalidates exactly the rewritten
  ids; re-running after a write scores only those, and version-stamped
  memo snapshots refuse to revive against a different table version.
* **Standing queries** — ``CONTINUOUS`` re-emits exact top-k snapshots
  on answer-changing commits only, without rescoring unchanged
  memoized elements, re-arms its budget grant between cycles, and
  disconnects cleanly (driver-level and service-hosted).
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.live import ContinuousQuery, IndexMaintainer, LiveTable

EXHAUSTIVE = "SELECT TOP 5 FROM t ORDER BY f SEED 3"

#: The full execution matrix (mode label -> execute kwargs).
MATRIX = {
    "single": {},
    "sharded-serial": {"workers": 2, "backend": "serial"},
    "sharded-thread": {"workers": 2, "backend": "thread"},
    "sharded-process": {"workers": 2, "backend": "process"},
    "streaming-serial": {"workers": 2, "backend": "serial", "stream": True},
    "streaming-thread": {"workers": 2, "backend": "thread", "stream": True},
    "streaming-process": {"workers": 2, "backend": "process", "stream": True},
}


def make_live_table(n_rows: int = 100, seed: int = 0, n_features: int = 3,
                    name: str = "t") -> LiveTable:
    """The live twin of :func:`tests.conftest.make_table`."""
    generator = np.random.default_rng(seed)
    features = generator.normal(size=(n_rows, n_features))
    features[:, 1] = (np.arange(n_rows) % 10) / 10.0
    ids = [f"e{i:05d}" for i in range(n_rows)]
    return LiveTable(ids, features[:, 0].tolist(), features, name=name)


def make_live_session(table: LiveTable | None = None, *, n_clusters: int = 5,
                      enable_cache: bool = True):
    """``(session, scorer, table)`` with live table ``t`` and UDF ``f``."""
    from repro.index.builder import IndexConfig
    from repro.scoring.base import CountingScorer, FunctionScorer
    from repro.session import OpaqueQuerySession

    if table is None:
        table = make_live_table()
    scorer = CountingScorer(FunctionScorer(lambda v: max(0.0, float(v))))
    session = OpaqueQuerySession(enable_cache=enable_cache)
    session.register_table("t", table,
                           index_config=IndexConfig(n_clusters=n_clusters))
    session.register_udf("f", scorer)
    return session, scorer, table


def append_rows(table: LiveTable, values, prefix: str = "new") -> list:
    """Append scalar-valued rows matching the test table's feature layout."""
    values = [float(v) for v in values]
    ids = [f"{prefix}-{i:04d}" for i in range(len(values))]
    features = np.zeros((len(values), table._dim))
    features[:, 0] = values
    table.append(ids, values, features)
    return ids


def answer(result):
    """The order-sensitive exact answer: ((id, score), ...) plus stk."""
    items = getattr(result, "items", None)
    if items is None:          # ProgressiveResult carries top_k instead
        items = result.top_k
    return tuple((str(i), float(s)) for i, s in items), float(result.stk)


# -- the versioned write surface ---------------------------------------------


class TestLiveTable:
    def test_writes_commit_monotone_versions(self):
        table = make_live_table(n_rows=10)
        assert table.version == 0
        v1 = append_rows(table, [3.0]) and table.version
        v2 = table.update(["e00001"], np.zeros((1, 3)))
        v3 = table.delete(["e00002"])
        assert (v1, v2, v3) == (1, 2, 3)
        deltas = table.deltas_since(0)
        assert [d.kind for d in deltas] == ["append", "update", "delete"]
        assert [d.version for d in deltas] == [1, 2, 3]
        assert table.deltas_since(2, upto=3)[0].kind == "delete"

    def test_snapshot_is_isolated_from_later_writes(self):
        table = make_live_table(n_rows=10)
        before = table.snapshot()
        old_row = before.feature_of("e00003").copy()
        table.update(["e00003"], np.full((1, 3), 9.0))
        table.delete(["e00004"])
        append_rows(table, [1.0])
        # The pinned snapshot still sees version-0 rows and membership.
        assert np.array_equal(before.feature_of("e00003"), old_row)
        assert "e00004" in before.ids()
        assert len(before) == 10
        after = table.snapshot()
        assert after.version == 3
        assert np.all(after.feature_of("e00003") == 9.0)
        assert "e00004" not in after.ids()

    def test_write_validation(self):
        table = make_live_table(n_rows=5)
        with pytest.raises(ConfigurationError):
            table.append(["e00001"], [0.0], np.zeros((1, 3)))  # duplicate
        with pytest.raises(ConfigurationError):
            table.update(["ghost"], np.zeros((1, 3)))
        with pytest.raises(ConfigurationError):
            table.delete([])
        with pytest.raises(ConfigurationError):
            LiveTable()  # empty without dim=
        assert len(LiveTable(dim=4)) == 0

    def test_wait_for_commit_wakes_on_write(self):
        table = make_live_table(n_rows=5)
        assert table.wait_for_commit(0, timeout=0.01) == 0  # timeout path
        timer = threading.Timer(0.05, append_rows, (table, [1.0]))
        timer.start()
        try:
            assert table.wait_for_commit(0, timeout=5.0) == 1
        finally:
            timer.cancel()


# -- incremental maintenance == fresh rebuild (the tentpole differential) ----


def _mutate(table: LiveTable) -> list:
    """A mixed write burst: dominating appends, updates, and deletes."""
    appended = append_rows(table, [5.5, 6.25, 7.125, 0.01, 0.02], "hi")
    table.update(["e00010", "e00011"],
                 np.column_stack([[4.75, 4.875],
                                  np.zeros(2), np.zeros(2)]),
                 objects=[4.75, 4.875])
    table.delete(["e00020", "e00021"])
    return appended


class TestIncrementalDifferential:
    @pytest.mark.parametrize("mode", list(MATRIX))
    def test_matches_fresh_rebuild_warm_and_cold(self, mode):
        kwargs = MATRIX[mode]
        table = make_live_table(n_rows=120, seed=5)
        session, _, _ = make_live_session(table)
        session.execute(EXHAUSTIVE, **kwargs)           # builds the index
        _mutate(table)

        warm = session.execute(EXHAUSTIVE, **kwargs)    # incremental + warm memo
        assert session.table_info("t")["index_freshness"] == "incremental"

        cold_session, _, _ = make_live_session(table)   # fresh build, cold memo
        cold = cold_session.execute(EXHAUSTIVE, **kwargs)
        assert cold_session.table_info("t")["index_freshness"] == "built"

        assert answer(warm) == answer(cold)
        assert {i for i, _ in warm.items} >= {"hi-0000", "hi-0001", "hi-0002"}

    def test_rebuild_threshold_fallback_matches_too(self):
        table = make_live_table(n_rows=40, seed=2)
        session, _, _ = make_live_session(table)
        session.execute(EXHAUSTIVE)
        # Churn past the threshold (0.5 x 40): the maintainer gives up on
        # routing and rebuilds — a fallback, not a failure.
        for burst in range(5):
            append_rows(table, 1.0 + np.arange(5) * 0.25 + burst,
                        prefix=f"b{burst}")
        incremental = session.execute(EXHAUSTIVE)
        assert session.table_info("t")["index_freshness"] == "rebuilt"
        fresh_session, _, _ = make_live_session(table)
        assert answer(incremental) == answer(fresh_session.execute(EXHAUSTIVE))

    def test_leaf_overflow_splits_and_preserves_membership(self):
        from repro.index.builder import IndexConfig, build_index

        table = make_live_table(n_rows=24, seed=9)
        snapshot = table.snapshot()
        tree = build_index(snapshot.features(), snapshot.ids(),
                           IndexConfig(n_clusters=3), rng=0)
        maintainer = IndexMaintainer(
            tree, snapshot, lambda snap: build_index(
                snap.features(), snap.ids(), IndexConfig(n_clusters=3),
                rng=0),
            max_leaf_size=6, rebuild_threshold=10.0)
        # A tight burst: every row routes to the same nearest-mean leaf,
        # overflowing it well past max_leaf_size.
        append_rows(table, 2.5 + np.arange(10) * 1e-4)
        report = maintainer.advance(table.deltas_since(0), table.snapshot())
        assert report.splits >= 1 and maintainer.n_splits >= 1
        assert maintainer.freshness == "incremental"
        members = {m for leaf in maintainer.tree.leaves()
                   for m in leaf.member_ids}
        assert members == set(table.snapshot().ids())
        # Every leaf the burst landed in was split back under the cap
        # (untouched leaves keep whatever size the builder gave them).
        assert all(len(leaf.member_ids) <= 6
                   for leaf in maintainer.tree.leaves()
                   if any(m.startswith("new-") for m in leaf.member_ids))

    def test_advance_never_mutates_published_tree(self):
        from repro.index.builder import IndexConfig, build_index

        table = make_live_table(n_rows=20, seed=1)
        snapshot = table.snapshot()
        tree = build_index(snapshot.features(), snapshot.ids(),
                           IndexConfig(n_clusters=3), rng=0)
        maintainer = IndexMaintainer(
            tree, snapshot, lambda snap: build_index(
                snap.features(), snap.ids(), IndexConfig(n_clusters=3),
                rng=0))
        pinned = maintainer.tree
        pinned_members = {m for leaf in pinned.leaves()
                          for m in leaf.member_ids}
        append_rows(table, [4.0, 5.0])
        maintainer.advance(table.deltas_since(0), table.snapshot())
        # An in-flight query holding the old tree sees exactly what it saw.
        assert {m for leaf in pinned.leaves()
                for m in leaf.member_ids} == pinned_members
        assert maintainer.tree is not pinned


# -- concurrent writers vs in-flight readers (snapshot isolation) ------------


class TestWriterReaderRace:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_append_mid_stream_never_changes_the_answer(self, backend):
        """An append racing a streaming drive is invisible to that drive."""
        query = "SELECT TOP 5 FROM t ORDER BY f SEED 3 STREAM EVERY 20"
        solo_session, _, _ = make_live_session(make_live_table(seed=13))
        baseline = None
        for baseline in solo_session.stream(query, workers=2,
                                            backend=backend):
            pass

        table = make_live_table(seed=13)
        session, _, _ = make_live_session(table)
        stream = session.stream(query, workers=2, backend=backend)
        next(stream)                       # plan pinned, shards running
        append_rows(table, [50.0, 60.0])   # would dominate the top-k
        last = None
        for last in stream:
            pass
        # Exact same top-k; stk only approx — racy arrival order on the
        # thread/process backends permutes the float summation.
        assert answer(last)[0] == answer(baseline)[0]
        assert last.stk == pytest.approx(baseline.stk)
        assert all(not i.startswith("new-") for i, _ in last.top_k)
        # The *next* query sees the committed rows.
        after = session.execute(EXHAUSTIVE)
        assert {i for i, _ in after.items[:2]} == {"new-0000", "new-0001"}

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_append_from_inside_the_scorer_is_invisible(self, backend):
        """A write committed *during* scoring doesn't leak into the run."""
        from repro.scoring.base import FunctionScorer

        solo_session, _, _ = make_live_session(make_live_table(seed=13))
        baseline = solo_session.execute(EXHAUSTIVE, workers=2,
                                        backend=backend)

        table = make_live_table(seed=13)
        session, _, _ = make_live_session(table)
        fired = threading.Event()

        def scoring_writer(value):
            if not fired.is_set():
                fired.set()
                append_rows(table, [50.0, 60.0])
            return max(0.0, float(value))

        # Same relu math as "f", but committing a write on first call.
        session.register_udf("w", FunctionScorer(scoring_writer))
        racy = session.execute(EXHAUSTIVE.replace("ORDER BY f",
                                                  "ORDER BY w"),
                               workers=2, backend=backend)
        assert fired.is_set() and table.version == 1
        assert [i for i, _ in racy.items] == [i for i, _ in baseline.items]


# -- MVCC memo and version-stamped snapshots ---------------------------------


class TestMemoVersioning:
    def test_update_invalidates_only_rewritten_ids(self):
        session, scorer, table = make_live_session()
        first = session.execute(EXHAUSTIVE)
        cold_calls = scorer.n_elements
        top_id = first.items[0][0]
        table.update([top_id], np.zeros((1, 3)), objects=[0.0])
        second = session.execute(EXHAUSTIVE)
        # Exactly one fresh UDF call: the rewritten element.
        assert scorer.n_elements - cold_calls == 1
        assert top_id not in [i for i, _ in second.items]

    def test_append_scores_only_the_new_rows(self):
        session, scorer, table = make_live_session()
        session.execute(EXHAUSTIVE)
        cold_calls = scorer.n_elements
        appended = append_rows(table, [9.0, 8.0, 0.5])
        second = session.execute(EXHAUSTIVE)
        assert scorer.n_elements - cold_calls == len(appended)
        assert [i for i, _ in second.items[:2]] == ["new-0000", "new-0001"]

    def test_store_pins_readers_to_their_snapshot(self):
        from repro.memo.store import MemoStore

        store = MemoStore()
        store.view("fp").record(["a", "b"], [1.0, 2.0])
        store.apply_writes(["a"], version=1)
        stale = store.view("fp", reader_version=0)
        scores, misses = stale.lookup(["a", "b"])
        assert scores == [None, 2.0] and misses == [0]
        # A stale reader's fresh score for a rewritten id is dropped, not
        # recorded — it describes rows that no longer exist.
        stale.record(["a"], [7.0])
        assert store.view("fp", reader_version=1).lookup(["a"])[0] == [None]
        store.view("fp", reader_version=1).record(["a"], [3.0])
        assert store.view("fp", reader_version=1).lookup(["a"])[0] == [3.0]

    def test_restore_memo_rejects_version_mismatch(self):
        from repro.core.snapshot import restore_memo, snapshot_memo

        session, _, table = make_live_session()
        session.execute(EXHAUSTIVE)
        append_rows(table, [2.0])
        session.execute(EXHAUSTIVE)
        store = session._memo_for("t")
        assert store.table_version == 1 and store.n_entries() > 0
        payload = snapshot_memo(store)
        assert payload["table_version"] == 1

        same, _ = restore_memo(payload, expected_table_version=1)
        assert same.n_entries() == store.n_entries()
        drifted, priors = restore_memo(payload, expected_table_version=4)
        # Mismatch: cleared, not silently served stale.
        assert drifted.n_entries() == 0 and drifted.table_version == 4
        assert len(priors) == 0

    @pytest.mark.parametrize("engine_mod", ["parallel", "streaming"])
    def test_engine_restore_rejects_version_drift(self, engine_mod):
        from repro.scoring.base import FunctionScorer
        from tests.conftest import make_table

        if engine_mod == "parallel":
            from repro.parallel.engine import ShardedTopKEngine as Engine
        else:
            from repro.streaming.engine import StreamingTopKEngine as Engine
        dataset = make_table()
        scorer = FunctionScorer(lambda v: max(0.0, float(v)))
        engine = Engine(dataset, scorer, k=5, n_workers=2, seed=0,
                        table_version=2)
        try:
            engine.run(60)
            payload = engine.snapshot()
        finally:
            engine.close()
        assert payload["table_version"] == 2
        restored = Engine.restore(dataset, scorer, payload, table_version=2)
        restored.close()
        with pytest.raises(ConfigurationError, match="table version"):
            Engine.restore(dataset, scorer, payload, table_version=3)

    def test_shard_cache_evicts_stale_versions(self):
        session, _, table = make_live_session()
        session.execute(EXHAUSTIVE, workers=2)
        cache = session._shard_cache_for("t")
        assert all(key[5] == 0 for key in cache._entries)
        append_rows(table, [1.0])
        session.execute(EXHAUSTIVE, workers=2)
        assert cache._entries and all(key[5] == 1 for key in cache._entries)


# -- standing CONTINUOUS queries ---------------------------------------------


CONTINUOUS = "SELECT TOP 3 FROM t ORDER BY f SEED 3 STREAM CONTINUOUS"


class TestContinuousQuery:
    def test_emits_initial_then_only_on_answer_change(self):
        session, scorer, table = make_live_session()
        standing = ContinuousQuery(session, CONTINUOUS)
        initial = standing.refresh()
        assert initial is not None and len(initial.top_k) == 3
        assert standing.refresh(timeout=0.01) is None      # nothing committed
        cold_calls = scorer.n_elements

        append_rows(table, [9.5], prefix="hot")
        changed = standing.refresh(timeout=5.0)
        assert changed is not None
        assert changed.top_k[0][0] == "hot-0000"
        # The cycle rescored only the appended element — everything else
        # was served by the memo.
        assert scorer.n_elements - cold_calls == 1

        # A commit that leaves the top-k intact runs a cycle, emits nothing.
        append_rows(table, [0.001], prefix="dud")
        assert standing.refresh(timeout=5.0) is None
        assert standing.n_emits == 2 and standing.n_cycles == 3

    def test_snapshots_iterator_and_cancel(self):
        session, _, table = make_live_session()
        standing = ContinuousQuery(session, CONTINUOUS, poll=0.01)
        emitted = []

        def consume():
            for snapshot in standing.snapshots():
                emitted.append(snapshot)

        consumer = threading.Thread(target=consume)
        consumer.start()
        try:
            deadline = 50
            while not emitted and deadline:
                deadline -= 1
                threading.Event().wait(0.05)
            append_rows(table, [9.9], prefix="hot")
            while len(emitted) < 2 and deadline:
                deadline -= 1
                threading.Event().wait(0.05)
        finally:
            standing.cancel()
            consumer.join(timeout=10)
        assert not consumer.is_alive() and standing.cancelled
        assert len(emitted) == 2
        assert emitted[1].top_k[0][0] == "hot-0000"
        assert standing.refresh(timeout=0.01) is None  # cancelled stays quiet

    def test_grant_rearmed_between_cycles(self):
        from repro.service.budget import BudgetScheduler

        session, _, table = make_live_session()
        scheduler = BudgetScheduler(budget=500)
        grant = scheduler.admit("tenant", 200)
        standing = ContinuousQuery(session, CONTINUOUS, gate=grant)
        try:
            standing.run_once()
            assert grant.granted_units > 0     # the cycle was metered...
            assert grant.consumed == 0         # ...and re-armed afterwards
            append_rows(table, [9.0])
            standing.run_once()
            assert grant.consumed == 0
        finally:
            grant.retire()
        assert scheduler.stats()["committed"] == 0

    def test_rejections(self):
        session, _, _ = make_live_session()
        static_session, *_ = __import__("tests.conftest",
                                        fromlist=["make_session"]
                                        ).make_session()
        with pytest.raises(ConfigurationError, match="CONTINUOUS"):
            ContinuousQuery(session, EXHAUSTIVE)
        with pytest.raises(ConfigurationError, match="LiveTable"):
            ContinuousQuery(static_session, CONTINUOUS)
        with pytest.raises(ConfigurationError, match="standing"):
            session.execute(CONTINUOUS)
        with pytest.raises(ConfigurationError, match="standing"):
            next(session.stream(CONTINUOUS))

    def test_explain_renders_live_and_standing_lines(self):
        session, _, table = make_live_session()
        append_rows(table, [1.0])
        plan = session.execute(f"EXPLAIN {CONTINUOUS}")
        rendered = plan.explain()
        assert "standing:  CONTINUOUS (re-emits on committed writes)" in rendered
        assert "live:      table version 1" in rendered


class TestServiceHostedContinuous:
    def test_standing_query_emits_meters_and_disconnects(self):
        from repro.service import QueryService

        async def scenario():
            table = make_live_table(seed=21)
            session, _, _ = make_live_session(table)
            service = QueryService(budget=5_000, session=session)
            handle = await service.submit(CONTINUOUS, tenant="alice",
                                          poll=0.01)
            stream = handle.snapshots()
            first = await asyncio.wait_for(stream.__anext__(), timeout=60)
            assert len(first.top_k) == 3
            assert handle.state == "running"
            committed = service.stats()["scheduler"]["committed"]
            assert 0 < committed <= 5_000

            append_rows(table, [42.0], prefix="hot")
            second = await asyncio.wait_for(stream.__anext__(), timeout=60)
            assert second.top_k[0][0] == "hot-0000"

            handle.cancel()   # the disconnect: normal completion, no error
            final = await asyncio.wait_for(handle.result(), timeout=60)
            assert handle.state == "done"
            assert final.top_k == second.top_k
            with pytest.raises(StopAsyncIteration):
                await asyncio.wait_for(stream.__anext__(), timeout=60)
            await service.close()
            assert service.scheduler.stats()["committed"] == 0

        asyncio.run(asyncio.wait_for(scenario(), timeout=180))


# -- observability + table cards ---------------------------------------------


class TestLiveObservability:
    def test_write_metrics_and_spans(self):
        from repro.obs.metrics import REGISTRY

        def total(snap, kind):
            return sum(cell["value"]
                       for cell in snap.get("writes_total",
                                            {}).get("values", [])
                       if cell["labels"] == {"table": "obs-t",
                                             "kind": kind})

        table = make_live_table(n_rows=10, name="obs-t")
        before = REGISTRY.snapshot()
        append_rows(table, [1.0])
        table.delete(["e00001"])
        after = REGISTRY.snapshot()

        assert total(after, "append") - total(before, "append") == 1
        assert total(after, "delete") - total(before, "delete") == 1
        assert [s["name"] for s in table.spans] == ["write[append]",
                                                    "write[delete]"]
        assert [s["attrs"]["version"] for s in table.spans] == [1, 2]

    def test_table_info_cards(self):
        session, _, table = make_live_session()
        card = session.table_info("t")
        assert card == {"table": "t", "rows": 100, "live": True,
                        "version": 0, "index_freshness": "unbuilt",
                        "writes": {"append": 0, "update": 0, "delete": 0}}
        session.execute(EXHAUSTIVE)
        append_rows(table, [3.0])
        session.execute(EXHAUSTIVE)
        card = session.table_info("t")
        assert card["version"] == 1 and card["rows"] == 101
        assert card["index_freshness"] == "incremental"
        assert card["writes"]["append"] == 1
        with pytest.raises(ConfigurationError):
            session.table_info("ghost")

    def test_cli_live_append_reports_card(self, capsys):
        from repro.cli import main

        code = main(["query", "SELECT TOP 5 FROM demo ORDER BY relu",
                     "--rows", "500", "--append", "10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "appended 10 rows" in out
        assert "version 1, index incremental" in out
        assert "510 rows" in out
